"""Exception hierarchy for the :mod:`repro` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate analysis problems from model-construction
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ProgramModelError(ReproError):
    """A program model (CFG/ACFG) is malformed or violates an invariant."""


class LayoutError(ProgramModelError):
    """The address layout of a program is inconsistent."""


class LoopBoundError(ProgramModelError):
    """A loop is missing a bound, or a bound is not a positive integer."""


class CacheConfigError(ReproError):
    """A cache configuration is invalid (non power of two, assoc > sets...)."""


class AnalysisError(ReproError):
    """A static analysis (abstract interpretation, IPET, WCET) failed."""


class InfeasibleILPError(AnalysisError):
    """The IPET integer linear program has no feasible solution."""


class SimulationError(ReproError):
    """Concrete execution / trace simulation failed."""


class OptimizationError(ReproError):
    """The prefetch-insertion optimizer reached an inconsistent state."""


class GuaranteeViolation(OptimizationError):
    """Raised when a run would violate Theorem 1 (WCET non-increase).

    This is a *defensive* error: the optimizer checks its own output and
    refuses to return a program whose memory contribution to the WCET is
    larger than the input program's.
    """


class ExperimentError(ReproError):
    """An experiment/sweep was configured inconsistently."""


class SweepFailure(ExperimentError):
    """One or more use cases of a sweep failed permanently.

    Raised by :func:`repro.experiments.sweep.run_sweep` *after* every
    other case of the grid has completed (and been disk-cached), when
    the number of permanent failures exceeds the caller's
    ``max_failures`` policy — so a rerun only recomputes the failed
    cases.

    Attributes:
        failures: The per-case
            :class:`~repro.experiments.sweep.FailureRecord` list.
        results: The successful results, in grid order.
    """

    def __init__(self, message: str, failures=(), results=()):
        super().__init__(message)
        self.failures = list(failures)
        self.results = list(results)


class ConfigError(ExperimentError):
    """An environment/CLI configuration knob holds an unusable value.

    Raised early, with the offending knob named, instead of letting a
    raw ``ValueError`` escape from deep inside a sweep or the service.
    """


class ProtocolError(ReproError):
    """A service request violates the job protocol (HTTP 400)."""


class ServiceError(ReproError):
    """The analysis service (or a client talking to it) failed.

    Attributes:
        status: HTTP status code of the failing response, if any.
        retry_after: Server-suggested retry delay in seconds, if any.
    """

    def __init__(self, message: str, status: "int | None" = None,
                 retry_after: "float | None" = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class QueueFullError(ServiceError):
    """The service job queue is at capacity (HTTP 429 + Retry-After)."""
