"""The service's compute backend: process pool + disk-cache bridge.

One :class:`AnalysisExecutor` is shared by every job the server
accepts.  It resolves a request three ways, cheapest first:

1. :meth:`probe_cache` — for the point kinds (``optimize``/
   ``usecase``) the persistent :class:`~repro.experiments.cache.
   SweepDiskCache` record is read *in the server process* before any
   dispatch, so a warm request never costs a queue slot or a pool
   round-trip (this is the service's ``cache_hits`` metric);
2. the ``ProcessPoolExecutor`` — :func:`execute_job` runs in a worker
   process, re-checks the disk cache (another server instance may have
   raced us to the same record), computes, and persists the result
   under exactly the key ``repro sweep`` uses, so service traffic and
   CLI sweeps warm one another's cache;
3. a ``ThreadPoolExecutor`` fallback when the platform cannot start a
   process pool (sandboxes without fork/spawn) — same interface,
   reduced parallelism, service stays up.

``sweep`` jobs run serially *inside* one worker (``workers=1``): the
pool is the fan-out across jobs, and nesting pools inside pool workers
is not portable.  Their per-use-case records still go through the same
disk cache.

After every computation the cache is pruned to
``REPRO_SWEEP_CACHE_MAX_BYTES`` (when set), so a long-lived server
cannot grow the cache without bound.
"""

from __future__ import annotations

import concurrent.futures
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.experiments.cache import (
    SweepDiskCache,
    resolve_cache_dir,
    resolve_cache_max_bytes,
    usecase_key,
)
from repro.experiments.report import (
    optimize_to_json,
    sweep_to_json,
    usecase_to_json,
)
from repro.experiments.sweep import resolve_workers
from repro.experiments.usecase import UseCase, UseCaseResult, run_usecase
from repro.obs.trace import (
    SpanCollector,
    Tracer,
    activate_tracer,
    current_context,
    format_traceparent,
    parse_traceparent,
)
from repro.service.protocol import JobRequest


def _options_for(params: Dict[str, Any]):
    from repro.core.optimizer import OptimizerOptions

    return OptimizerOptions(
        max_evaluations=params["budget"],
        with_persistence=params["baseline"] == "persistence",
        refine=bool(params.get("refine", False)),
    )


def _point_key(params: Dict[str, Any]) -> str:
    """The disk-cache key of an optimize/usecase job — the same
    content hash a ``repro sweep`` over this use case would write."""
    usecase = UseCase(params["program"], params["config"], params["tech"])
    return usecase_key(usecase, params["seed"], _options_for(params))


def _point_response(kind: str, result: UseCaseResult) -> Dict[str, Any]:
    """The response document of a point job (shared by the cache-probe
    path and the worker path, so both emit identical payloads)."""
    if kind == "optimize":
        data = optimize_to_json(result.report)
        data["wcet_ratio"] = result.wcet_ratio
        return data
    return usecase_to_json(result)


def execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: compute one job's response document.

    Module-level so it pickles under every multiprocessing start
    method.  ``payload`` is ``{"kind", "params", "cache_dir"}`` with
    ``params`` in canonical (:meth:`JobRequest.params_dict`) form, plus
    an optional ``traceparent``: when that carries a sampled trace, a
    one-shot tracer collects the pool-side spans (``pool.execute`` down
    to the pipeline stages) and rides them back on the result document
    under the reserved ``__spans__`` key, which the job layer strips
    into the node's trace store before the result is served or cached.
    """
    kind = payload["kind"]
    params = payload["params"]
    cache_dir = payload.get("cache_dir")

    ctx = parse_traceparent(payload.get("traceparent"))
    if ctx is None or not ctx.sampled:
        return _execute(kind, params, cache_dir)

    collector = SpanCollector()
    tracer = Tracer(service="pool", sample=1.0, sink=collector.add)
    with activate_tracer(tracer):
        with tracer.start_span(
            "pool.execute",
            parent=ctx,
            attributes={"kind": kind, "pid": os.getpid()},
        ):
            result = _execute(kind, params, cache_dir)
    if isinstance(result, dict):
        result["__spans__"] = collector.drain()
    return result


def _execute(kind, params, cache_dir) -> Dict[str, Any]:
    if kind == "shard":
        # Fabric shard: an explicit case list from a coordinator.  The
        # per-case retry/fault semantics and the result documents live
        # with the rest of the fabric code.
        from repro.fabric.worker import execute_shard

        return execute_shard(params, cache_dir)

    if kind == "sweep":
        from repro.experiments.metrics import SweepMetrics
        from repro.experiments.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            programs=tuple(params["programs"]),
            config_ids=tuple(params["configs"]),
            techs=tuple(params["techs"]),
            seed=params["seed"],
            max_evaluations=params["budget"],
            baseline=params["baseline"],
            kernel=params.get("kernel"),
            l2_specs=tuple(params["l2"]) if params.get("l2") else (None,),
            refine=bool(params.get("refine", False)),
        )
        metrics = SweepMetrics()
        # Never raise on per-case failures: the job's response document
        # carries the failure records, so the client sees exactly which
        # cases failed next to the successes instead of an opaque 500.
        results = run_sweep(
            spec,
            use_cache=False,
            workers=1,
            cache_dir=cache_dir if cache_dir else "off",
            metrics=metrics,
            max_failures=None,
        )
        return sweep_to_json(
            results, metrics=metrics, failures=metrics.failures
        )

    usecase = UseCase(params["program"], params["config"], params["tech"])
    options = _options_for(params)
    disk = SweepDiskCache(cache_dir) if cache_dir else None
    key = usecase_key(usecase, params["seed"], options)
    result = disk.get(key) if disk is not None else None
    if result is None:
        result = run_usecase(usecase, seed=params["seed"], options=options)
        if disk is not None:
            disk.put(key, result)
    return _point_response(kind, result)


class AnalysisExecutor:
    """Shared compute pool with a persistent-cache fast path.

    Args:
        workers: Pool size (``None`` = ``REPRO_SWEEP_WORKERS`` or the
            CPU count, validated by
            :func:`~repro.experiments.sweep.resolve_workers`).
        cache_dir: Persistent cache directory (``None`` consults
            ``REPRO_SWEEP_CACHE_DIR``; pass ``"off"`` to disable).
        max_cache_bytes: Prune threshold (``None`` consults
            ``REPRO_SWEEP_CACHE_MAX_BYTES``).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Union[None, str, Path] = None,
        max_cache_bytes: Optional[int] = None,
    ):
        pool_cap = workers if workers is not None else (os.cpu_count() or 1)
        self.workers = resolve_workers(workers, pending=pool_cap)
        root = resolve_cache_dir(cache_dir)
        self.disk = SweepDiskCache(root) if root is not None else None
        self.max_cache_bytes = (
            max_cache_bytes
            if max_cache_bytes is not None
            else resolve_cache_max_bytes()
        )
        self._pool: Optional[concurrent.futures.Executor] = None
        self._pool_is_processes = False
        self.pool_rebuilds = 0

    # ------------------------------------------------------------------
    # the three resolution paths
    # ------------------------------------------------------------------
    def probe_cache(self, request: JobRequest) -> Optional[Dict[str, Any]]:
        """The response document if the disk cache already holds it.

        Only the point kinds have whole-job records; sweep and shard
        jobs reuse the cache per use case inside the worker instead.
        """
        if self.disk is None or request.kind in ("sweep", "shard"):
            return None
        params = request.params_dict()
        result = self.disk.get(_point_key(params))
        if result is None:
            return None
        return _point_response(request.kind, result)

    def submit(self, request: JobRequest) -> "concurrent.futures.Future":
        """Dispatch a request to the pool; returns the result future."""
        payload = {
            "kind": request.kind,
            "params": request.params_dict(),
            "cache_dir": str(self.disk.root) if self.disk is not None else None,
        }
        # Thread the ambient trace (the job span, activated by the job
        # layer around this call) into the pool process.  The context
        # rides the payload, never the request: fingerprints and cache
        # keys stay trace-agnostic.
        ctx = current_context()
        if ctx is not None and ctx.sampled:
            payload["traceparent"] = format_traceparent(ctx)
        pool = self._ensure_pool()
        try:
            future = pool.submit(execute_job, payload)
        except _POOL_FAILURES:
            pool = self._fall_back_to_threads()
            future = pool.submit(execute_job, payload)
        future.add_done_callback(self._after_compute)
        return future

    def _after_compute(self, future: "concurrent.futures.Future") -> None:
        if self.disk is not None and self.max_cache_bytes is not None:
            try:
                self.disk.prune(self.max_cache_bytes)
            except OSError:  # pruning is best-effort housekeeping
                pass

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> "concurrent.futures.Executor":
        if self._pool is None:
            try:
                self._pool = self._make_process_pool()
                self._pool_is_processes = True
            except _POOL_FAILURES:
                self._fall_back_to_threads()
        return self._pool

    def _make_process_pool(self) -> "concurrent.futures.Executor":
        import multiprocessing

        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        )

    def recover(self) -> "concurrent.futures.Executor":
        """Replace a broken pool with a fresh *process* pool.

        Called by the job layer when a worker died mid-job
        (``BrokenProcessPool``): unlike :meth:`_fall_back_to_threads`,
        a pool break is not a platform limitation — the next pool of
        processes is perfectly healthy — so the service keeps its
        parallelism instead of permanently degrading to threads.
        Falls back to threads only when the rebuild itself fails.
        """
        old = self._pool
        self._pool = None
        if old is not None:
            old.shutdown(wait=False)
        try:
            self._pool = self._make_process_pool()
            self._pool_is_processes = True
        except _POOL_FAILURES:
            return self._fall_back_to_threads()
        self.pool_rebuilds += 1
        return self._pool

    def _fall_back_to_threads(self) -> "concurrent.futures.Executor":
        old = self._pool
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-service",
        )
        self._pool_is_processes = False
        if old is not None:
            old.shutdown(wait=False)
        return self._pool

    def shutdown(self) -> None:
        """Stop the pool without waiting for stragglers."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def describe(self) -> Dict[str, Any]:
        """Backend facts for ``/healthz``."""
        data = {
            "workers": self.workers,
            "pool": (
                "none" if self._pool is None
                else "processes" if self._pool_is_processes
                else "threads"
            ),
            "cache_dir": str(self.disk.root) if self.disk is not None else None,
            "max_cache_bytes": self.max_cache_bytes,
            "pool_rebuilds": self.pool_rebuilds,
        }
        if self.disk is not None:
            data["cache"] = {
                "hits": self.disk.hits,
                "misses": self.disk.misses,
                "discarded": self.disk.discarded,
                "pruned": self.disk.pruned,
                "prune_races": self.disk.prune_races,
            }
        return data


def _pool_failure_types():
    import pickle
    from concurrent.futures.process import BrokenProcessPool

    return (
        BrokenProcessPool,
        OSError,
        PermissionError,
        NotImplementedError,
        ImportError,
        pickle.PicklingError,
        RuntimeError,
    )


_POOL_FAILURES = _pool_failure_types()
