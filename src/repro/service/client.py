"""Blocking Python client for the analysis service.

:class:`ServiceClient` wraps the job protocol in synchronous calls —
submit, poll, fetch, cancel — with retry + *full-jitter* exponential
backoff on the two transient statuses the server emits under load
(429 queue-full, 503) and on connection errors during server startup.

Jitter matters at fleet scale: when a coordinator restarts, every
worker and client sees the same connection error at the same instant —
deterministic exponential backoff would march them all back in
lockstep, a thundering herd at exactly the moment the service is
weakest.  Full jitter (delay drawn uniformly from ``[0, cap]``) spreads
the retries across the whole window instead.  A server-sent
``Retry-After`` is honoured with *equal* jitter (at least half the
hint, never more than the hint), so an explicit hint still bounds the
wait from both sides.

    client = ServiceClient("127.0.0.1", 8080)
    job = client.submit("optimize", program="fdct", config="k1")
    result = client.result(job["id"], timeout=120.0)
    print(result["tau_original"], "->", result["tau_final"])

The ``sleep`` and ``rng`` hooks are injectable so tests exercise the
backoff schedule without real waiting or real randomness
(``rng=lambda: 1.0`` reproduces the old deterministic schedule).
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.errors import ServiceError

#: Statuses worth retrying: queue backpressure and transient overload.
RETRYABLE_STATUSES = (429, 503)


def backoff_delay(
    attempt: int,
    base: float = 0.1,
    cap: float = 2.0,
    rng: Optional[Callable[[], float]] = None,
) -> float:
    """Full-jitter exponential backoff (AWS style).

    The delay is ``rng() * min(cap, base * 2**attempt)`` with ``rng``
    uniform on ``[0, 1)`` — the exponential term bounds the window,
    the jitter decorrelates a fleet retrying in unison.  Pass
    ``rng=lambda: 1.0`` for the deterministic upper envelope.
    """
    if rng is None:
        rng = random.random
    return rng() * min(cap, base * (2 ** attempt))


def retry_after_delay(
    hint: float, rng: Optional[Callable[[], float]] = None
) -> float:
    """Equal-jitter delay for a server-sent ``Retry-After`` hint.

    Uniform on ``[hint/2, hint]``: never sooner than half the hint
    (the server asked for breathing room), never later than the hint
    itself (``rng=lambda: 1.0`` gives exactly the hint).
    """
    if rng is None:
        rng = random.random
    return hint * 0.5 + rng() * hint * 0.5


class ServiceClient:
    """A blocking client with retry + exponential backoff.

    Args:
        host / port: Server address.
        timeout: Per-request socket timeout (seconds).
        max_retries: Retries on 429/503/connection-refused before
            giving up (0 = fail on the first rejection).
        backoff_base / backoff_cap: The exponential schedule
            (:func:`backoff_delay`).
        sleep: Injectable ``time.sleep`` replacement for tests.
        rng: Injectable uniform-[0,1) source for the jitter
            (``lambda: 1.0`` makes every delay deterministic).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        max_retries: int = 5,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        rng: Callable[[], float] = random.random,
        traceparent: Optional[str] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._rng = rng
        #: Default W3C ``traceparent`` header sent with every request
        #: (per-call ``traceparent=`` arguments override it).
        self.traceparent = traceparent

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _once(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              traceparent: Optional[str] = None,
              ) -> Tuple[int, Dict[str, str], Any]:
        """One HTTP round-trip: (status, headers, decoded body)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body)
                headers["Content-Type"] = "application/json"
            tp = traceparent if traceparent is not None else self.traceparent
            if tp:
                headers["traceparent"] = tp
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            header_map = {k.lower(): v for k, v in response.getheaders()}
            content_type = header_map.get("content-type", "")
            if "json" in content_type:
                decoded: Any = json.loads(raw.decode("utf-8"))
            else:
                decoded = raw.decode("utf-8", errors="replace")
            return response.status, header_map, decoded
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 max_retries: Optional[int] = None,
                 traceparent: Optional[str] = None) -> Any:
        """A round-trip with the retry/backoff policy applied.

        Raises :class:`ServiceError` carrying the final status (and
        ``retry_after`` when the server sent one) on any >= 400
        response that outlived the retries.
        """
        retries = self.max_retries if max_retries is None else max_retries
        # Pass traceparent positionally only when set: tests (and
        # subclasses) stub ``_once`` with the historical three-argument
        # signature, which untraced requests must keep satisfying.
        extra = (traceparent,) if traceparent is not None else ()
        attempt = 0
        while True:
            try:
                status, headers, decoded = self._once(
                    method, path, body, *extra
                )
            except (ConnectionError, OSError) as exc:
                if attempt >= retries:
                    raise ServiceError(
                        f"cannot reach service at "
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc
                self._sleep(backoff_delay(attempt, self.backoff_base,
                                          self.backoff_cap, rng=self._rng))
                attempt += 1
                continue
            if status < 400:
                return decoded
            retry_after = _parse_retry_after(headers.get("retry-after"))
            if status in RETRYABLE_STATUSES and attempt < retries:
                delay = (retry_after_delay(retry_after, rng=self._rng)
                         if retry_after is not None
                         else backoff_delay(attempt, self.backoff_base,
                                            self.backoff_cap, rng=self._rng))
                self._sleep(delay)
                attempt += 1
                continue
            message = (decoded.get("error", str(decoded))
                       if isinstance(decoded, dict) else str(decoded))
            raise ServiceError(
                f"{method} {path} -> {status}: {message}",
                status=status,
                retry_after=retry_after,
            )

    # ------------------------------------------------------------------
    # the job protocol
    # ------------------------------------------------------------------
    def submit(self, kind: str, max_retries: Optional[int] = None,
               traceparent: Optional[str] = None,
               **params: Any) -> Dict[str, Any]:
        """Submit a job; returns its record (see :class:`Job`)."""
        body = {"kind": kind, "params": params}
        return self._request(
            "POST", "/v1/jobs", body=body, max_retries=max_retries,
            traceparent=traceparent,
        )["job"]

    def status(self, job_id: str) -> Dict[str, Any]:
        """The current job record."""
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued or running job; returns its final record."""
        return self._request("DELETE", f"/v1/jobs/{job_id}",
                             max_retries=0)["job"]

    def result(self, job_id: str, timeout: float = 120.0,
               poll_interval: float = 0.05) -> Dict[str, Any]:
        """Block until the job finishes; returns its result document.

        Polls the job record, then fetches ``/v1/results/<id>``.
        Raises :class:`ServiceError` on failure/cancellation or when
        ``timeout`` seconds pass without a terminal state.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                break
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout:g}s"
                )
            self._sleep(poll_interval)
        return self._request("GET", f"/v1/results/{job_id}",
                             max_retries=0)["result"]

    def run(self, kind: str, timeout: float = 120.0,
            **params: Any) -> Dict[str, Any]:
        """Submit + wait: the one-call convenience path."""
        job = self.submit(kind, **params)
        return self.result(job["id"], timeout=timeout)

    # ------------------------------------------------------------------
    # the fabric protocol (coordinator nodes only)
    # ------------------------------------------------------------------
    def register_worker(self, url: str, capacity: int = 1) -> Dict[str, Any]:
        """Register a worker node with a coordinator; returns its record."""
        body = {"url": url, "capacity": capacity}
        return self._request("POST", "/v1/fabric/workers", body=body)["worker"]

    def submit_fabric_sweep(self, tenant: str = "default",
                            traceparent: Optional[str] = None,
                            **params: Any) -> Dict[str, Any]:
        """Submit a distributed sweep; returns its record (with ``id``)."""
        body = {"tenant": tenant, "params": params}
        return self._request("POST", "/v1/fabric/sweeps", body=body,
                             traceparent=traceparent)["sweep"]

    def fabric_sweep(self, sweep_id: str) -> Dict[str, Any]:
        """The current record of a distributed sweep."""
        return self._request("GET", f"/v1/fabric/sweeps/{sweep_id}")["sweep"]

    def fabric_result(self, sweep_id: str, timeout: float = 300.0,
                      poll_interval: float = 0.1) -> Dict[str, Any]:
        """Block until a distributed sweep finishes; returns its document.

        The result endpoint answers 409 + ``Retry-After`` while shards
        are still in flight, so this polls rather than leaning on the
        retry loop (a long sweep would exhaust ``max_retries``).
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self._request(
                    "GET", f"/v1/fabric/sweeps/{sweep_id}/result",
                    max_retries=0,
                )["result"]
            except ServiceError as exc:
                if exc.status != 409:
                    raise
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"fabric sweep {sweep_id} still running after "
                    f"{timeout:g}s"
                )
            self._sleep(poll_interval)

    def stream_sweep(self, sweep_id: str
                     ) -> Iterator[Tuple[str, Any]]:
        """Live results of a distributed sweep as ``(event, data)`` pairs.

        Connects to ``/v1/fabric/sweeps/<id>/stream`` and yields each
        server-sent event as it lands: ``case`` / ``failure`` /
        ``progress`` and finally ``done``.  Uses a raw socket because
        ``http.client`` buffers and de-chunks — we need each chunk the
        moment it arrives, and we need to *see* the chunked framing to
        tell a clean end from a coordinator dying mid-stream.

        Raises :class:`ServiceError` if the connection fails, the
        server rejects the stream, the chunked framing is truncated, or
        the stream ends without a terminal ``done`` event (all three of
        which mean the results are incomplete).
        """
        from repro.fabric.stream import iter_chunks, iter_sse

        path = f"/v1/fabric/sweeps/{sweep_id}/stream"
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            request = (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Accept: text/event-stream\r\n"
                f"Connection: close\r\n\r\n"
            )
            sock.sendall(request.encode("ascii"))
            status, leftover = _read_stream_head(sock)
            if status != 200:
                raise ServiceError(
                    f"GET {path} -> {status}", status=status
                )

            def reads() -> Iterator[bytes]:
                nonlocal leftover
                if leftover:
                    data, leftover = leftover, b""
                    yield data
                while True:
                    data = sock.recv(65536)
                    if not data:
                        return
                    yield data

            saw_done = False
            try:
                for event, data in iter_sse(iter_chunks(reads())):
                    yield event, data
                    if event == "done":
                        saw_done = True
                        break
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    f"fabric stream for {sweep_id} broke mid-sweep: "
                    f"{exc}"
                ) from exc
            if not saw_done:
                raise ServiceError(
                    f"fabric stream for {sweep_id} ended without a "
                    f"'done' event; results are incomplete"
                )
        finally:
            sock.close()

    # ------------------------------------------------------------------
    # operational endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw ``/metrics`` text exposition."""
        return self._request("GET", "/metrics")

    def trace(self, trace_id: str) -> Dict[str, Any]:
        """One collected trace: ``{"trace_id", "spans": [...]}``.

        On a coordinator this merges the spans its workers collected
        for the same trace id.  404 (raised as :class:`ServiceError`)
        means the node never sampled that trace or has evicted it.
        """
        return self._request("GET", f"/v1/traces/{trace_id}", max_retries=0)


def _read_stream_head(sock: "socket.socket") -> Tuple[int, bytes]:
    """Read the HTTP response head off a raw socket.

    Returns ``(status, leftover)`` where ``leftover`` is any body bytes
    that arrived in the same reads as the head — they belong to the
    chunked stream and must be replayed before the next ``recv``.
    """
    buffer = b""
    while b"\r\n\r\n" not in buffer:
        data = sock.recv(65536)
        if not data:
            raise ServiceError(
                "connection closed before the response head arrived"
            )
        buffer += data
        if len(buffer) > 65536:
            raise ServiceError("response head exceeds 64KiB")
    head, leftover = buffer.split(b"\r\n\r\n", 1)
    status_line = head.split(b"\r\n", 1)[0].decode("ascii", errors="replace")
    parts = status_line.split(" ", 2)
    try:
        status = int(parts[1])
    except (IndexError, ValueError):
        raise ServiceError(f"malformed status line: {status_line!r}")
    return status, leftover


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
