"""Blocking Python client for the analysis service.

:class:`ServiceClient` wraps the job protocol in synchronous calls —
submit, poll, fetch, cancel — with retry + exponential backoff on the
two transient statuses the server emits under load (429 queue-full,
503) and on connection errors during server startup.  A server-sent
``Retry-After`` always wins over the computed backoff.

    client = ServiceClient("127.0.0.1", 8080)
    job = client.submit("optimize", program="fdct", config="k1")
    result = client.result(job["id"], timeout=120.0)
    print(result["tau_original"], "->", result["tau_final"])

The ``sleep`` hook is injectable so tests exercise the backoff schedule
without real waiting.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ServiceError

#: Statuses worth retrying: queue backpressure and transient overload.
RETRYABLE_STATUSES = (429, 503)


def backoff_delay(attempt: int, base: float = 0.1, cap: float = 2.0) -> float:
    """Exponential backoff: ``base * 2**attempt``, capped at ``cap``."""
    return min(cap, base * (2 ** attempt))


class ServiceClient:
    """A blocking client with retry + exponential backoff.

    Args:
        host / port: Server address.
        timeout: Per-request socket timeout (seconds).
        max_retries: Retries on 429/503/connection-refused before
            giving up (0 = fail on the first rejection).
        backoff_base / backoff_cap: The exponential schedule
            (:func:`backoff_delay`).
        sleep: Injectable ``time.sleep`` replacement for tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        max_retries: int = 5,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _once(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None
              ) -> Tuple[int, Dict[str, str], Any]:
        """One HTTP round-trip: (status, headers, decoded body)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            header_map = {k.lower(): v for k, v in response.getheaders()}
            content_type = header_map.get("content-type", "")
            if "json" in content_type:
                decoded: Any = json.loads(raw.decode("utf-8"))
            else:
                decoded = raw.decode("utf-8", errors="replace")
            return response.status, header_map, decoded
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 max_retries: Optional[int] = None) -> Any:
        """A round-trip with the retry/backoff policy applied.

        Raises :class:`ServiceError` carrying the final status (and
        ``retry_after`` when the server sent one) on any >= 400
        response that outlived the retries.
        """
        retries = self.max_retries if max_retries is None else max_retries
        attempt = 0
        while True:
            try:
                status, headers, decoded = self._once(method, path, body)
            except (ConnectionError, OSError) as exc:
                if attempt >= retries:
                    raise ServiceError(
                        f"cannot reach service at "
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc
                self._sleep(backoff_delay(attempt, self.backoff_base,
                                          self.backoff_cap))
                attempt += 1
                continue
            if status < 400:
                return decoded
            retry_after = _parse_retry_after(headers.get("retry-after"))
            if status in RETRYABLE_STATUSES and attempt < retries:
                delay = (retry_after if retry_after is not None
                         else backoff_delay(attempt, self.backoff_base,
                                            self.backoff_cap))
                self._sleep(delay)
                attempt += 1
                continue
            message = (decoded.get("error", str(decoded))
                       if isinstance(decoded, dict) else str(decoded))
            raise ServiceError(
                f"{method} {path} -> {status}: {message}",
                status=status,
                retry_after=retry_after,
            )

    # ------------------------------------------------------------------
    # the job protocol
    # ------------------------------------------------------------------
    def submit(self, kind: str, max_retries: Optional[int] = None,
               **params: Any) -> Dict[str, Any]:
        """Submit a job; returns its record (see :class:`Job`)."""
        body = {"kind": kind, "params": params}
        return self._request(
            "POST", "/v1/jobs", body=body, max_retries=max_retries
        )["job"]

    def status(self, job_id: str) -> Dict[str, Any]:
        """The current job record."""
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued or running job; returns its final record."""
        return self._request("DELETE", f"/v1/jobs/{job_id}",
                             max_retries=0)["job"]

    def result(self, job_id: str, timeout: float = 120.0,
               poll_interval: float = 0.05) -> Dict[str, Any]:
        """Block until the job finishes; returns its result document.

        Polls the job record, then fetches ``/v1/results/<id>``.
        Raises :class:`ServiceError` on failure/cancellation or when
        ``timeout`` seconds pass without a terminal state.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                break
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout:g}s"
                )
            self._sleep(poll_interval)
        return self._request("GET", f"/v1/results/{job_id}",
                             max_retries=0)["result"]

    def run(self, kind: str, timeout: float = 120.0,
            **params: Any) -> Dict[str, Any]:
        """Submit + wait: the one-call convenience path."""
        job = self.submit(kind, **params)
        return self.result(job["id"], timeout=timeout)

    # ------------------------------------------------------------------
    # operational endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw ``/metrics`` text exposition."""
        return self._request("GET", "/metrics")


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
