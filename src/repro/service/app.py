"""HTTP framing and routing of the analysis service.

A deliberately small HTTP/1.1 server on raw ``asyncio`` streams — the
stdlib's ``http.server`` is synchronous, and the service must multiplex
slow jobs, health checks and metrics scrapes on one event loop.  One
request per connection (``Connection: close``): clients of an analysis
service poll at human timescales, so connection reuse buys nothing and
keep-alive bookkeeping would be the largest piece of code in the file.

Routes:

====================  ====================================================
``POST /v1/jobs``     submit a job (202; 400 invalid, 429 queue full)
``GET /v1/jobs/<id>`` job record / state (404 unknown)
``GET /v1/results/<id>``  result document (409 still running, 410
                      cancelled, 500 failed)
``DELETE /v1/jobs/<id>``  cancel (409 already terminal)
``GET /healthz``      liveness + queue/executor facts
``GET /metrics``      Prometheus text exposition
``GET /v1/traces/<id>``  collected trace (404 unknown; coordinators
                      merge their workers' spans into the view)
====================  ====================================================

With ``coordinator=True`` (``repro serve --coordinator``) the fabric
routes join in:

============================  ========================================
``POST /v1/fabric/workers``   register a worker node
``GET /v1/fabric/workers``    the fleet roster
``POST /v1/fabric/sweeps``    submit a distributed sweep (202)
``GET /v1/fabric/sweeps/<id>``          sweep record / progress
``GET /v1/fabric/sweeps/<id>/result``   merged document (409 running)
``GET /v1/fabric/sweeps/<id>/stream``   live SSE feed (chunked)
============================  ========================================

and ``GET /metrics`` becomes the fleet-merged exposition (local
registry + every reachable worker's ``/metrics``, samples summed).

Handlers may be coroutines (the fabric ones are — they await worker
round-trips), and may return a :class:`_StreamResponse` whose body is
an async byte generator driven with chunked transfer framing — that is
how a sweep's result feed streams while it runs.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.errors import ProtocolError, QueueFullError, ServiceError
from repro.obs.log import get_logger
from repro.obs.trace import (
    NOOP_SPAN,
    Tracer,
    activate_tracer,
    format_traceparent,
    parse_traceparent,
)
from repro.service.jobs import (
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    JobManager,
)
from repro.service.protocol import parse_job
from repro.service.telemetry import ServiceTelemetry

_log = get_logger("repro.service.app")

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 4 * 1024 * 1024
_READ_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class _Request:
    """One parsed HTTP request."""

    def __init__(self, method: str, path: str,
                 headers: Dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The body parsed as JSON (raises ``ProtocolError``)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")


class _Response:
    """One response: status + JSON-able payload (or preformatted text)."""

    def __init__(self, status: int, payload: Union[Dict[str, Any], str],
                 content_type: Optional[str] = None,
                 headers: Optional[Dict[str, str]] = None):
        self.status = status
        self.payload = payload
        self.content_type = content_type or (
            "text/plain; charset=utf-8" if isinstance(payload, str)
            else "application/json"
        )
        self.headers = headers or {}

    def encode(self) -> bytes:
        if isinstance(self.payload, str):
            body = self.payload.encode("utf-8")
        else:
            body = (json.dumps(self.payload) + "\n").encode("utf-8")
        reason = _REASONS.get(self.status, "Status")
        head = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in self.headers.items():
            head.append(f"{name}: {value}")
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


class _StreamResponse:
    """A chunked-transfer response whose body is an async generator.

    ``body`` yields *payload* bytes; the connection handler applies the
    chunk framing and the terminal chunk.  Used by the fabric's SSE
    feed — the response has no known length while the sweep runs.
    """

    def __init__(self, status: int, body,
                 headers: Optional[Dict[str, str]] = None):
        self.status = status
        self.body = body
        self.headers = headers or {}

    def encode_head(self) -> bytes:
        reason = _REASONS.get(self.status, "Status")
        head = [
            f"HTTP/1.1 {self.status} {reason}",
            "Transfer-Encoding: chunked",
            "Connection: close",
        ]
        for name, value in self.headers.items():
            head.append(f"{name}: {value}")
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii")


async def _read_request(reader: "asyncio.StreamReader") -> Optional[_Request]:
    """Parse one request; ``None`` when the client hung up early.

    Raises ``ProtocolError`` (with an HTTP status attached via its
    message) through ``ServiceError`` for framing violations.
    """
    try:
        header_blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), _READ_TIMEOUT_S
        )
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError:
        raise ServiceError("request headers too large", status=431)
    except asyncio.TimeoutError:
        raise ServiceError("timed out reading request", status=408)
    lines = header_blob.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServiceError(f"malformed request line: {lines[0]!r}",
                           status=400)
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ServiceError(f"bad Content-Length: {length_text!r}",
                           status=400) from None
    if length > _MAX_BODY_BYTES:
        raise ServiceError(
            f"body of {length} bytes exceeds the {_MAX_BODY_BYTES}-byte cap",
            status=413,
        )
    body = b""
    if length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), _READ_TIMEOUT_S
            )
        except asyncio.IncompleteReadError:
            return None
        except asyncio.TimeoutError:
            raise ServiceError("timed out reading request body", status=408)
    path = target.split("?", 1)[0]
    return _Request(method, path, headers, body)


class ServiceApp:
    """Routing over a :class:`JobManager` + telemetry + executor.

    With a ``coordinator`` attached the app also serves the fabric
    routes and the fleet-merged metrics view.
    """

    def __init__(self, manager: JobManager, telemetry: ServiceTelemetry,
                 coordinator=None, tracer: Optional[Tracer] = None,
                 traces=None):
        self.manager = manager
        self.telemetry = telemetry
        self.executor = manager.executor
        self.coordinator = coordinator
        # Tracer and trace store are *per app* (not process globals):
        # tests boot a coordinator and several workers in one process,
        # and each node must keep its own spans for the cross-node
        # merge at GET /v1/traces/<id> to mean anything.
        self.tracer = tracer if tracer is not None else manager.tracer
        self.traces = traces if traces is not None else manager.trace_store

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the manager's dispatcher tasks (and the scheduler)."""
        await self.manager.start()
        if self.coordinator is not None:
            await self.coordinator.start()

    async def close(self) -> None:
        """Stop dispatchers, the scheduler, and the compute pool."""
        if self.coordinator is not None:
            await self.coordinator.close()
        await self.manager.close()
        self.executor.shutdown()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def handle_connection(self, reader, writer) -> None:
        """``asyncio.start_server`` callback: one request, one response."""
        try:
            response = await self._safe_respond(reader)
            if isinstance(response, _StreamResponse):
                await self._drive_stream(response, writer)
            elif response is not None:
                writer.write(response.encode())
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _drive_stream(self, response: _StreamResponse,
                            writer) -> None:
        """Write a streamed body with chunked transfer framing.

        A failure mid-stream (the generator raised, the client went
        away) simply closes the connection *without* the terminal
        chunk — the client's de-chunker turns that into a structured
        truncation error instead of a silently short document.
        """
        from repro.fabric.stream import CHUNK_END, chunk

        writer.write(response.encode_head())
        await writer.drain()
        async for payload in response.body:
            writer.write(chunk(payload))
            await writer.drain()
        writer.write(CHUNK_END)
        await writer.drain()

    async def _safe_respond(self, reader):
        try:
            request = await _read_request(reader)
        except ServiceError as exc:
            self.telemetry.http_requests.inc()
            self.telemetry.http_errors.inc()
            return _Response(exc.status or 400, {"error": str(exc)})
        if request is None:  # client went away before a full request
            return None
        self.telemetry.http_requests.inc()
        span = self._request_span(request)
        with activate_tracer(self.tracer):
            with span:
                try:
                    response = self.route(request)
                    if asyncio.iscoroutine(response):
                        response = await response
                except ProtocolError as exc:
                    response = _Response(400, {"error": str(exc)})
                except QueueFullError as exc:
                    response = _Response(
                        429,
                        {"error": str(exc), "retry_after": exc.retry_after},
                        headers={"Retry-After": str(int(exc.retry_after or 1))},
                    )
                except ServiceError as exc:
                    response = _Response(exc.status or 500, {"error": str(exc)})
                except Exception as exc:  # defensive: never kill the connection task
                    response = _Response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                if span.recording and isinstance(response, _Response):
                    span.set_attribute("http.status", response.status)
                    if response.status >= 400:
                        error = None
                        if isinstance(response.payload, dict):
                            error = response.payload.get("error")
                        span.set_status("error", error or str(response.status))
                    # Echo the trace id so callers that did not send a
                    # traceparent learn which trace their request rooted.
                    response.headers.setdefault(
                        "traceparent", format_traceparent(span.context)
                    )
        if not isinstance(response, _StreamResponse) and response.status >= 400:
            self.telemetry.http_errors.inc()
        return response

    def _request_span(self, request: _Request):
        """The span for one request, or :data:`NOOP_SPAN`.

        A sampled incoming ``traceparent`` is always honoured (that is
        how coordinator→worker and client→service hops join one
        trace).  Without one, only POSTs may root a new trace (subject
        to the sampling rate) — polls, result fetches and metrics
        scrapes never start traces of their own.
        """
        ctx = parse_traceparent(request.headers.get("traceparent"))
        name = f"http {request.method} {request.path}"
        if ctx is not None:
            if not ctx.sampled:
                return NOOP_SPAN
            return self.tracer.start_span(name, parent=ctx)
        if request.method == "POST":
            return self.tracer.start_span(name, parent=None, root=True)
        return NOOP_SPAN

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, request: _Request):
        """Dispatch one parsed request to its handler.

        May return an :class:`_Response`, a coroutine resolving to one
        (awaited by :meth:`_safe_respond`), or a
        :class:`_StreamResponse`.
        """
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            return self._require(method, "GET", self._healthz)(request)
        if path == "/metrics":
            if self.coordinator is not None:
                return self._require(
                    method, "GET", self._fleet_metrics
                )(request)
            return self._require(method, "GET", self._metrics)(request)
        if path.startswith("/v1/fabric/"):
            return self._route_fabric(method, path, request)
        if path == "/v1/jobs":
            return self._require(method, "POST", self._submit)(request)
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            if method == "GET":
                return self._job_record(job_id)
            if method == "DELETE":
                return self._cancel(job_id)
            raise ServiceError(f"{method} not allowed here", status=405)
        if path.startswith("/v1/results/"):
            job_id = path[len("/v1/results/"):]
            return self._require(
                method, "GET", lambda _req: self._result(job_id)
            )(request)
        if path.startswith("/v1/traces/"):
            trace_id = path[len("/v1/traces/"):]
            return self._require(
                method, "GET", lambda _req: self._trace(trace_id)
            )(request)
        raise ServiceError(f"no route for {method} {request.path}",
                           status=404)

    @staticmethod
    def _require(method: str, expected: str, handler):
        if method != expected:
            raise ServiceError(
                f"{method} not allowed here (use {expected})", status=405
            )
        return handler

    # ------------------------------------------------------------------
    # fabric routing + handlers
    # ------------------------------------------------------------------
    def _route_fabric(self, method: str, path: str, request: _Request):
        if self.coordinator is None:
            raise ServiceError(
                "this node is not a coordinator "
                "(start it with repro serve --coordinator)",
                status=404,
            )
        if path == "/v1/fabric/workers":
            if method == "POST":
                return self._fabric_register(request)
            if method == "GET":
                return _Response(200, {
                    "workers": [
                        w.to_json()
                        for w in self.coordinator.workers.values()
                    ],
                })
            raise ServiceError(f"{method} not allowed here", status=405)
        if path == "/v1/fabric/sweeps":
            return self._require(
                method, "POST", self._fabric_submit)(request)
        if path.startswith("/v1/fabric/sweeps/"):
            rest = path[len("/v1/fabric/sweeps/"):]
            sweep_id, _, tail = rest.partition("/")
            sweep = self.coordinator.get_sweep(sweep_id)
            if sweep is None:
                raise ServiceError(
                    f"unknown sweep {sweep_id!r}", status=404)
            if tail == "":
                return self._require(
                    method, "GET",
                    lambda _req: _Response(200, {"sweep": sweep.to_json()})
                )(request)
            if tail == "result":
                return self._require(
                    method, "GET",
                    lambda _req: self._fabric_result(sweep)
                )(request)
            if tail == "stream":
                return self._require(
                    method, "GET",
                    lambda _req: self._fabric_stream(sweep)
                )(request)
        raise ServiceError(f"no route for {method} {path}", status=404)

    def _fabric_register(self, request: _Request) -> _Response:
        from repro.service.protocol import parse_worker_registration

        url, capacity = parse_worker_registration(request.json())
        node = self.coordinator.register_worker(url, capacity=capacity)
        return _Response(200, {"worker": node.to_json()})

    def _fabric_submit(self, request: _Request) -> _Response:
        from repro.service.protocol import parse_fabric_sweep

        tenant, params = parse_fabric_sweep(request.json())
        sweep = self.coordinator.submit_sweep(tenant, params)
        return _Response(202, {"sweep": sweep.to_json()})

    def _fabric_result(self, sweep) -> _Response:
        if not sweep.done:
            return _Response(
                409,
                {"id": sweep.id, "state": sweep.state,
                 "error": "sweep still running"},
                headers={"Retry-After": "1"},
            )
        return _Response(
            200,
            {"id": sweep.id, "state": sweep.state,
             "result": sweep.result_document()},
        )

    def _fabric_stream(self, sweep) -> _StreamResponse:
        from repro.fabric.stream import SSE_HEADERS, sse_event

        async def feed():
            replay, queue = sweep.subscribe()
            try:
                saw_done = False
                for event, data in replay:
                    yield sse_event(event, data)
                    saw_done = saw_done or event == "done"
                while not saw_done:
                    event, data = await queue.get()
                    yield sse_event(event, data)
                    saw_done = event == "done"
            finally:
                sweep.unsubscribe(queue)

        headers = {
            name: value for name, value in SSE_HEADERS
            if name != "Transfer-Encoding"  # the framing layer adds it
        }
        return _StreamResponse(200, feed(), headers=headers)

    async def _fleet_metrics(self, _request: _Request) -> _Response:
        from repro.service.telemetry import merge_expositions

        pairs = await self.coordinator.fleet_expositions()
        texts = [self.telemetry.render()] + [text for _url, text in pairs]
        labels = [None] + [url for url, _text in pairs]
        return _Response(
            200, merge_expositions(texts, worker_labels=labels),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _trace(self, trace_id: str) -> _Response:
        """One collected trace, merged across the fleet on coordinators.

        Workers keep their own ring-buffer stores; the coordinator
        fetches their ``/v1/traces/<id>`` views and merges by span id,
        so one request returns the complete cross-node span tree.
        """
        local = self.traces.get(trace_id) if self.traces is not None else None
        merged = list(local or [])
        seen = {doc.get("span_id") for doc in merged if doc.get("span_id")}
        if self.coordinator is not None:
            for worker_spans in await self.coordinator.fleet_traces(trace_id):
                for doc in worker_spans:
                    span_id = doc.get("span_id")
                    if span_id and span_id in seen:
                        continue
                    if span_id:
                        seen.add(span_id)
                    merged.append(doc)
        if not merged:
            raise ServiceError(f"unknown trace {trace_id!r}", status=404)
        from repro.obs.export import sort_spans

        return _Response(
            200, {"trace_id": trace_id, "spans": sort_spans(merged)}
        )

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _submit(self, request: _Request) -> _Response:
        job_request = parse_job(request.json())
        job = self.manager.submit(job_request)  # may raise QueueFullError
        return _Response(202, {"job": job.to_json()})

    def _job_record(self, job_id: str) -> _Response:
        job = self.manager.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return _Response(200, {"job": job.to_json()})

    def _result(self, job_id: str) -> _Response:
        job = self.manager.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        if job.state == STATE_DONE:
            return _Response(
                200, {"id": job.id, "state": job.state, "result": job.result}
            )
        if job.state == STATE_CANCELLED:
            raise ServiceError(f"job {job_id} was cancelled", status=410)
        if job.state == STATE_FAILED:
            # Structured body, not an opaque ServiceError: clients get
            # the failure record (error type, attempts, transient) next
            # to the "error" string the older protocol exposed.
            return _Response(
                500,
                {"id": job.id, "state": job.state,
                 "error": f"job {job_id} failed: {job.error}",
                 "failure": job.failure},
            )
        return _Response(
            409,
            {"id": job.id, "state": job.state,
             "error": "result not ready yet"},
            headers={"Retry-After": "1"},
        )

    def _cancel(self, job_id: str) -> _Response:
        try:
            job = self.manager.cancel(job_id)
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}", status=404) from None
        return _Response(200, {"job": job.to_json()})

    def _healthz(self, _request: _Request) -> _Response:
        import repro

        payload = {
            "status": "ok",
            "version": repro.__version__,
            "jobs": self.manager.stats(),
            "executor": self.executor.describe(),
        }
        if self.coordinator is not None:
            payload["fabric"] = self.coordinator.stats()
        return _Response(200, payload)

    def _metrics(self, _request: _Request) -> _Response:
        return _Response(
            200, self.telemetry.render(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )


def build_service(
    executor=None,
    telemetry: Optional[ServiceTelemetry] = None,
    *,
    workers: Optional[int] = None,
    cache_dir=None,
    max_cache_bytes: Optional[int] = None,
    max_queue: int = 64,
    job_timeout_s: Optional[float] = 600.0,
    dispatchers: Optional[int] = None,
    coordinator: bool = False,
    worker_urls: Sequence[str] = (),
    lease_timeout_s: float = 120.0,
    steal_after_s: float = 5.0,
    shard_size: Optional[int] = None,
    trace_sample: float = 1.0,
    service_name: Optional[str] = None,
) -> ServiceApp:
    """Wire executor + telemetry + job manager into a routable app.

    Call from inside the event loop that will run the server (the job
    queue binds to it).  ``executor`` is injectable so tests can drive
    the queue with a hand-controlled backend.

    With ``coordinator=True`` a fabric :class:`~repro.fabric.
    coordinator.Coordinator` is attached, sharing the node's cache
    directory as the fleet result store.  ``worker_urls`` pre-registers
    workers named up front (``--worker-url``) with capacity 1 each;
    self-registering workers (``--coordinator-url``) report their real
    pool size instead.

    ``trace_sample`` is the head-based sampling rate for new traces
    rooted at this node (``--trace-sample``; ``0`` disables tracing —
    job latency histograms still work, they read the timing-only span
    path).  ``service_name`` labels this node's spans in exported
    traces; it defaults to the node's role.
    """
    from repro.obs.store import TraceStore
    from repro.service.executor import AnalysisExecutor

    if telemetry is None:
        telemetry = ServiceTelemetry()
    if executor is None:
        executor = AnalysisExecutor(
            workers=workers,
            cache_dir=cache_dir,
            max_cache_bytes=max_cache_bytes,
        )
    if service_name is None:
        service_name = "coordinator" if coordinator else "service"
    traces = TraceStore()
    tracer = Tracer(
        service=service_name,
        sample=trace_sample,
        sink=traces.sink if trace_sample > 0 else None,
    )
    manager = JobManager(
        executor,
        telemetry,
        max_queue=max_queue,
        job_timeout_s=job_timeout_s,
        dispatchers=dispatchers,
        tracer=tracer,
        trace_store=traces,
    )
    coord = None
    if coordinator:
        from repro.experiments.cache import resolve_cache_dir
        from repro.fabric.coordinator import Coordinator
        from repro.fabric.store import ResultStore

        coord = Coordinator(
            store=ResultStore(cache_dir=resolve_cache_dir(cache_dir)),
            telemetry=telemetry,
            lease_timeout_s=lease_timeout_s,
            steal_after_s=steal_after_s,
            shard_size=shard_size,
            tracer=tracer,
        )
        for url in worker_urls:
            coord.register_worker(url)
    return ServiceApp(
        manager, telemetry, coordinator=coord, tracer=tracer, traces=traces
    )


async def run_server(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
    stop_event: Optional["asyncio.Event"] = None,
) -> None:
    """Serve ``app`` until ``stop_event`` is set (or forever).

    Args:
        app: The routable service.
        host / port: Bind address; port 0 picks an ephemeral port.
        ready: Optional callback invoked with the bound port once the
            socket is listening and dispatchers are running.
        stop_event: Set it to shut the server down cleanly.
    """
    server = await asyncio.start_server(
        app.handle_connection, host=host, port=port, limit=_MAX_HEADER_BYTES
    )
    await app.start()
    bound_port = server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(bound_port)
    if stop_event is None:
        stop_event = asyncio.Event()
    try:
        await stop_event.wait()
    finally:
        server.close()
        await server.wait_closed()
        await app.close()


class BackgroundServer:
    """The service on a daemon thread — for tests and ``--self-check``.

    Runs its own event loop, exposes the bound ``port`` (and ``url``)
    once :meth:`start` returns, and tears everything down in
    :meth:`stop`.  Usable as a context manager.

    Any keyword arguments are forwarded to :func:`build_service`
    (``executor=`` injects a stub backend under test).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **build_kwargs):
        self.host = host
        self.port: Optional[int] = None
        self._requested_port = port
        self._build_kwargs = build_kwargs
        self.app: Optional[ServiceApp] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._stop_event: Optional["asyncio.Event"] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BackgroundServer":
        """Boot the loop thread; blocks until the socket listens."""
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("service failed to start within 30s")
        if self._startup_error is not None:
            raise ServiceError(
                f"service failed to start: {self._startup_error}"
            )
        return self

    def stop(self) -> None:
        """Shut the server down and join the loop thread."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.app = build_service(**self._build_kwargs)

        def ready(bound_port: int) -> None:
            self.port = bound_port
            self._ready.set()

        await run_server(
            self.app,
            host=self.host,
            port=self._requested_port,
            ready=ready,
            stop_event=self._stop_event,
        )
