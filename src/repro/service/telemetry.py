"""Counters, gauges and latency histograms for the analysis service.

A tiny Prometheus-text-format metrics registry: no labels machinery, no
external client library — just thread-safe counters (executor callbacks
and the HTTP layer run on different threads under test harnesses),
gauges, and fixed-bucket cumulative histograms, rendered by
:meth:`MetricsRegistry.render` behind ``GET /metrics``.

:class:`ServiceTelemetry` pre-registers the service's vocabulary
(``jobs_submitted``, ``jobs_completed``, ``cache_hits``,
``job_latency_seconds``, ...) so every subsystem increments the same
instances.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): sub-millisecond cache hits up to
#: multi-minute sweep jobs.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0, 300.0,
)


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without a dot)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()
                                  and abs(value) < 1e15):
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value

    def samples(self) -> List[str]:
        """Exposition lines of this metric."""
        return [f"{self.name} {_format_value(self.value)}"]


class Gauge:
    """A value that can go up and down (queue depth, in-flight jobs)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def samples(self) -> List[str]:
        """Exposition lines of this metric."""
        return [f"{self.name} {_format_value(self.value)}"]


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe(v)`` increments every bucket whose upper bound is >= v,
    plus the implicit ``+Inf`` bucket, the running sum and the count.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.help_text = help_text
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one measurement."""
        with self._lock:
            for idx, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[idx] += 1
            self._counts[-1] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def mean(self, default: float = 0.0) -> float:
        """Average observation (``default`` when empty)."""
        with self._lock:
            if not self._count:
                return default
            return self._sum / self._count

    def samples(self) -> List[str]:
        """Exposition lines: cumulative buckets + sum + count."""
        with self._lock:
            counts = list(self._counts)
            total, sum_ = self._count, self._sum
        lines = []
        # observe() already increments every bucket above the value, so
        # the stored counts are cumulative, as the format requires.
        for bound, bucket in zip(self.bounds, counts):
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} '
                f"{bucket}"
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {counts[-1]}')
        lines.append(f"{self.name}_sum {_format_value(sum_)}")
        lines.append(f"{self.name}_count {total}")
        return lines


class MetricsRegistry:
    """An ordered collection of metrics with one text exposition."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _register(self, factory, name: str, help_text: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, factory):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = factory(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get-or-create a counter."""
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get-or-create a gauge."""
        return self._register(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get-or-create a histogram."""
        return self._register(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str):
        """The registered metric, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            if metric.help_text:
                lines.append(f"# HELP {metric.name} {metric.help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.samples())
        return "\n".join(lines) + "\n"


class ServiceTelemetry:
    """The analysis service's metric vocabulary, pre-registered.

    Attributes (all live in :attr:`registry` and appear in
    ``GET /metrics``):
        jobs_submitted: Every accepted ``POST /v1/jobs``.
        jobs_completed: Jobs that reached the DONE state (including
            cache hits and coalesced followers).
        jobs_failed: Jobs that errored or timed out.
        jobs_cancelled: Jobs cancelled via ``DELETE /v1/jobs/<id>``.
        jobs_coalesced: Jobs attached to an identical in-flight
            computation instead of enqueueing a second one.
        jobs_rejected: Submissions bounced with HTTP 429 (queue full).
        cache_hits: Jobs answered from the persistent disk cache
            without touching the worker pool.
        computations: Payloads actually dispatched to the pool.
        http_requests: All HTTP requests served.
        http_errors: Responses with status >= 400.
        job_latency_seconds: End-to-end job latency histogram
            (queue wait + execution), derived from the job span.
        job_queue_wait_seconds: Histogram of submit→dispatch queue
            wait, derived from the job span's ``queued``/``started``
            events.
        job_execution_seconds: Histogram of dispatch→completion wall
            time (includes transient-retry backoff), derived from the
            job span.
        queue_depth: Current bounded-queue occupancy.
        jobs_inflight: Computations currently queued or running.
        pipeline_stage_hits: Analysis-pipeline cache hits (structural +
            dataflow + whole-result) across completed jobs.
        pipeline_stage_misses: Analysis-pipeline cache misses across
            completed jobs.
        pipeline_delta_runs: Delta (warm-start) re-analyses.
        pipeline_delta_fallbacks: Delta attempts that fell back to cold.
        pipeline_invalidations: Pipeline cache evictions/clears.
        job_retries: Computations retried after a transient
            infrastructure failure (worker died, pool broke).
        pool_rebuilds: Broken process pools replaced with fresh ones.
        sweep_case_failures: Use cases that failed permanently inside
            completed sweep jobs (partial results).
        sweep_case_retries: Per-use-case transient retries inside
            completed sweep jobs.
        fabric_workers: Healthy worker nodes registered with this
            coordinator.
        fabric_sweeps: Distributed sweeps accepted.
        fabric_shards_dispatched: Shard leases created.
        fabric_shards_completed: Shard result documents merged.
        fabric_shards_requeued: Shards requeued (split) after a lease
            expiry or an unreachable worker.
        fabric_lease_expiries: Leases that hit their deadline.
        fabric_steals: Speculative clones launched against stragglers.
        fabric_results_merged: Use-case results merged into the store
            from worker shard documents.
        fabric_queue_depth: Shards currently queued across tenants.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.jobs_submitted = r.counter(
            "jobs_submitted", "Jobs accepted via POST /v1/jobs")
        self.jobs_completed = r.counter(
            "jobs_completed", "Jobs that reached the DONE state")
        self.jobs_failed = r.counter(
            "jobs_failed", "Jobs that errored or timed out")
        self.jobs_cancelled = r.counter(
            "jobs_cancelled", "Jobs cancelled via DELETE /v1/jobs/<id>")
        self.jobs_coalesced = r.counter(
            "jobs_coalesced", "Jobs coalesced onto an in-flight computation")
        self.jobs_rejected = r.counter(
            "jobs_rejected", "Submissions rejected with 429 (queue full)")
        self.cache_hits = r.counter(
            "cache_hits", "Jobs served from the persistent disk cache")
        self.computations = r.counter(
            "computations", "Payloads dispatched to the worker pool")
        self.http_requests = r.counter(
            "http_requests", "HTTP requests served")
        self.http_errors = r.counter(
            "http_errors", "HTTP responses with status >= 400")
        self.job_latency_seconds = r.histogram(
            "job_latency_seconds",
            "End-to-end job latency (queue wait + execution)")
        self.job_queue_wait_seconds = r.histogram(
            "job_queue_wait_seconds",
            "Time between job acceptance and dispatch to the pool")
        self.job_execution_seconds = r.histogram(
            "job_execution_seconds",
            "Time between pool dispatch and job completion")
        self.queue_depth = r.gauge(
            "queue_depth", "Current job-queue occupancy")
        self.jobs_inflight = r.gauge(
            "jobs_inflight", "Computations currently queued or running")
        self.pipeline_stage_hits = r.counter(
            "pipeline_stage_hits",
            "Analysis-pipeline cache hits across completed jobs")
        self.pipeline_stage_misses = r.counter(
            "pipeline_stage_misses",
            "Analysis-pipeline cache misses across completed jobs")
        self.pipeline_delta_runs = r.counter(
            "pipeline_delta_runs", "Delta (warm-start) re-analyses")
        self.pipeline_delta_fallbacks = r.counter(
            "pipeline_delta_fallbacks",
            "Delta re-analyses that fell back to a cold run")
        self.pipeline_invalidations = r.counter(
            "pipeline_invalidations", "Pipeline cache evictions and clears")
        self.job_retries = r.counter(
            "job_retries",
            "Computations retried after a transient pool failure")
        self.pool_rebuilds = r.counter(
            "pool_rebuilds", "Broken process pools replaced")
        self.sweep_case_failures = r.counter(
            "sweep_case_failures",
            "Use cases failed permanently inside completed sweep jobs")
        self.sweep_case_retries = r.counter(
            "sweep_case_retries",
            "Per-use-case transient retries inside completed sweep jobs")
        self.fabric_workers = r.gauge(
            "fabric_workers", "Healthy worker nodes registered")
        self.fabric_sweeps = r.counter(
            "fabric_sweeps", "Distributed sweeps accepted")
        self.fabric_shards_dispatched = r.counter(
            "fabric_shards_dispatched", "Shard leases created")
        self.fabric_shards_completed = r.counter(
            "fabric_shards_completed", "Shard result documents merged")
        self.fabric_shards_requeued = r.counter(
            "fabric_shards_requeued",
            "Shards requeued after lease expiry or worker loss")
        self.fabric_lease_expiries = r.counter(
            "fabric_lease_expiries", "Shard leases that hit their deadline")
        self.fabric_steals = r.counter(
            "fabric_steals", "Speculative shard clones launched")
        self.fabric_results_merged = r.counter(
            "fabric_results_merged",
            "Use-case results merged from worker shard documents")
        self.fabric_queue_depth = r.gauge(
            "fabric_queue_depth", "Shards queued across tenants")

    def record_job_result(self, result) -> None:
        """Fold one completed job's failure/retry story into the registry.

        Sweep jobs complete even when individual use cases failed
        permanently (their document carries the records); this surfaces
        those partial-result facts on ``/metrics``.  Point jobs and
        pre-fault-tolerance documents are a no-op.
        """
        if not isinstance(result, dict):
            return
        metrics = result.get("metrics")
        if not isinstance(metrics, dict):
            return
        if metrics.get("failed"):
            self.sweep_case_failures.inc(metrics["failed"])
        if metrics.get("retries"):
            self.sweep_case_retries.inc(metrics["retries"])
        if metrics.get("pool_rebuilds"):
            self.pool_rebuilds.inc(metrics["pool_rebuilds"])

    def record_pipeline(self, counters: Optional[Dict[str, int]]) -> None:
        """Fold one run's analysis-pipeline counters into the registry.

        Accepts the ``pipeline`` dict of an
        :class:`~repro.core.optimizer.OptimizationReport` (or the summed
        sweep totals); ``None``/empty is a no-op so pre-pipeline records
        stay accepted.
        """
        if not counters:
            return
        hits = (
            counters.get("structural_hits", 0)
            + counters.get("dataflow_hits", 0)
            + counters.get("result_hits", 0)
        )
        misses = (
            counters.get("structural_misses", 0)
            + counters.get("dataflow_misses", 0)
        )
        if hits:
            self.pipeline_stage_hits.inc(hits)
        if misses:
            self.pipeline_stage_misses.inc(misses)
        if counters.get("delta_runs"):
            self.pipeline_delta_runs.inc(counters["delta_runs"])
        if counters.get("delta_fallbacks"):
            self.pipeline_delta_fallbacks.inc(counters["delta_fallbacks"])
        if counters.get("invalidations"):
            self.pipeline_invalidations.inc(counters["invalidations"])

    def record_job_span(self, span) -> None:
        """Derive latency histograms from a finished job span.

        The job span is the single timing source: its ``started`` event
        offset splits the total duration into queue wait (acceptance →
        pool dispatch) and execution (dispatch → completion).  Jobs
        that never dispatched (cached, cancelled while queued) observe
        queue wait only.
        """
        total = span.duration_s
        started = span.event_offset("started")
        if started is None:
            self.job_queue_wait_seconds.observe(total)
            return
        wait = max(0.0, min(started, total))
        self.job_queue_wait_seconds.observe(wait)
        self.job_execution_seconds.observe(total - wait)
        self.job_latency_seconds.observe(total)

    def retry_after_hint(self) -> int:
        """Suggested ``Retry-After`` seconds when the queue is full.

        One average computation latency (at least one second) — by the
        time that passes, a queue slot has likely drained.
        """
        return max(1, int(math.ceil(self.job_latency_seconds.mean(1.0))))

    def render(self) -> str:
        """The registry's text exposition (the ``/metrics`` body)."""
        return self.registry.render()


def _label_sample(sample: str, label_pair: str) -> str:
    """Append one ``key="value"`` pair to a sample's label set."""
    if sample.endswith("}") and "{" in sample:
        return sample[:-1] + "," + label_pair + "}"
    return sample + "{" + label_pair + "}"


def merge_expositions(
    expositions: Sequence[str],
    worker_labels: Optional[Sequence[Optional[str]]] = None,
) -> str:
    """Merge Prometheus text expositions by summing identical samples.

    The coordinator's fleet ``/metrics`` view: every sample line whose
    name (including labels, e.g. histogram buckets) appears in several
    workers' expositions is summed — counters, histogram buckets, sums
    and counts are all additive across a fleet, and gauges (queue
    depth, in-flight jobs) sum into the fleet-wide total.  ``# HELP`` /
    ``# TYPE`` comments are kept from their first occurrence; metric
    and sample order follow first appearance, so merging one exposition
    with itself is shape-preserving.

    ``worker_labels``, when given, runs parallel to ``expositions``: a
    non-``None`` entry additionally emits every sample of that
    exposition as a per-worker series labelled ``worker="<label>"``
    next to the fleet total, so a straggler node is identifiable from
    the merged ``/metrics`` alone.
    """
    meta: Dict[str, Dict[str, str]] = {}
    metric_order: List[str] = []
    sample_order: Dict[str, List[str]] = {}
    values: Dict[str, float] = {}

    for index, text in enumerate(expositions):
        label = None
        if worker_labels is not None and index < len(worker_labels):
            label = worker_labels[index]
        label_pair = None
        if label is not None:
            escaped = str(label).replace("\\", "\\\\").replace('"', '\\"')
            label_pair = f'worker="{escaped}"'
        for line in text.splitlines():
            line = line.rstrip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                    continue
                name = parts[2]
                if name not in meta:
                    meta[name] = {}
                    metric_order.append(name)
                meta[name].setdefault(parts[1], line)
                continue
            sample, _, value_text = line.rpartition(" ")
            if not sample:
                continue
            try:
                value = float(value_text)
            except ValueError:
                continue
            name = sample.split("{", 1)[0].rstrip()
            if name.endswith(("_bucket", "_sum", "_count")):
                base = name.rsplit("_", 1)[0]
                if base in meta or base in sample_order:
                    name = base
            if name not in meta and name not in sample_order:
                metric_order.append(name)
            order = sample_order.setdefault(name, [])
            if sample not in values:
                order.append(sample)
                values[sample] = 0.0
            values[sample] += value
            if label_pair is not None:
                labelled = _label_sample(sample, label_pair)
                if labelled not in values:
                    order.append(labelled)
                    values[labelled] = 0.0
                values[labelled] += value

    lines: List[str] = []
    for name in metric_order:
        comments = meta.get(name, {})
        for kind in ("HELP", "TYPE"):
            if kind in comments:
                lines.append(comments[kind])
        for sample in sample_order.get(name, ()):
            lines.append(f"{sample} {_format_value(values[sample])}")
    return "\n".join(lines) + "\n"
