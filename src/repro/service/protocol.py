"""Job request/response schemas of the analysis service.

A job is ``{"kind": ..., "params": {...}}``.  Four kinds exist:

* ``optimize`` — optimize one program for one cache/technology and
  report the optimizer's outcome plus the WCET guarantee;
* ``usecase`` — the paper's paired original/optimized measurement of
  one use case (full serialized result + ratios);
* ``sweep`` — a grid of use cases, returning per-case rows and the
  aggregate summary (the same document as ``repro sweep --json``);
* ``shard`` — an explicit case list (not a product grid) dispatched by
  a fabric coordinator; returns per-case serialized results keyed by
  the fleet content hash (:mod:`repro.fabric`).

The fabric coordinator adds two request families of its own —
:func:`parse_fabric_sweep` (``POST /v1/fabric/sweeps``) and
:func:`parse_worker_registration` (``POST /v1/fabric/workers``) —
validated here with the same field-naming error discipline.

:func:`parse_job` normalises a raw JSON payload into a
:class:`JobRequest`: defaults are filled in, every field is validated
against the benchmark registry / Table 2 / the technology table, and
any violation raises :class:`~repro.errors.ProtocolError`, which the
HTTP layer maps to a 400 response naming the offending field.

Normalisation matters beyond error hygiene: the request's
:meth:`~JobRequest.fingerprint` — a content hash over the canonical
form, salted with :data:`~repro.experiments.cache.CODE_VERSION` — is
the coalescing key, so two payloads that differ only in spelled-out
defaults share one in-flight computation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.bench.registry import TABLE1, program_names
from repro.cache.config import TABLE2, parse_l2_spec
from repro.energy.technology import TECHNOLOGIES
from repro.errors import CacheConfigError, ProtocolError
from repro.experiments.cache import CODE_VERSION

#: The job kinds the service accepts.
JOB_KINDS = ("optimize", "usecase", "sweep", "shard")

#: Hard cap on the optimization budget a single job may request.
MAX_BUDGET = 100_000

#: Hard cap on the explicit case list of one shard job.
MAX_SHARD_CASES = 256

#: Optimizer kernels a request may select (``None`` = the optimizer's
#: own default).
KERNELS = ("python", "vectorized")

#: The kernel the fabric submission path defaults to: the vectorized
#: abstract-domain kernel is the soak-tested default at fleet scale
#: (the differential CI job keeps it bit-identical to ``python``).
FABRIC_DEFAULT_KERNEL = "vectorized"

_BASELINES = ("classic", "persistence")


@dataclass(frozen=True)
class JobRequest:
    """A validated, normalised job.

    Attributes:
        kind: One of :data:`JOB_KINDS`.
        params: Canonical parameters (every default filled in, lists as
            tuples) — hashable, so requests can key dictionaries.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...]

    def param(self, name: str) -> Any:
        """Look up one canonical parameter."""
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)

    def params_dict(self) -> Dict[str, Any]:
        """The canonical parameters as a plain (JSON-able) dict."""
        return {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in self.params
        }

    def to_json(self) -> Dict[str, Any]:
        """The request as it is echoed back in job records."""
        return {"kind": self.kind, "params": self.params_dict()}

    def fingerprint(self) -> str:
        """Content hash: the coalescing and cache-bridge key.

        Two requests share a fingerprint exactly when they are
        guaranteed to produce the same result: same kind, same
        canonical parameters, same result-producing code
        (:data:`CODE_VERSION`).
        """
        blob = json.dumps(
            {
                "kind": self.kind,
                "params": self.params_dict(),
                "code_version": CODE_VERSION,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# field validators
# ----------------------------------------------------------------------
def _fail(field: str, message: str) -> "ProtocolError":
    return ProtocolError(f"{field}: {message}")


def _resolve_program(field: str, value: Any) -> str:
    if not isinstance(value, str):
        raise _fail(field, f"expected a program name, got {value!r}")
    if value in TABLE1:  # Table 1 ids ("p1".."p37") are accepted too
        return TABLE1[value]
    if value not in program_names():
        raise _fail(field, f"unknown program {value!r}")
    return value


def _resolve_config(field: str, value: Any) -> str:
    if not isinstance(value, str) or value not in TABLE2:
        raise _fail(field, f"unknown cache configuration {value!r} "
                           f"(expected a Table 2 id, e.g. 'k1')")
    return value


def _resolve_tech(field: str, value: Any) -> str:
    if not isinstance(value, str) or value not in TECHNOLOGIES:
        raise _fail(field, f"unknown technology {value!r} "
                           f"(expected one of {sorted(TECHNOLOGIES)})")
    return value


def _resolve_baseline(field: str, value: Any) -> str:
    if value not in _BASELINES:
        raise _fail(field, f"expected one of {_BASELINES}, got {value!r}")
    return value


def _resolve_kernel(field: str, value: Any) -> Optional[str]:
    if value is None:
        return None
    if value not in KERNELS:
        raise _fail(field,
                    f"expected one of {KERNELS} or null, got {value!r}")
    return value


def _resolve_l2(field: str, value: Any) -> Optional[str]:
    """One second-level cache spec; ``None`` keeps the level out."""
    if value is None:
        return None
    if not isinstance(value, str):
        raise _fail(field, f"expected an assoc:block:capacity:latency "
                           f"L2 spec or null, got {value!r}")
    try:
        parse_l2_spec(value)
    except CacheConfigError as exc:
        raise _fail(field, str(exc)) from None
    return value


def _resolve_l2_list(field: str, value: Any) -> Tuple[Optional[str], ...]:
    """The sweep's L2 axis: specs and/or nulls (null = single-level)."""
    if not isinstance(value, (list, tuple)) or not value:
        raise _fail(field, f"expected a non-empty list of L2 specs "
                           f"(null entries mean single-level), got {value!r}")
    return tuple(_resolve_l2(f"{field}[{i}]", item)
                 for i, item in enumerate(value))


def _resolve_refine(field: str, value: Any) -> bool:
    """The refinement flag; ``None``/``False`` keep the stage off."""
    if value is None:
        return False
    if not isinstance(value, bool):
        raise _fail(field, f"expected a boolean or null, got {value!r}")
    return value


def _resolve_int(field: str, value: Any, minimum: int,
                 maximum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(field, f"expected an integer, got {value!r}")
    if value < minimum:
        raise _fail(field, f"must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise _fail(field, f"must be <= {maximum}, got {value}")
    return value


def _resolve_budget(field: str, value: Any) -> Optional[int]:
    if value is None:
        return None
    return _resolve_int(field, value, minimum=1, maximum=MAX_BUDGET)


def _resolve_str_list(field: str, value: Any, resolver) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise _fail(field, f"expected a non-empty list, got {value!r}")
    return tuple(resolver(f"{field}[{i}]", item)
                 for i, item in enumerate(value))


# ----------------------------------------------------------------------
# per-kind parsing
# ----------------------------------------------------------------------
def _parse_point_params(params: Mapping[str, Any],
                        default_baseline: str) -> Tuple[Tuple[str, Any], ...]:
    """Shared params of the single-use-case kinds (optimize/usecase)."""
    return (
        ("program", _resolve_program("params.program",
                                     params.get("program"))),
        ("config", _resolve_config("params.config", params.get("config"))),
        ("tech", _resolve_tech("params.tech", params.get("tech", "45nm"))),
        ("baseline", _resolve_baseline("params.baseline",
                                       params.get("baseline",
                                                  default_baseline))),
        ("budget", _resolve_budget("params.budget",
                                   params.get("budget", 120))),
        ("seed", _resolve_int("params.seed", params.get("seed", 1),
                              minimum=0)),
    ) + (
        # Like the sweep L2 axis, the refinement flag joins the
        # canonical form only when on: pre-refinement fingerprints stay
        # byte-identical.
        (("refine", True),)
        if _resolve_refine("params.refine", params.get("refine")) else ()
    )


def _parse_sweep_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    from repro.experiments.sweep import default_grid

    grid = default_grid()
    programs = params.get("programs")
    configs = params.get("configs")
    techs = params.get("techs")
    return (
        ("programs",
         grid.programs if programs is None
         else _resolve_str_list("params.programs", programs,
                                _resolve_program)),
        ("configs",
         grid.config_ids if configs is None
         else _resolve_str_list("params.configs", configs,
                                _resolve_config)),
        ("techs",
         grid.techs if techs is None
         else _resolve_str_list("params.techs", techs, _resolve_tech)),
        ("baseline", _resolve_baseline("params.baseline",
                                       params.get("baseline", "classic"))),
        ("budget", _resolve_budget("params.budget",
                                   params.get("budget", 120))),
        ("seed", _resolve_int("params.seed", params.get("seed", 1),
                              minimum=0)),
        ("kernel", _resolve_kernel("params.kernel",
                                   params.get("kernel"))),
    ) + (
        # The L2 axis joins the canonical form only when requested, so
        # every pre-hierarchy fingerprint stays byte-identical.
        (("l2", _resolve_l2_list("params.l2", params["l2"])),)
        if params.get("l2") is not None else ()
    ) + (
        (("refine", True),)
        if _resolve_refine("params.refine", params.get("refine")) else ()
    )


def _resolve_case_list(field: str, value: Any) -> Tuple[Tuple[str, ...], ...]:
    """An explicit ``[[program, config, tech(, l2)], ...]`` case list.

    A fourth element selects a second-level cache for that case (the
    sweep grid's L2 axis, sharded); a missing or null fourth element is
    the single-level system and normalises to the triple form so the
    shard fingerprint matches pre-hierarchy submissions.
    """
    if not isinstance(value, (list, tuple)) or not value:
        raise _fail(field, f"expected a non-empty list of "
                           f"[program, config, tech] triples, got {value!r}")
    if len(value) > MAX_SHARD_CASES:
        raise _fail(field, f"at most {MAX_SHARD_CASES} cases per shard, "
                           f"got {len(value)}")
    cases = []
    for i, triple in enumerate(value):
        if not isinstance(triple, (list, tuple)) or len(triple) not in (3, 4):
            raise _fail(f"{field}[{i}]",
                        f"expected [program, config, tech] or "
                        f"[program, config, tech, l2], got {triple!r}")
        case = (
            _resolve_program(f"{field}[{i}].program", triple[0]),
            _resolve_config(f"{field}[{i}].config", triple[1]),
            _resolve_tech(f"{field}[{i}].tech", triple[2]),
        )
        if len(triple) == 4 and triple[3] is not None:
            case += (_resolve_l2(f"{field}[{i}].l2", triple[3]),)
        cases.append(case)
    return tuple(cases)


def _parse_shard_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return (
        ("cases", _resolve_case_list("params.cases", params.get("cases"))),
        ("baseline", _resolve_baseline("params.baseline",
                                       params.get("baseline", "classic"))),
        ("budget", _resolve_budget("params.budget",
                                   params.get("budget", 120))),
        ("seed", _resolve_int("params.seed", params.get("seed", 1),
                              minimum=0)),
        ("kernel", _resolve_kernel("params.kernel",
                                   params.get("kernel"))),
    ) + (
        (("refine", True),)
        if _resolve_refine("params.refine", params.get("refine")) else ()
    )


_KNOWN_POINT_PARAMS = frozenset(
    ("program", "config", "tech", "baseline", "budget", "seed", "refine"))
_KNOWN_SWEEP_PARAMS = frozenset(
    ("programs", "configs", "techs", "baseline", "budget", "seed", "kernel",
     "l2", "refine"))
_KNOWN_SHARD_PARAMS = frozenset(
    ("cases", "baseline", "budget", "seed", "kernel", "refine"))


def parse_job(payload: Any) -> JobRequest:
    """Validate and normalise one ``POST /v1/jobs`` body.

    Raises:
        ProtocolError: On any schema violation; the message names the
            offending field (the HTTP layer returns it in a 400 body).
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"job must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ProtocolError(
            f"kind: expected one of {JOB_KINDS}, got {kind!r}")
    params = payload.get("params", {})
    if not isinstance(params, Mapping):
        raise ProtocolError(
            f"params: expected a JSON object, got {type(params).__name__}")
    known = {
        "sweep": _KNOWN_SWEEP_PARAMS,
        "shard": _KNOWN_SHARD_PARAMS,
    }.get(kind, _KNOWN_POINT_PARAMS)
    unknown = sorted(set(params) - known)
    if unknown:
        raise ProtocolError(
            f"params: unknown field(s) {unknown} for kind {kind!r}")
    if kind == "sweep":
        canonical = _parse_sweep_params(params)
    elif kind == "shard":
        canonical = _parse_shard_params(params)
    else:
        # Both point kinds default to the persistence baseline, like the
        # `repro optimize`/`repro usecase` CLI paths they serve.
        canonical = _parse_point_params(params, "persistence")
    return JobRequest(kind=kind, params=canonical)


# ----------------------------------------------------------------------
# fabric request families (coordinator endpoints)
# ----------------------------------------------------------------------
_TENANT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyz0123456789-_")


def _resolve_tenant(field: str, value: Any) -> str:
    if value is None:
        return "default"
    if (not isinstance(value, str) or not value or len(value) > 64
            or set(value) - _TENANT_CHARS):
        raise _fail(field, "expected 1-64 chars of [a-z0-9_-], "
                           f"got {value!r}")
    return value


def parse_fabric_sweep(payload: Any) -> Tuple[str, Dict[str, Any]]:
    """Validate one ``POST /v1/fabric/sweeps`` body.

    Returns ``(tenant, canonical sweep params dict)``.  The fabric
    path defaults the optimizer kernel to
    :data:`FABRIC_DEFAULT_KERNEL` (the single-node paths keep the
    optimizer's own default) — ``"kernel": "python"`` stays
    selectable per sweep.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"sweep must be a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - {"tenant", "params"})
    if unknown:
        raise ProtocolError(f"unknown field(s) {unknown} for a fabric sweep")
    tenant = _resolve_tenant("tenant", payload.get("tenant"))
    params = payload.get("params", {})
    if not isinstance(params, Mapping):
        raise ProtocolError(
            f"params: expected a JSON object, got {type(params).__name__}")
    unknown = sorted(set(params) - _KNOWN_SWEEP_PARAMS)
    if unknown:
        raise ProtocolError(
            f"params: unknown field(s) {unknown} for a fabric sweep")
    if "kernel" not in params:
        params = dict(params)
        params["kernel"] = FABRIC_DEFAULT_KERNEL
    canonical = _parse_sweep_params(params)
    return tenant, {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in canonical
    }


def parse_worker_registration(payload: Any) -> Tuple[str, int]:
    """Validate one ``POST /v1/fabric/workers`` body.

    Returns ``(worker base url, capacity)``.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"registration must be a JSON object, "
            f"got {type(payload).__name__}")
    unknown = sorted(set(payload) - {"url", "capacity"})
    if unknown:
        raise ProtocolError(
            f"unknown field(s) {unknown} for a worker registration")
    url = payload.get("url")
    if not isinstance(url, str) or not url.startswith("http://"):
        raise ProtocolError(
            f"url: expected an http://host:port base url, got {url!r}")
    from repro.fabric.transport import split_base_url

    split_base_url(url)  # raises ServiceError on malformed urls
    capacity = payload.get("capacity", 1)
    return url.rstrip("/"), _resolve_int("capacity", capacity,
                                         minimum=1, maximum=1024)
