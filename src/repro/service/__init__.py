"""Async analysis service: ``repro serve`` + a blocking client.

A long-lived, stdlib-only serving layer over the experiment engine:

* :mod:`repro.service.protocol` — job request/response schemas; every
  validation failure maps to HTTP 400 with a named field;
* :mod:`repro.service.telemetry` — counters / gauges / latency
  histograms behind ``GET /metrics`` (Prometheus text format);
* :mod:`repro.service.jobs` — the bounded job queue with backpressure
  (HTTP 429 + ``Retry-After``), in-flight request coalescing keyed by
  the disk cache's content hash, per-job timeout and cancellation;
* :mod:`repro.service.executor` — the shared ``ProcessPoolExecutor``
  bridged to :mod:`repro.experiments.cache` for persistence;
* :mod:`repro.service.app` — asyncio HTTP framing/routing
  (``POST /v1/jobs``, ``GET /v1/jobs/<id>``, ``GET /v1/results/<id>``,
  ``DELETE /v1/jobs/<id>``, ``GET /healthz``, ``GET /metrics``);
* :mod:`repro.service.client` — :class:`ServiceClient`, a blocking
  client with retry + exponential backoff on 429/503.
"""

from repro.service.app import BackgroundServer, ServiceApp, build_service
from repro.service.client import ServiceClient
from repro.service.executor import AnalysisExecutor
from repro.service.jobs import (
    JOB_STATES,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    Job,
    JobManager,
)
from repro.service.protocol import JobRequest, parse_job
from repro.service.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceTelemetry,
)

__all__ = [
    "AnalysisExecutor",
    "BackgroundServer",
    "Counter",
    "Gauge",
    "Histogram",
    "JOB_STATES",
    "Job",
    "JobManager",
    "JobRequest",
    "MetricsRegistry",
    "STATE_CANCELLED",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "ServiceApp",
    "ServiceClient",
    "ServiceTelemetry",
    "build_service",
    "parse_job",
]
