"""Job lifecycle: bounded queue, coalescing, timeouts, cancellation.

The serving core sits between the HTTP layer and the compute pool:

* **Bounded queue with backpressure** — at most ``max_queue``
  computations wait at once; a submission past that raises
  :class:`~repro.errors.QueueFullError`, which the HTTP layer maps to
  429 with a ``Retry-After`` hint derived from observed job latency.
* **Request coalescing** — submissions are keyed by the request's
  content hash (:meth:`~repro.service.protocol.JobRequest.fingerprint`,
  the same hash family the disk cache uses).  A submission identical to
  an in-flight computation attaches to it instead of enqueueing a
  second one: each client still gets its own job id and record, but one
  worker produces everyone's result.
* **Cache fast path** — before costing a queue slot, the executor's
  persistent cache is probed; a warm request completes synchronously.
* **Per-job timeout** — a computation exceeding ``job_timeout_s``
  fails every attached job with a timeout error; the abandoned pool
  task cannot poison later jobs (its future is discarded).
* **Cancellation** — ``DELETE /v1/jobs/<id>`` detaches one job.  Only
  when the *last* attached job is cancelled is the computation itself
  cancelled (still-queued work is skipped; running work is abandoned) —
  one impatient client cannot kill another client's result.

Everything here runs on the event loop; the only cross-thread edge is
``asyncio.wrap_future`` over the pool's concurrent future.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import QueueFullError, ServiceError
from repro.obs.log import get_logger
from repro.obs.trace import NOOP_SPAN, Tracer, use_span
from repro.service.protocol import JobRequest
from repro.service.telemetry import ServiceTelemetry

_log = get_logger("repro.service.jobs")

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

#: Every state a job can be in (terminal: done/failed/cancelled).
JOB_STATES = (
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_DONE,
    STATE_FAILED,
    STATE_CANCELLED,
)

_TERMINAL = (STATE_DONE, STATE_FAILED, STATE_CANCELLED)

#: Attempts per computation when the failure is transient (a worker
#: died, the pool broke) — mirrors the sweep layer's retry budget.
JOB_MAX_ATTEMPTS = 3

#: First retry delay; doubles per attempt.
JOB_BACKOFF_BASE_S = 0.25


def _transient_job_error(exc: BaseException) -> bool:
    """Whether a pool exception is worth a retry on a fresh pool."""
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(exc, (BrokenProcessPool, OSError))


def _pipeline_counters(result: Any) -> Optional[Dict[str, int]]:
    """Analysis-pipeline counters embedded in a result document, if any.

    Tolerant of every result shape the executor produces: a point
    ``optimize`` document carries them at the top level, a use-case
    document under ``report``, a sweep document under ``metrics`` —
    and of documents predating the pipeline (returns ``None``).
    """
    if not isinstance(result, dict):
        return None
    for holder in (result, result.get("report"), result.get("metrics")):
        if isinstance(holder, dict):
            counters = holder.get("pipeline")
            if isinstance(counters, dict) and counters:
                return counters
    return None


def _new_job_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class Job:
    """One client-visible submission.

    Attributes:
        id: Opaque job id (the ``/v1/jobs/<id>`` handle).
        request: The validated, canonical request.
        state: One of :data:`JOB_STATES`.
        coalesced: Whether this job attached to an existing in-flight
            computation instead of enqueueing its own.
        cached: Whether the result came straight from the persistent
            cache (no queue slot, no pool dispatch).
        created_at / started_at / finished_at: Unix timestamps.
        result: The response document once ``done``.
        error: Failure description once ``failed``.
        failure: Structured failure record once ``failed`` —
            ``{"error_type", "message", "attempts", "transient"}`` —
            so clients can distinguish an exhausted retry budget from
            a deterministic failure without parsing ``error``.
    """

    id: str
    request: JobRequest
    state: str = STATE_QUEUED
    coalesced: bool = False
    cached: bool = False
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    failure: Optional[Dict[str, Any]] = None

    @property
    def terminal(self) -> bool:
        """Whether the job can no longer change state."""
        return self.state in _TERMINAL

    def to_json(self) -> Dict[str, Any]:
        """The job record served by ``GET /v1/jobs/<id>`` (no result —
        that lives behind ``/v1/results/<id>``)."""
        return {
            "id": self.id,
            "kind": self.request.kind,
            "params": self.request.params_dict(),
            "fingerprint": self.request.fingerprint(),
            "state": self.state,
            "coalesced": self.coalesced,
            "cached": self.cached,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "failure": self.failure,
        }


class _Computation:
    """One underlying unit of work, shared by >= 1 attached jobs."""

    def __init__(self, key: str, request: JobRequest, job: Job):
        self.key = key
        self.request = request
        self.jobs: List[Job] = [job]
        self.cancelled = False
        self.future = None  # the pool future, once dispatched
        self.span = NOOP_SPAN  # the job span (timing source), set by submit()


class JobManager:
    """Owns every job record and the bounded computation queue.

    Args:
        executor: The compute backend (``probe_cache``/``submit``).
        telemetry: Shared metric vocabulary.
        max_queue: Bound on waiting computations (backpressure point).
        job_timeout_s: Wall-clock budget per computation; ``None`` or
            ``<= 0`` disables the timeout.
        dispatchers: Concurrent dispatch tasks (defaults to the
            executor's worker count so the pool stays saturated but
            never oversubscribed).
    """

    def __init__(
        self,
        executor,
        telemetry: ServiceTelemetry,
        max_queue: int = 64,
        job_timeout_s: Optional[float] = 600.0,
        dispatchers: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        trace_store=None,
    ):
        if max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {max_queue}")
        self.executor = executor
        self.telemetry = telemetry
        self.tracer = tracer if tracer is not None else Tracer(service="service")
        self.trace_store = trace_store
        self.max_queue = max_queue
        self.job_timeout_s = (
            job_timeout_s if job_timeout_s and job_timeout_s > 0 else None
        )
        self.dispatchers = dispatchers or getattr(executor, "workers", 1)
        self.jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, _Computation] = {}
        self._queue: "asyncio.Queue[_Computation]" = asyncio.Queue(
            maxsize=max_queue
        )
        self._tasks: List["asyncio.Task"] = []
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the dispatcher tasks."""
        if self._started:
            return
        self._started = True
        for idx in range(self.dispatchers):
            self._tasks.append(
                asyncio.get_running_loop().create_task(
                    self._dispatch_loop(), name=f"repro-dispatch-{idx}"
                )
            )

    async def close(self) -> None:
        """Cancel the dispatcher tasks and drop queued work."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        self._started = False

    # ------------------------------------------------------------------
    # submission / lookup / cancellation (called by the HTTP layer)
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Accept one job, resolving it the cheapest way available.

        Returns the job record (possibly already ``done`` on a cache
        hit).  Raises :class:`QueueFullError` when the queue is at
        capacity — the HTTP layer turns that into 429 + Retry-After.
        """
        self.telemetry.jobs_submitted.inc()
        key = request.fingerprint()
        job = Job(id=_new_job_id(), request=request)

        comp = self._inflight.get(key)
        if comp is not None and not comp.cancelled:
            job.coalesced = True
            job.state = comp.jobs[0].state if comp.jobs else STATE_QUEUED
            job.started_at = comp.jobs[0].started_at if comp.jobs else None
            comp.jobs.append(job)
            self.jobs[job.id] = job
            self.telemetry.jobs_coalesced.inc()
            comp.span.add_event("coalesced", job_id=job.id)
            return job

        cached = self.executor.probe_cache(request)
        if cached is not None:
            now = time.time()
            job.cached = True
            job.state = STATE_DONE
            job.started_at = now
            job.finished_at = now
            job.result = cached
            self.jobs[job.id] = job
            self.telemetry.cache_hits.inc()
            self.telemetry.jobs_completed.inc()
            span = self.tracer.start_span(
                "job",
                attributes={"kind": request.kind, "job_id": job.id,
                            "cached": True},
            )
            span.end()
            return job

        comp = _Computation(key, request, job)
        # The job span is the single timing source for queue-wait and
        # execution histograms, so it exists (timed) even when tracing
        # is off; its ids only materialise under a sampled trace.
        comp.span = self.tracer.start_span(
            "job",
            timed=True,
            attributes={"kind": request.kind, "job_id": job.id},
        )
        try:
            self._queue.put_nowait(comp)
        except asyncio.QueueFull:
            self.telemetry.jobs_rejected.inc()
            retry_after = self.telemetry.retry_after_hint()
            raise QueueFullError(
                f"job queue is full ({self.max_queue} pending); "
                f"retry in ~{retry_after}s",
                status=429,
                retry_after=retry_after,
            ) from None
        self._inflight[key] = comp
        self.jobs[job.id] = job
        self.telemetry.queue_depth.set(self._queue.qsize())
        self.telemetry.jobs_inflight.set(len(self._inflight))
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job record, or ``None``."""
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> Job:
        """Cancel one job (``DELETE /v1/jobs/<id>``).

        Detaches the job from its computation; the computation itself
        is only cancelled when no attached job remains.  Raises
        ``KeyError`` for unknown ids and :class:`ServiceError` (mapped
        to 409) for jobs already in a terminal state.
        """
        job = self.jobs[job_id]
        if job.terminal:
            raise ServiceError(
                f"job {job_id} is already {job.state}", status=409
            )
        job.state = STATE_CANCELLED
        job.finished_at = time.time()
        self.telemetry.jobs_cancelled.inc()

        comp = self._find_computation(job)
        if comp is not None:
            comp.jobs = [j for j in comp.jobs if j.id != job.id]
            if not comp.jobs:
                comp.cancelled = True
                comp.span.set_status("cancelled")
                comp.span.end()
                if comp.future is not None:
                    comp.future.cancel()
                if self._inflight.get(comp.key) is comp:
                    del self._inflight[comp.key]
                self.telemetry.jobs_inflight.set(len(self._inflight))
        return job

    def _find_computation(self, job: Job) -> Optional[_Computation]:
        comp = self._inflight.get(job.request.fingerprint())
        if comp is not None and any(j.id == job.id for j in comp.jobs):
            return comp
        return None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            comp = await self._queue.get()
            try:
                await self._run_computation(comp)
            finally:
                self._queue.task_done()
                self.telemetry.queue_depth.set(self._queue.qsize())

    async def _run_computation(self, comp: _Computation) -> None:
        if comp.cancelled:
            comp.span.end()
            return
        now = time.time()
        for job in comp.jobs:
            job.state = STATE_RUNNING
            job.started_at = now
        self.telemetry.computations.inc()
        comp.span.add_event("started")
        attempt = 0
        while True:
            attempt += 1
            try:
                # Activate the job span around dispatch so the real
                # executor can thread the trace context into the pool
                # payload (stub executors just ignore the ambient span).
                with use_span(comp.span):
                    comp.future = self.executor.submit(comp.request)
            except Exception as exc:  # pool is gone / cannot spawn
                self._finish_failed(
                    comp, f"dispatch failed: {exc}",
                    error_type=type(exc).__name__, attempts=attempt,
                )
                return
            try:
                if self.job_timeout_s is not None:
                    result = await asyncio.wait_for(
                        asyncio.wrap_future(comp.future), self.job_timeout_s
                    )
                else:
                    result = await asyncio.wrap_future(comp.future)
            except asyncio.TimeoutError:
                comp.future.cancel()
                self._finish_failed(
                    comp,
                    f"job timed out after {self.job_timeout_s:g}s",
                    error_type="TimeoutError", attempts=attempt,
                    transient=True,
                )
                return
            except asyncio.CancelledError:
                comp.future.cancel()
                raise
            except Exception as exc:
                # Transient infrastructure failures (a worker died, the
                # pool broke) are retried on a rebuilt pool; the job's
                # computation itself is deterministic, so anything else
                # fails immediately.
                transient = _transient_job_error(exc)
                if (transient and attempt < JOB_MAX_ATTEMPTS
                        and not comp.cancelled):
                    self.telemetry.job_retries.inc()
                    comp.span.add_event(
                        "retry", attempt=attempt, error=type(exc).__name__
                    )
                    _log.warning(
                        "job retry after transient pool failure",
                        kind=comp.request.kind, attempt=attempt,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    recover = getattr(self.executor, "recover", None)
                    if recover is not None:
                        try:
                            recover()
                            self.telemetry.pool_rebuilds.inc()
                        except Exception:
                            pass  # next submit() finds its own fallback
                    await asyncio.sleep(
                        JOB_BACKOFF_BASE_S * (2 ** (attempt - 1))
                    )
                    continue
                self._finish_failed(
                    comp, f"{type(exc).__name__}: {exc}",
                    error_type=type(exc).__name__, attempts=attempt,
                    transient=transient,
                )
                return
            else:
                comp.span.set_attribute("attempts", attempt)
                self._finish_done(comp, result)
                return

    def _release(self, comp: _Computation) -> None:
        if self._inflight.get(comp.key) is comp:
            del self._inflight[comp.key]
        self.telemetry.jobs_inflight.set(len(self._inflight))

    def _finish_done(self, comp: _Computation, result: Dict[str, Any]) -> None:
        self._release(comp)
        # Spans collected inside the pool ride the result document under
        # a reserved key; strip them before the result is stored/served.
        if isinstance(result, dict):
            pool_spans = result.pop("__spans__", None)
            if pool_spans and self.trace_store is not None:
                self.trace_store.add_many(pool_spans)
        comp.span.end()
        if comp.cancelled:
            return  # every attached job was cancelled mid-flight
        self.telemetry.record_job_span(comp.span)
        self.telemetry.record_pipeline(_pipeline_counters(result))
        self.telemetry.record_job_result(result)
        now = time.time()
        for job in comp.jobs:
            job.state = STATE_DONE
            job.finished_at = now
            job.result = result
            self.telemetry.jobs_completed.inc()

    def _finish_failed(
        self,
        comp: _Computation,
        error: str,
        error_type: str = "ServiceError",
        attempts: int = 1,
        transient: bool = False,
    ) -> None:
        self._release(comp)
        comp.span.set_status("error", f"{error_type}: {error}")
        comp.span.set_attribute("attempts", attempts)
        comp.span.end()
        if comp.cancelled:
            return
        _log.warning(
            "job failed", error_type=error_type, message=error,
            attempts=attempts, transient=transient,
        )
        failure = {
            "error_type": error_type,
            "message": error,
            "attempts": attempts,
            "transient": transient,
        }
        now = time.time()
        for job in comp.jobs:
            job.state = STATE_FAILED
            job.finished_at = now
            job.error = error
            job.failure = dict(failure)
            self.telemetry.jobs_failed.inc()

    # ------------------------------------------------------------------
    # introspection (for /healthz)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Queue/jobs facts for ``/healthz``."""
        return {
            "jobs": len(self.jobs),
            "inflight": len(self._inflight),
            "queue_depth": self._queue.qsize(),
            "max_queue": self.max_queue,
            "dispatchers": self.dispatchers,
            "job_timeout_s": self.job_timeout_s,
        }
