"""Parametric program generators.

Building blocks for the Mälardalen structural clones
(:mod:`repro.bench.malardalen`) and for property-based tests that need a
stream of diverse, valid, deterministic programs
(:func:`random_program`).

Every generator takes the :class:`~repro.program.builder.ProgramBuilder`
it should emit into, so clones can compose them freely.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import ProgramModelError
from repro.program.builder import ProgramBuilder
from repro.program.cfg import ControlFlowGraph


def loop_nest(
    b: ProgramBuilder,
    bounds: Sequence[int],
    body_size: int,
    sim_iterations: Optional[Sequence[int]] = None,
    pre_size: int = 0,
    post_size: int = 0,
) -> None:
    """A rectangular loop nest with straight-line work at each level.

    Args:
        b: Builder to emit into.
        bounds: WCET bounds per nesting level, outermost first.
        body_size: Instructions in the innermost body.
        sim_iterations: Concrete iteration counts (defaults to bounds).
        pre_size: Instructions before entering each level's inner part.
        post_size: Instructions after leaving each level's inner part.
    """
    if not bounds:
        raise ProgramModelError("loop_nest needs at least one bound")
    sims = list(sim_iterations) if sim_iterations is not None else list(bounds)
    if len(sims) != len(bounds):
        raise ProgramModelError("sim_iterations must match bounds")

    def emit(level: int) -> None:
        with b.loop(bound=bounds[level], sim_iterations=sims[level]):
            if pre_size:
                b.code(pre_size)
            if level + 1 < len(bounds):
                emit(level + 1)
            else:
                b.code(body_size)
            if post_size:
                b.code(post_size)

    emit(0)


def branch_chain(
    b: ProgramBuilder,
    count: int,
    then_size: int,
    else_size: int = 0,
    taken_prob: float = 0.5,
    spacer: int = 1,
) -> None:
    """A chain of ``count`` conditionals (decision-heavy code).

    ``else_size == 0`` emits if-then constructs; otherwise if-then-else.
    """
    if count < 1:
        raise ProgramModelError("branch_chain needs count >= 1")
    for _ in range(count):
        if else_size > 0:
            with b.if_else(taken_prob=taken_prob) as arms:
                with arms.then_():
                    b.code(then_size)
                with arms.else_():
                    b.code(else_size)
        else:
            with b.if_then(taken_prob=taken_prob):
                b.code(then_size)
        if spacer:
            b.code(spacer)


def switch_fan(
    b: ProgramBuilder,
    cases: int,
    case_size: int,
    weights: Optional[Sequence[float]] = None,
    varying: int = 0,
) -> None:
    """One switch with ``cases`` arms of ``case_size`` instructions.

    ``varying`` adds ``i * varying`` extra instructions to case ``i`` so
    arms differ (forces the WCET path through the largest one).
    """
    if cases < 1:
        raise ProgramModelError("switch_fan needs cases >= 1")
    with b.switch(weights=weights) as sw:
        for i in range(cases):
            with sw.case():
                b.code(case_size + i * varying)


def state_machine(
    b: ProgramBuilder,
    states: int,
    handler_size: int,
    steps_bound: int,
    sim_steps: Optional[int] = None,
    varying: int = 0,
) -> None:
    """A dispatch loop over ``states`` handlers (statemate/icall shape).

    Per step one handler runs, selected uniformly in simulation; the
    WCET path always takes the biggest handler.
    """
    with b.loop(bound=steps_bound, sim_iterations=sim_steps):
        b.code(3)  # state load + dispatch computation
        switch_fan(b, states, handler_size, varying=varying)
        b.code(1)  # state store


def unrolled_kernel(b: ProgramBuilder, chunks: int, chunk_size: int) -> None:
    """A long straight-line region (duff/fdct-style unrolled code)."""
    for _ in range(chunks):
        b.code(chunk_size)


def recursion_as_loop(
    b: ProgramBuilder,
    depth_bound: int,
    sim_depth: Optional[int],
    pre_size: int,
    post_size: int,
) -> None:
    """Documented substitution for bounded self-recursion (DESIGN.md).

    A self-recursive function of bounded depth repeatedly fetches its own
    small body; cache-wise this is a loop over ``pre`` (descending calls)
    followed by a loop over ``post`` (unwinding returns).  The two loops
    share the loop bound = recursion depth.
    """
    with b.loop(bound=depth_bound, sim_iterations=sim_depth):
        b.code(pre_size)
    b.code(2)  # base case
    with b.loop(bound=depth_bound, sim_iterations=sim_depth):
        b.code(post_size)


def random_data_program(
    seed: int,
    target_size: int = 80,
    name: Optional[str] = None,
) -> ControlFlowGraph:
    """A deterministic pseudo-random program *with data accesses*.

    Extends :func:`random_program`'s role to the data-cache extension's
    property tests: every seed yields a valid program mixing scalar
    table loads, strided stream walks, and stores inside loops.
    """
    rng = random.Random(seed ^ 0x5EED)
    b = ProgramBuilder(name or f"randdata{seed}")
    n_tables = rng.randint(1, 3)
    for t in range(n_tables):
        b.data_region(f"tab{t}", rng.choice([32, 64, 128]))
    b.data_region("stream", rng.choice([1024, 2048, 4096]))
    b.code(rng.randint(2, 6))
    for _ in range(rng.randint(1, 3)):
        bound = rng.randint(4, 24)
        with b.loop(bound=bound, sim_iterations=rng.randint(1, bound)):
            if rng.random() < 0.8:
                b.load("stream", stride=rng.choice([4, 8, 16]))
            b.code(rng.randint(1, 6))
            for t in range(n_tables):
                if rng.random() < 0.6:
                    b.load(f"tab{t}", offset=rng.randrange(0, 32, 4))
            b.code(rng.randint(1, 4))
            if rng.random() < 0.4:
                b.store("stream", offset=0, stride=rng.choice([4, 8]))
        b.code(rng.randint(1, 4))
    return b.build()


def random_program(
    seed: int,
    target_size: int = 120,
    max_depth: int = 3,
    name: Optional[str] = None,
) -> ControlFlowGraph:
    """A deterministic pseudo-random structured program.

    Used by the property-based tests: for any seed the result is a valid
    CFG, so invariants (Theorem 1, soundness of the classification,
    prefetch equivalence...) can be checked across a large family of
    shapes.

    Args:
        seed: Shape seed (same seed, same program).
        target_size: Approximate number of instructions.
        max_depth: Maximum structure nesting.
        name: Program name (defaults to ``rand<seed>``).

    Returns:
        A built :class:`~repro.program.cfg.ControlFlowGraph`.
    """
    rng = random.Random(seed)
    b = ProgramBuilder(name or f"rand{seed}")
    budget = [max(10, target_size)]

    def spend(n: int) -> int:
        n = min(n, budget[0])
        budget[0] -= n
        return n

    def emit(depth: int) -> None:
        while budget[0] > 0:
            choice = rng.random()
            if choice < 0.35 or depth >= max_depth:
                b.code(max(1, spend(rng.randint(2, 12))))
            elif choice < 0.6:
                bound = rng.randint(2, 12)
                sim = rng.randint(1, bound)
                size_before = budget[0]
                with b.loop(bound=bound, sim_iterations=sim):
                    b.code(max(1, spend(rng.randint(2, 8))))
                    if depth + 1 < max_depth and rng.random() < 0.5 and budget[0] > 8:
                        emit_one(depth + 1)
                if budget[0] >= size_before:  # pragma: no cover - defensive
                    budget[0] -= 1
            elif choice < 0.85:
                with b.if_else(taken_prob=rng.uniform(0.1, 0.9)) as arms:
                    with arms.then_():
                        b.code(max(1, spend(rng.randint(1, 8))))
                    with arms.else_():
                        b.code(max(1, spend(rng.randint(1, 8))))
            else:
                cases = rng.randint(2, 5)
                with b.switch() as sw:
                    for _ in range(cases):
                        with sw.case():
                            b.code(max(1, spend(rng.randint(1, 6))))
            if rng.random() < 0.15:
                break

    def emit_one(depth: int) -> None:
        choice = rng.random()
        if choice < 0.5:
            b.code(max(1, spend(rng.randint(2, 10))))
        else:
            with b.if_then(taken_prob=rng.uniform(0.2, 0.8)):
                b.code(max(1, spend(rng.randint(1, 6))))

    b.code(2)
    while budget[0] > 0:
        emit(0)
    b.code(1)
    return b.build()
