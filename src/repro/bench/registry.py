"""Benchmark registry and the paper's Table 1 (program identification).

Programs are identified ``p1``..``p37`` in alphabetical order of their
names, matching the reading order of the paper's Table 1 (``adpcm`` =
p1 ... last program = p37).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.malardalen import FACTORIES
from repro.errors import ExperimentError
from repro.program.cfg import ControlFlowGraph


def program_names() -> List[str]:
    """All benchmark names, alphabetical (Table 1 order)."""
    return sorted(FACTORIES)


#: Table 1: program id ("p1".."p37") -> program name.
TABLE1: Dict[str, str] = {
    f"p{i + 1}": name for i, name in enumerate(sorted(FACTORIES))
}

#: Inverse of :data:`TABLE1`.
PROGRAM_IDS: Dict[str, str] = {name: pid for pid, name in TABLE1.items()}


def load(name: str) -> ControlFlowGraph:
    """Build a fresh instance of a benchmark program.

    Accepts either the program name (``"matmult"``) or its Table 1 id
    (``"p23"``).
    """
    if name in TABLE1:
        name = TABLE1[name]
    try:
        factory = FACTORIES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown benchmark {name!r}; known: {', '.join(program_names())}"
        ) from None
    return factory()


def load_all() -> List[Tuple[str, ControlFlowGraph]]:
    """Build every benchmark; returns ``(name, cfg)`` pairs in Table 1 order."""
    return [(name, load(name)) for name in program_names()]


def program_id(name: str) -> str:
    """Table 1 id of a program name."""
    try:
        return PROGRAM_IDS[name]
    except KeyError:
        raise ExperimentError(f"unknown benchmark {name!r}") from None
