"""Structural clones of the 37 Mälardalen WCET benchmark programs.

The paper optimizes the Mälardalen suite [10] compiled for ARMv7.  The C
sources cannot be compiled here (see DESIGN.md's substitution table), so
each program is re-created *structurally*: the clone reproduces the
documented control structure of the original — loop nests and their
bounds, branch/switch topology, straight-line region sizes, call
structure — because that structure (together with the address layout) is
the only thing the instruction-cache behaviour depends on in this model.

Sizes are proportional to the originals' code sizes; iteration counts
are scaled down where the original iterates thousands of times (noted
per program) to keep pure-Python simulation practical, which scales the
absolute cycle numbers but not who-wins comparisons.

Self-recursive programs (``fac``, ``fibcall``, ``recursion``) use the
recursion-as-loop substitution of
:func:`repro.bench.generator.recursion_as_loop` (documented in
DESIGN.md): cache-wise, bounded self-recursion over a small body is a
loop over that body.

Every factory is deterministic and returns a freshly built CFG.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bench.generator import (
    branch_chain,
    loop_nest,
    recursion_as_loop,
    state_machine,
    switch_fan,
    unrolled_kernel,
)
from repro.program.builder import ProgramBuilder
from repro.program.cfg import ControlFlowGraph

#: name -> factory registry, filled by the ``@_program`` decorator.
FACTORIES: Dict[str, Callable[[], ControlFlowGraph]] = {}


def _program(name: str):
    def register(fn: Callable[[], ControlFlowGraph]):
        FACTORIES[name] = fn
        fn.__benchmark_name__ = name
        return fn

    return register


@_program("adpcm")
def adpcm() -> ControlFlowGraph:
    """ADPCM encoder/decoder: the suite's largest DSP program.

    Several filter/quantizer functions called from encode and decode
    loops, with branchy quantization logic inside.
    """
    b = ProgramBuilder("adpcm")
    with b.function("filtez"):
        b.code(12)
        with b.loop(bound=6):
            b.code(22)
        b.code(10)
    with b.function("filtep"):
        b.code(26)
    with b.function("quantl"):
        with b.loop(bound=30, sim_iterations=15):
            b.code(8)
            with b.if_then(taken_prob=0.5):
                b.code(4)
        b.code(14)
    with b.function("logscl"):
        b.code(28)
        with b.if_else(taken_prob=0.3) as arms:
            with arms.then_():
                b.code(9)
            with arms.else_():
                b.code(8)
    with b.function("scalel"):
        b.code(22)
    with b.function("upzero"):
        b.code(8)
        with b.loop(bound=6):
            b.code(14)
        b.code(6)
    with b.function("uppol"):
        b.code(20)
        branch_chain(b, count=4, then_size=7, else_size=6, taken_prob=0.5)
        b.code(12)
    b.code(60)  # table and state initialisation
    with b.loop(bound=10, sim_iterations=10, name="encode_loop"):
        b.code(24)
        b.call("filtez")
        b.call("filtep")
        b.call("quantl")
        b.call("logscl")
        b.call("scalel")
        b.call("upzero")
        b.call("uppol")
        b.code(38)
    with b.loop(bound=10, sim_iterations=10, name="decode_loop"):
        b.code(20)
        b.call("filtez")
        b.call("filtep")
        b.call("logscl")
        b.call("scalel")
        b.call("upzero")
        b.call("uppol")
        b.code(30)
    b.code(18)
    return b.build()


@_program("bs")
def bs() -> ControlFlowGraph:
    """Binary search over 15 elements: one loop, one three-way decision."""
    b = ProgramBuilder("bs")
    b.code(6)
    with b.loop(bound=4, sim_iterations=4):
        b.code(5)
        with b.if_else(taken_prob=0.5) as arms:
            with arms.then_():
                b.code(3)
            with arms.else_():
                with b.if_else(taken_prob=0.5) as inner:
                    with inner.then_():
                        b.code(3)
                    with inner.else_():
                        b.code(2)
    b.code(3)
    return b.build()


@_program("bsort100")
def bsort100() -> ControlFlowGraph:
    """Bubble sort of 100 elements: double nest with a swap conditional.

    Bounds scaled 100 -> 24 for simulation tractability.
    """
    b = ProgramBuilder("bsort100")
    b.code(5)
    with b.loop(bound=24, sim_iterations=20):
        b.code(3)
        with b.loop(bound=24, sim_iterations=20):
            b.code(6)
            with b.if_then(taken_prob=0.5):
                b.code(7)  # swap
        b.code(2)
    b.code(3)
    return b.build()


@_program("cnt")
def cnt() -> ControlFlowGraph:
    """Counts positive numbers in a 10x10 matrix: 2-level nest + test."""
    b = ProgramBuilder("cnt")
    b.code(6)
    with b.loop(bound=10):
        b.code(2)
        with b.loop(bound=10):
            b.code(5)
            with b.if_else(taken_prob=0.5) as arms:
                with arms.then_():
                    b.code(3)
                with arms.else_():
                    b.code(3)
        b.code(2)
    b.code(4)
    return b.build()


@_program("compress")
def compress() -> ControlFlowGraph:
    """Data compression kernel: hash loop with branchy match logic."""
    b = ProgramBuilder("compress")
    b.code(50)  # table setup
    with b.loop(bound=50, sim_iterations=40):
        b.code(20)
        with b.if_else(taken_prob=0.6) as arms:
            with arms.then_():
                b.code(18)  # match found
            with arms.else_():
                b.code(10)
                with b.loop(bound=6, sim_iterations=3):
                    b.code(12)  # probe chain
                with b.if_then(taken_prob=0.3):
                    b.code(26)  # emit code / table clear
        b.code(12)
    with b.loop(bound=30, sim_iterations=25, name="output"):
        b.code(16)
        with b.if_then(taken_prob=0.5):
            b.code(8)
    b.code(20)
    return b.build()


@_program("cover")
def cover() -> ControlFlowGraph:
    """Artificial coverage program: three big switches inside loops."""
    b = ProgramBuilder("cover")
    b.code(4)
    with b.loop(bound=10, sim_iterations=10):
        switch_fan(b, cases=20, case_size=4, varying=0)
    with b.loop(bound=10, sim_iterations=10):
        switch_fan(b, cases=30, case_size=4, varying=0)
    with b.loop(bound=10, sim_iterations=10):
        switch_fan(b, cases=10, case_size=4, varying=0)
    b.code(3)
    return b.build()


@_program("crc")
def crc() -> ControlFlowGraph:
    """CRC over a 40-byte message: table init loop + per-byte loop + call."""
    b = ProgramBuilder("crc")
    with b.function("icrc1"):
        with b.loop(bound=8):
            b.code(3)
            with b.if_else(taken_prob=0.5) as arms:
                with arms.then_():
                    b.code(3)
                with arms.else_():
                    b.code(2)
    b.code(8)
    with b.loop(bound=32, sim_iterations=32, name="tab_init"):
        b.code(4)
        b.call("icrc1")
    with b.loop(bound=40, sim_iterations=40, name="message"):
        b.code(7)
    b.code(5)
    return b.build()


@_program("duff")
def duff() -> ControlFlowGraph:
    """Duff's device copy: switch into an unrolled loop body."""
    b = ProgramBuilder("duff")
    b.code(6)
    switch_fan(b, cases=8, case_size=3, varying=0)  # remainder entry
    with b.loop(bound=5, sim_iterations=5):
        unrolled_kernel(b, chunks=8, chunk_size=4)  # 8-way unrolled copy
    b.code(4)
    return b.build()


@_program("edn")
def edn() -> ControlFlowGraph:
    """Signal-processing suite: several sequential filter loop nests."""
    b = ProgramBuilder("edn")
    b.code(16)
    loop_nest(b, bounds=[8, 8], body_size=18)          # vec_mpy / mac
    with b.loop(bound=25, sim_iterations=25):          # fir
        b.code(9)
        with b.loop(bound=8, sim_iterations=8):
            b.code(14)
    with b.loop(bound=25, sim_iterations=20):          # fir_no_red_ld
        b.code(22)
    loop_nest(b, bounds=[10], body_size=26)            # latsynth
    loop_nest(b, bounds=[16], body_size=15)            # iir1
    loop_nest(b, bounds=[8, 4], body_size=20)          # codebook
    loop_nest(b, bounds=[16], body_size=18)            # jpegdct
    b.code(14)
    return b.build()


@_program("expint")
def expint() -> ControlFlowGraph:
    """Exponential integral: outer series loop with data-dependent arm."""
    b = ProgramBuilder("expint")
    b.code(8)
    with b.loop(bound=15, sim_iterations=12):
        b.code(4)
        with b.if_else(taken_prob=0.5) as arms:
            with arms.then_():
                b.code(6)
                with b.loop(bound=10, sim_iterations=5):
                    b.code(5)
            with arms.else_():
                b.code(8)
    b.code(4)
    return b.build()


@_program("fac")
def fac() -> ControlFlowGraph:
    """Factorial via self-recursion (recursion-as-loop substitution)."""
    b = ProgramBuilder("fac")
    b.code(4)
    recursion_as_loop(b, depth_bound=10, sim_depth=8, pre_size=4, post_size=3)
    b.code(3)
    return b.build()


@_program("fdct")
def fdct() -> ControlFlowGraph:
    """Fast DCT: two loops with very large straight-line bodies."""
    b = ProgramBuilder("fdct")
    b.code(8)
    with b.loop(bound=8, sim_iterations=8, name="rows"):
        unrolled_kernel(b, chunks=8, chunk_size=24)
    with b.loop(bound=8, sim_iterations=8, name="cols"):
        unrolled_kernel(b, chunks=8, chunk_size=26)
    b.code(6)
    return b.build()


@_program("fft1")
def fft1() -> ControlFlowGraph:
    """1024-point FFT (scaled): butterfly nest + sine call.

    Stage/butterfly bounds scaled to 6/16.
    """
    b = ProgramBuilder("fft1")
    with b.function("my_sin"):
        b.code(10)
        with b.loop(bound=6):
            b.code(14)
        b.code(6)
    b.code(18)
    with b.loop(bound=16, sim_iterations=16, name="init"):
        b.code(6)
        b.call("my_sin")
    with b.loop(bound=6, sim_iterations=6, name="stages"):
        b.code(12)
        with b.loop(bound=16, sim_iterations=8, name="butterflies"):
            b.code(28)
            with b.if_then(taken_prob=0.5):
                b.code(9)
    b.code(12)
    return b.build()


@_program("fibcall")
def fibcall() -> ControlFlowGraph:
    """Iterative Fibonacci: one tiny loop."""
    b = ProgramBuilder("fibcall")
    b.code(4)
    with b.loop(bound=30, sim_iterations=30):
        b.code(6)
    b.code(2)
    return b.build()


@_program("fir")
def fir() -> ControlFlowGraph:
    """FIR filter over a signal: outer sample loop, inner tap loop."""
    b = ProgramBuilder("fir")
    b.code(8)
    with b.loop(bound=40, sim_iterations=30):
        b.code(3)
        with b.loop(bound=8, sim_iterations=8):
            b.code(5)
        b.code(3)
    b.code(3)
    return b.build()


@_program("icall")
def icall() -> ControlFlowGraph:
    """Indirect call dispatch: a loop selecting among 4 handlers."""
    b = ProgramBuilder("icall")
    with b.function("h0"):
        b.code(6)
    with b.function("h1"):
        b.code(8)
    with b.function("h2"):
        b.code(5)
    with b.function("h3"):
        b.code(9)
    b.code(5)
    with b.loop(bound=12, sim_iterations=12):
        b.code(2)
        with b.switch() as sw:
            with sw.case():
                b.call("h0")
            with sw.case():
                b.call("h1")
            with sw.case():
                b.call("h2")
            with sw.case():
                b.call("h3")
        b.code(1)
    b.code(3)
    return b.build()


@_program("insertsort")
def insertsort() -> ControlFlowGraph:
    """Insertion sort of 10 elements: nested while with early exit arm."""
    b = ProgramBuilder("insertsort")
    b.code(5)
    with b.loop(bound=9, sim_iterations=9):
        b.code(3)
        with b.loop(bound=9, sim_iterations=4):
            b.code(4)
            with b.if_then(taken_prob=0.6):
                b.code(4)  # shift element
        b.code(2)
    b.code(2)
    return b.build()


@_program("janne_complex")
def janne_complex() -> ControlFlowGraph:
    """Two nested loops whose inner bound depends on the outer variable."""
    b = ProgramBuilder("janne_complex")
    b.code(4)
    with b.loop(bound=11, sim_iterations=9):
        b.code(2)
        with b.loop(bound=8, sim_iterations=5):
            b.code(3)
            with b.if_else(taken_prob=0.4) as arms:
                with arms.then_():
                    b.code(3)
                with arms.else_():
                    b.code(4)
        b.code(2)
    b.code(2)
    return b.build()


@_program("jfdctint")
def jfdctint() -> ControlFlowGraph:
    """JPEG integer DCT: two loops with very large bodies (like fdct)."""
    b = ProgramBuilder("jfdctint")
    b.code(10)
    with b.loop(bound=8, sim_iterations=8, name="pass1"):
        unrolled_kernel(b, chunks=9, chunk_size=25)
    with b.loop(bound=8, sim_iterations=8, name="pass2"):
        unrolled_kernel(b, chunks=9, chunk_size=27)
    b.code(6)
    return b.build()


@_program("lcdnum")
def lcdnum() -> ControlFlowGraph:
    """LCD digit driver: loop over digits with a 10-case decode switch."""
    b = ProgramBuilder("lcdnum")
    b.code(3)
    with b.loop(bound=10, sim_iterations=10):
        b.code(2)
        switch_fan(b, cases=10, case_size=3, varying=0)
        b.code(1)
    b.code(2)
    return b.build()


@_program("lms")
def lms() -> ControlFlowGraph:
    """LMS adaptive filter: per-sample loop with two inner tap loops."""
    b = ProgramBuilder("lms")
    with b.function("gaussian"):
        b.code(12)
        with b.loop(bound=4):
            b.code(10)
        b.code(8)
    b.code(20)
    with b.loop(bound=25, sim_iterations=20, name="samples"):
        b.call("gaussian")
        b.code(10)
        with b.loop(bound=8, sim_iterations=8, name="filter"):
            b.code(12)
        b.code(8)
        with b.loop(bound=8, sim_iterations=8, name="update"):
            b.code(14)
        b.code(8)
    b.code(10)
    return b.build()


@_program("ludcmp")
def ludcmp() -> ControlFlowGraph:
    """LU decomposition of a 5x5 system: triangular triple nests."""
    b = ProgramBuilder("ludcmp")
    b.code(8)
    with b.loop(bound=5, sim_iterations=5):
        b.code(3)
        with b.loop(bound=5, sim_iterations=3):
            b.code(4)
            with b.loop(bound=5, sim_iterations=3):
                b.code(5)
            b.code(3)
        with b.loop(bound=5, sim_iterations=3):
            b.code(4)
            with b.loop(bound=5, sim_iterations=2):
                b.code(5)
            with b.if_then(taken_prob=0.2):
                b.code(3)
    with b.loop(bound=5, sim_iterations=5, name="subst"):
        b.code(4)
        with b.loop(bound=5, sim_iterations=3):
            b.code(4)
    b.code(5)
    return b.build()


@_program("matmult")
def matmult() -> ControlFlowGraph:
    """20x20 matrix multiply (scaled to 8x8): classic triple nest."""
    b = ProgramBuilder("matmult")
    b.code(6)
    loop_nest(
        b,
        bounds=[8, 8],
        body_size=3,
        pre_size=2,
        post_size=1,
    )  # initialisation of the two operand matrices
    with b.loop(bound=8, sim_iterations=8, name="i"):
        b.code(2)
        with b.loop(bound=8, sim_iterations=8, name="j"):
            b.code(2)
            with b.loop(bound=8, sim_iterations=8, name="k"):
                b.code(5)
            b.code(2)
    b.code(3)
    return b.build()


@_program("minver")
def minver() -> ControlFlowGraph:
    """3x3 matrix inversion: several small nests with pivoting branches."""
    b = ProgramBuilder("minver")
    b.code(10)
    with b.loop(bound=3, sim_iterations=3, name="pivot"):
        b.code(4)
        with b.loop(bound=3, sim_iterations=3):
            b.code(3)
            with b.if_then(taken_prob=0.4):
                b.code(4)
        with b.if_then(taken_prob=0.3):
            with b.loop(bound=3, sim_iterations=3):
                b.code(5)  # row swap
        with b.loop(bound=3, sim_iterations=3, name="eliminate"):
            b.code(3)
            with b.loop(bound=3, sim_iterations=3):
                b.code(4)
    with b.loop(bound=3, sim_iterations=3, name="mmult"):
        with b.loop(bound=3, sim_iterations=3):
            b.code(2)
            with b.loop(bound=3, sim_iterations=3):
                b.code(4)
    b.code(6)
    return b.build()


@_program("ndes")
def ndes() -> ControlFlowGraph:
    """DES-like block cipher: bit permutation loops + round function."""
    b = ProgramBuilder("ndes")
    with b.function("getbit"):
        b.code(8)
        with b.if_else(taken_prob=0.5) as arms:
            with arms.then_():
                b.code(4)
            with arms.else_():
                b.code(4)
    with b.function("ks"):
        b.code(12)
        with b.loop(bound=8):
            b.code(10)
        b.code(8)
    b.code(30)
    with b.loop(bound=16, sim_iterations=16, name="rounds"):
        b.code(14)
        b.call("ks")
        with b.loop(bound=8, sim_iterations=8, name="sboxes"):
            b.code(16)
            b.call("getbit")
            b.code(10)
        with b.loop(bound=32, sim_iterations=16, name="perm"):
            b.code(8)
        b.code(12)
    b.code(18)
    return b.build()


@_program("ns")
def ns() -> ControlFlowGraph:
    """Search in a 4-dimensional array: 4-deep nest with early exit."""
    b = ProgramBuilder("ns")
    b.code(4)
    with b.loop(bound=5, sim_iterations=5):
        with b.loop(bound=5, sim_iterations=5):
            with b.loop(bound=5, sim_iterations=4):
                with b.loop(bound=5, sim_iterations=3):
                    b.code(4)
                    with b.if_then(taken_prob=0.1):
                        b.code(3)  # found
    b.code(2)
    return b.build()


@_program("nsichneu")
def nsichneu() -> ControlFlowGraph:
    """Simulated Petri net: hundreds of independent if-then updates.

    The original is ~4000 lines of generated transitions in a loop that
    runs twice; the clone keeps the shape (120 transitions of ~9
    instructions each) at a tractable size.
    """
    b = ProgramBuilder("nsichneu")
    b.code(4)
    with b.loop(bound=2, sim_iterations=2):
        for _ in range(120):
            with b.if_then(taken_prob=0.35):
                b.code(7)
            b.code(2)
    b.code(2)
    return b.build()


@_program("prime")
def prime() -> ControlFlowGraph:
    """Primality test: trial division loop with even/odd fast path."""
    b = ProgramBuilder("prime")
    b.code(5)
    with b.if_else(taken_prob=0.5) as arms:
        with arms.then_():
            b.code(3)
        with arms.else_():
            with b.loop(bound=18, sim_iterations=14):
                b.code(5)
                with b.if_then(taken_prob=0.1):
                    b.code(2)  # divisor found
    b.code(3)
    return b.build()


@_program("qsort-exam")
def qsort_exam() -> ControlFlowGraph:
    """Non-recursive quicksort of 20 elements: partition loops + stack."""
    b = ProgramBuilder("qsort-exam")
    b.code(8)
    with b.loop(bound=12, sim_iterations=8, name="stack"):
        b.code(5)
        with b.loop(bound=20, sim_iterations=10, name="partition"):
            with b.loop(bound=10, sim_iterations=3, name="scan_up"):
                b.code(3)
            with b.loop(bound=10, sim_iterations=3, name="scan_down"):
                b.code(3)
            with b.if_else(taken_prob=0.7) as arms:
                with arms.then_():
                    b.code(6)  # swap
                with arms.else_():
                    b.code(2)
        with b.if_else(taken_prob=0.5) as arms:
            with arms.then_():
                b.code(5)  # push
            with arms.else_():
                b.code(3)  # pop
    b.code(4)
    return b.build()


@_program("qurt")
def qurt() -> ControlFlowGraph:
    """Quadratic root computation: sqrt helper called under branches."""
    b = ProgramBuilder("qurt")
    with b.function("my_sqrt"):
        b.code(4)
        with b.loop(bound=19, sim_iterations=12):
            b.code(6)
        b.code(3)
    b.code(10)
    with b.if_else(taken_prob=0.5) as arms:
        with arms.then_():
            b.code(4)
            b.call("my_sqrt")
            b.code(5)
        with arms.else_():
            b.code(3)
            b.call("my_sqrt")
            b.code(6)
    b.code(4)
    return b.build()


@_program("recursion")
def recursion() -> ControlFlowGraph:
    """Recursive Fibonacci (depth-bounded), as the loop substitution."""
    b = ProgramBuilder("recursion")
    b.code(3)
    recursion_as_loop(b, depth_bound=25, sim_depth=20, pre_size=6, post_size=5)
    b.code(2)
    return b.build()


@_program("select")
def select() -> ControlFlowGraph:
    """Select the k-th smallest of 20: partition loops like qsort."""
    b = ProgramBuilder("select")
    b.code(6)
    with b.loop(bound=10, sim_iterations=6, name="outer"):
        b.code(4)
        with b.loop(bound=20, sim_iterations=9, name="walk"):
            b.code(3)
            with b.if_else(taken_prob=0.5) as arms:
                with arms.then_():
                    b.code(4)
                with arms.else_():
                    b.code(2)
        with b.if_then(taken_prob=0.4):
            b.code(6)  # swap pivot
    b.code(3)
    return b.build()


@_program("sqrt")
def sqrt() -> ControlFlowGraph:
    """Square root by Taylor iteration: one small loop and a guard."""
    b = ProgramBuilder("sqrt")
    b.code(4)
    with b.if_then(taken_prob=0.9):
        with b.loop(bound=19, sim_iterations=15):
            b.code(7)
    b.code(3)
    return b.build()


@_program("st")
def st() -> ControlFlowGraph:
    """Statistics package: sequential array passes + sqrt calls."""
    b = ProgramBuilder("st")
    with b.function("my_sqrt"):
        b.code(8)
        with b.loop(bound=19, sim_iterations=12):
            b.code(12)
    b.code(16)
    with b.loop(bound=25, sim_iterations=25, name="init"):
        b.code(15)
    with b.loop(bound=25, sim_iterations=25, name="sum"):
        b.code(9)
    with b.loop(bound=25, sim_iterations=25, name="var"):
        b.code(13)
    b.call("my_sqrt")
    with b.loop(bound=25, sim_iterations=25, name="cov"):
        b.code(11)
    b.call("my_sqrt")
    b.code(12)
    return b.build()


@_program("statemate")
def statemate() -> ControlFlowGraph:
    """Generated car-window controller: a big flat state machine.

    The original is ~1200 lines of generated if-chains; the clone drives
    a 10-state, ~30-instruction-handler machine for 8 steps plus long
    guard chains.
    """
    b = ProgramBuilder("statemate")
    b.code(14)
    branch_chain(b, count=18, then_size=7, else_size=5, taken_prob=0.4, spacer=3)
    state_machine(
        b, states=12, handler_size=34, steps_bound=8, sim_steps=8, varying=1
    )
    branch_chain(b, count=14, then_size=8, else_size=4, taken_prob=0.3, spacer=3)
    b.code(8)
    return b.build()


@_program("ud")
def ud() -> ControlFlowGraph:
    """LU-based linear equation solver (like ludcmp, different shape)."""
    b = ProgramBuilder("ud")
    b.code(6)
    with b.loop(bound=5, sim_iterations=5):
        with b.loop(bound=5, sim_iterations=3):
            b.code(4)
            with b.loop(bound=5, sim_iterations=2):
                b.code(4)
    with b.loop(bound=5, sim_iterations=5, name="forward"):
        b.code(3)
        with b.loop(bound=5, sim_iterations=2):
            b.code(4)
    with b.loop(bound=5, sim_iterations=5, name="backward"):
        b.code(3)
        with b.loop(bound=5, sim_iterations=2):
            b.code(4)
    b.code(4)
    return b.build()


@_program("whet")
def whet() -> ControlFlowGraph:
    """Whetstone: mixed loop modules with transcendental helper calls."""
    b = ProgramBuilder("whet")
    with b.function("p3"):
        b.code(20)
    with b.function("p0"):
        b.code(16)
    with b.function("pa"):
        b.code(10)
        with b.loop(bound=6):
            b.code(14)
    b.code(16)
    with b.loop(bound=12, sim_iterations=12, name="mod1"):
        b.code(18)
    with b.loop(bound=14, sim_iterations=14, name="mod2"):
        b.code(14)
        b.call("pa")
    with b.loop(bound=12, sim_iterations=12, name="mod3"):
        b.code(10)
        b.call("p3")
    with b.loop(bound=16, sim_iterations=16, name="mod4"):
        b.code(12)
        with b.if_then(taken_prob=0.5):
            b.code(9)
    with b.loop(bound=12, sim_iterations=12, name="mod5"):
        b.code(8)
        b.call("p0")
    b.code(12)
    return b.build()
