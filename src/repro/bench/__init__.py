"""Benchmark substrate: Mälardalen structural clones + generators."""

from repro.bench.generator import (
    branch_chain,
    loop_nest,
    random_data_program,
    random_program,
    recursion_as_loop,
    state_machine,
    switch_fan,
    unrolled_kernel,
)
from repro.bench.malardalen import FACTORIES
from repro.bench.registry import (
    PROGRAM_IDS,
    TABLE1,
    load,
    load_all,
    program_id,
    program_names,
)

__all__ = [
    "FACTORIES",
    "PROGRAM_IDS",
    "TABLE1",
    "branch_chain",
    "load",
    "load_all",
    "loop_nest",
    "program_id",
    "program_names",
    "random_data_program",
    "random_program",
    "recursion_as_loop",
    "state_machine",
    "switch_fan",
    "unrolled_kernel",
]
