"""Process technology nodes (the paper evaluates 45 nm and 32 nm).

The constants are calibrated to published CACTI 6.5 trends rather than
copied from a tool run (CACTI is not available offline — see the
substitution table in DESIGN.md).  What the experiments depend on is the
*relationships* the paper leans on, all of which hold here:

* DRAM accesses cost orders of magnitude more energy and time than cache
  hits — so miss-rate reductions cut dynamic energy;
* leakage grows with capacity and worsens relative to dynamic energy as
  the node shrinks (Section 2.3: cache locking pays a growing static
  penalty at 32 nm) — so ACET reductions cut static energy;
* at a smaller node the same cache is faster but leaks relatively more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ReproError


@dataclass(frozen=True)
class TechnologyNode:
    """One CMOS process point.

    Attributes:
        name: Label used in reports (``"45nm"``/``"32nm"``).
        feature_nm: Feature size in nanometres.
        clock_hz: Core/cache clock of the embedded target.
        dynamic_scale: Per-access dynamic energy relative to 45 nm.
        leakage_scale: Leakage power relative to 45 nm (grows as the
            node shrinks — the paper's key technology argument).
        dram_latency_s: Random-access latency of the level-two 128 MB
            DRAM.
        dram_base_energy_j: Effective activation/control energy per
            block transfer (row-buffer locality amortised).
        dram_energy_per_byte_j: Transfer energy per byte moved.
        dram_background_power_w: Standby + refresh power of the 128 MB
            array.  This is what makes the memory system's energy
            strongly time-proportional — the paper's energy improvement
            (11.2 %) tracking its ACET improvement (10.2 %) only makes
            sense when a shorter run directly saves background energy,
            since prefetching shifts DRAM traffic earlier rather than
            removing it.
    """

    name: str
    feature_nm: int
    clock_hz: float
    dynamic_scale: float
    leakage_scale: float
    dram_latency_s: float
    dram_base_energy_j: float
    dram_energy_per_byte_j: float
    dram_background_power_w: float

    def cycles(self, seconds: float) -> int:
        """Round a duration up to whole clock cycles."""
        import math

        return max(1, math.ceil(seconds * self.clock_hz))

    def seconds(self, cycles: float) -> float:
        """Duration of a cycle count."""
        return cycles / self.clock_hz


#: 45 nm embedded node.
TECH_45NM = TechnologyNode(
    name="45nm",
    feature_nm=45,
    clock_hz=500e6,
    dynamic_scale=1.0,
    leakage_scale=1.0,
    dram_latency_s=60e-9,
    dram_base_energy_j=0.20e-9,
    dram_energy_per_byte_j=4e-12,
    dram_background_power_w=3.0e-3,
)

#: 32 nm embedded node: faster clock, cheaper switching, but markedly
#: higher leakage share — the regime where the paper argues unlocked
#: caches + prefetching beat locking.
TECH_32NM = TechnologyNode(
    name="32nm",
    feature_nm=32,
    clock_hz=800e6,
    dynamic_scale=0.65,
    leakage_scale=1.8,
    dram_latency_s=55e-9,
    dram_base_energy_j=0.16e-9,
    dram_energy_per_byte_j=3e-12,
    dram_background_power_w=2.2e-3,
)

#: Second-level arrays are built from density-optimised, higher-Vt SRAM
#: cells: they leak far less per bit than the latency-optimised L1
#: arrays (which is why a large L2 is affordable at all), at the price
#: of a slower, slightly more expensive access.  The factors below scale
#: the L1-calibrated CACTI stand-in (:mod:`repro.energy.cacti`) to an L2
#: array of the same capacity; they match the leakage/dynamic spread
#: CACTI 6.5 reports between its ``itrs-hp`` and ``itrs-lstp`` cells.
L2_LEAKAGE_FACTOR = 0.35
#: Per-access dynamic energy of an L2 array relative to an L1 array of
#: the same geometry (longer, more heavily loaded wires).
L2_DYNAMIC_FACTOR = 1.25

#: The paper's two technologies, keyed by name.
TECHNOLOGIES: Dict[str, TechnologyNode] = {
    TECH_45NM.name: TECH_45NM,
    TECH_32NM.name: TECH_32NM,
}


def technology(name: str) -> TechnologyNode:
    """Look up a technology node by name (``"45nm"``/``"32nm"``)."""
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        raise ReproError(
            f"unknown technology {name!r}; available: {sorted(TECHNOLOGIES)}"
        ) from None
