"""Energy accounting for a simulated run.

Turns the event counts a trace simulation produces into the paper's
``e_a`` — the memory system's energy consumption in the ACET scenario
(Section S.4) — split into its dynamic and static parts:

* dynamic: cache reads (every fetch probes the cache, prefetch
  instructions included), block fills, and DRAM transfers (demand misses
  and prefetch fetches alike — a prefetch moves the same block a miss
  would, it just moves it earlier);
* static: cache leakage integrated over the memory time of the run —
  which is why a shorter ACET directly saves energy, the effect the
  paper's Condition 3 protects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.cacti import CacheEnergyModel
from repro.energy.dram import DRAMModel
from repro.errors import ReproError


@dataclass(frozen=True)
class MemoryEventCounts:
    """Event counts of one run, as produced by :mod:`repro.sim`.

    Attributes:
        fetches: Instruction fetches (cache reads), prefetches included.
        demand_misses: Fetches that went to DRAM.
        prefetch_transfers: Blocks moved by software prefetches.
        fills: Blocks installed into the cache (miss fills + prefetch
            fills).
        memory_cycles: Total cycles spent in the memory system.
    """

    fetches: int
    demand_misses: int
    prefetch_transfers: int
    fills: int
    memory_cycles: float

    def __post_init__(self) -> None:
        for name in ("fetches", "demand_misses", "prefetch_transfers", "fills"):
            if getattr(self, name) < 0:
                raise ReproError(f"{name} must be >= 0")
        if self.memory_cycles < 0:
            raise ReproError("memory_cycles must be >= 0")
        if self.demand_misses > self.fetches:
            raise ReproError("demand_misses cannot exceed fetches")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one run in joules.

    ``total_j = cache_dynamic_j + dram_dynamic_j + cache_static_j +
    dram_static_j``.
    """

    cache_dynamic_j: float
    dram_dynamic_j: float
    cache_static_j: float
    dram_static_j: float

    @property
    def static_j(self) -> float:
        """Time-proportional part: cache leakage + DRAM background."""
        return self.cache_static_j + self.dram_static_j

    @property
    def total_j(self) -> float:
        """Total memory-system energy."""
        return self.dynamic_j + self.static_j

    @property
    def dynamic_j(self) -> float:
        """Dynamic (switching) part."""
        return self.cache_dynamic_j + self.dram_dynamic_j

    @property
    def static_share(self) -> float:
        """Fraction of the total that is time-proportional."""
        total = self.total_j
        if total == 0:
            return 0.0
        return self.static_j / total


def account_energy(
    counts: MemoryEventCounts,
    cache_model: CacheEnergyModel,
    dram: DRAMModel,
) -> EnergyBreakdown:
    """Compute the memory system's energy for one run.

    Args:
        counts: Event counts from the simulation.
        cache_model: CACTI-style model of the primary cache.
        dram: Level-two memory model.

    Returns:
        The :class:`EnergyBreakdown`.
    """
    block_size = cache_model.config.block_size
    cache_dynamic = (
        counts.fetches * cache_model.read_energy_j
        + counts.fills * cache_model.fill_energy_j
    )
    transfers = counts.demand_misses + counts.prefetch_transfers
    dram_dynamic = transfers * dram.access_energy_j(block_size)
    seconds = cache_model.tech.seconds(counts.memory_cycles)
    return EnergyBreakdown(
        cache_dynamic_j=cache_dynamic,
        dram_dynamic_j=dram_dynamic,
        cache_static_j=cache_model.leakage_w * seconds,
        dram_static_j=dram.background_power_w * seconds,
    )
