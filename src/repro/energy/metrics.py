"""Energy accounting for a simulated run.

Turns the event counts a trace simulation produces into the paper's
``e_a`` — the memory system's energy consumption in the ACET scenario
(Section S.4) — split into its dynamic and static parts:

* dynamic: cache reads (every fetch probes the cache, prefetch
  instructions included), block fills, and DRAM transfers (demand misses
  and prefetch fetches alike — a prefetch moves the same block a miss
  would, it just moves it earlier);
* static: cache leakage integrated over the memory time of the run —
  which is why a shorter ACET directly saves energy, the effect the
  paper's Condition 3 protects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.energy.cacti import CacheEnergyModel
from repro.energy.dram import DRAMModel
from repro.errors import ReproError


@dataclass(frozen=True)
class MemoryEventCounts:
    """Event counts of one run, as produced by :mod:`repro.sim`.

    Attributes:
        fetches: Instruction fetches (cache reads), prefetches included.
        demand_misses: Fetches not served by the first level.
        prefetch_transfers: Blocks moved by software prefetches.
        fills: Blocks installed into the cache (miss fills + prefetch
            fills).
        memory_cycles: Total cycles spent in the memory system.
        l2_accesses: Second-level probes (demand misses and prefetch
            transfers); 0 in a single-level memory system.
        l2_hits: Second-level probes that did not go on to DRAM.
        l2_fills: Blocks installed into the second level.
    """

    fetches: int
    demand_misses: int
    prefetch_transfers: int
    fills: int
    memory_cycles: float
    l2_accesses: int = 0
    l2_hits: int = 0
    l2_fills: int = 0

    def __post_init__(self) -> None:
        for name in (
            "fetches",
            "demand_misses",
            "prefetch_transfers",
            "fills",
            "l2_accesses",
            "l2_hits",
            "l2_fills",
        ):
            if getattr(self, name) < 0:
                raise ReproError(f"{name} must be >= 0")
        if self.memory_cycles < 0:
            raise ReproError("memory_cycles must be >= 0")
        if self.demand_misses > self.fetches:
            raise ReproError("demand_misses cannot exceed fetches")
        if self.l2_hits > self.l2_accesses:
            raise ReproError("l2_hits cannot exceed l2_accesses")
        if self.l2_hits > self.demand_misses + self.prefetch_transfers:
            raise ReproError(
                "l2_hits cannot exceed demand_misses + prefetch_transfers"
            )

    @property
    def dram_transfers(self) -> int:
        """Block transfers that actually reached DRAM.

        Every demand miss and prefetch transfer moves a block; the ones
        the second level served never left the SRAM hierarchy.
        """
        return self.demand_misses + self.prefetch_transfers - self.l2_hits


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one run in joules.

    ``total_j = cache_dynamic_j + l2_dynamic_j + dram_dynamic_j +
    cache_static_j + l2_static_j + dram_static_j``.  The ``l2_*`` parts
    are 0 for a single-level memory system.
    """

    cache_dynamic_j: float
    dram_dynamic_j: float
    cache_static_j: float
    dram_static_j: float
    l2_dynamic_j: float = 0.0
    l2_static_j: float = 0.0

    @property
    def static_j(self) -> float:
        """Time-proportional part: cache leakage + DRAM background."""
        return self.cache_static_j + self.l2_static_j + self.dram_static_j

    @property
    def total_j(self) -> float:
        """Total memory-system energy."""
        return self.dynamic_j + self.static_j

    @property
    def dynamic_j(self) -> float:
        """Dynamic (switching) part."""
        return self.cache_dynamic_j + self.l2_dynamic_j + self.dram_dynamic_j

    @property
    def static_share(self) -> float:
        """Fraction of the total that is time-proportional."""
        total = self.total_j
        if total == 0:
            return 0.0
        return self.static_j / total


def account_energy(
    counts: MemoryEventCounts,
    cache_model: CacheEnergyModel,
    dram: DRAMModel,
    l2_model: Optional[CacheEnergyModel] = None,
) -> EnergyBreakdown:
    """Compute the memory system's energy for one run.

    Args:
        counts: Event counts from the simulation.
        cache_model: CACTI-style model of the primary cache.
        dram: DRAM backstop model.
        l2_model: CACTI-style model of the second-level cache, when the
            hierarchy has one.  With it, DRAM is charged only for the
            transfers L2 did not serve (``counts.dram_transfers``), and
            L2 probes/fills and L2 leakage are accounted separately.

    Returns:
        The :class:`EnergyBreakdown`.
    """
    block_size = cache_model.config.block_size
    cache_dynamic = (
        counts.fetches * cache_model.read_energy_j
        + counts.fills * cache_model.fill_energy_j
    )
    seconds = cache_model.tech.seconds(counts.memory_cycles)
    l2_dynamic = 0.0
    l2_static = 0.0
    if l2_model is not None:
        l2_dynamic = (
            counts.l2_accesses * l2_model.read_energy_j
            + counts.l2_fills * l2_model.fill_energy_j
        )
        l2_static = l2_model.leakage_w * seconds
    dram_dynamic = counts.dram_transfers * dram.access_energy_j(block_size)
    return EnergyBreakdown(
        cache_dynamic_j=cache_dynamic,
        dram_dynamic_j=dram_dynamic,
        cache_static_j=cache_model.leakage_w * seconds,
        dram_static_j=dram.background_power_w * seconds,
        l2_dynamic_j=l2_dynamic,
        l2_static_j=l2_static,
    )
