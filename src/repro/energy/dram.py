"""Level-two memory model: the paper's 128 MB DRAM.

Every cache miss and every software prefetch transfers one block from
this memory.  Energy is an activation cost plus a per-byte transfer
cost; latency comes from the technology node (and feeds the miss
penalty computed in :mod:`repro.energy.cacti`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.technology import TechnologyNode
from repro.errors import ReproError

#: Size of the modelled level-two memory (informational; the model is
#: flat, matching the paper's single-DRAM setup).
DRAM_SIZE_BYTES = 128 * 1024 * 1024


@dataclass(frozen=True)
class DRAMModel:
    """Energy/latency of the level-two memory for one technology node."""

    tech: TechnologyNode

    def access_energy_j(self, block_size: int) -> float:
        """Energy of transferring one block of ``block_size`` bytes."""
        if block_size <= 0:
            raise ReproError(f"block size must be positive, got {block_size}")
        return (
            self.tech.dram_base_energy_j
            + self.tech.dram_energy_per_byte_j * block_size
        )

    @property
    def background_power_w(self) -> float:
        """Standby + refresh power of the array (time-proportional)."""
        return self.tech.dram_background_power_w

    @property
    def latency_s(self) -> float:
        """Random access latency in seconds."""
        return self.tech.dram_latency_s

    def latency_cycles(self) -> int:
        """Random access latency in core cycles."""
        return self.tech.cycles(self.tech.dram_latency_s)
