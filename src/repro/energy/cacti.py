"""CACTI-style cache energy/latency model.

The paper obtains per-access energies and access times for the primary
cache and the level-two memory from CACTI 6.5.  This module provides an
analytical stand-in with the scaling behaviour CACTI exhibits for small
embedded SRAM arrays:

* dynamic read energy grows roughly with the square root of capacity
  (bitline/wordline lengths), linearly-ish with associativity (parallel
  tag+data ways), and weakly with block size;
* leakage power grows linearly with capacity;
* the caches evaluated here (256 B - 8 KiB) are all single-cycle.

Absolute values sit in the range CACTI reports for low-power 45/32 nm
SRAM; the experiments only rely on the ratios (see
:mod:`repro.energy.technology`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.timing import TimingModel
from repro.cache.config import CacheConfig, HierarchyConfig
from repro.energy.technology import (
    L2_DYNAMIC_FACTOR,
    L2_LEAKAGE_FACTOR,
    TechnologyNode,
)

#: Dynamic read energy of a 256 B direct-mapped 16 B-block cache at 45 nm.
_BASE_READ_ENERGY_J = 4.0e-12
#: Leakage of 1 KiB of SRAM at 45 nm.  High-performance embedded arrays
#: leak on the order of half a milliwatt per KiB; this is what makes the
#: static share of an 8 KiB cache significant and shrinking caches (Fig. 5)
#: worthwhile.
_BASE_LEAKAGE_W_PER_KIB = 0.5e-3
#: Bus width between cache and DRAM (bytes per cycle during refill).
_REFILL_BYTES_PER_CYCLE = 8


@dataclass(frozen=True)
class CacheEnergyModel:
    """Per-configuration, per-technology energy/latency figures.

    Attributes:
        config: Cache configuration modelled.
        tech: Technology node.
        read_energy_j: Dynamic energy of one cache access (hit or the
            probe part of a miss).
        fill_energy_j: Dynamic energy of installing one block.
        leakage_w: Static power of the cache array.
        hit_cycles: Access latency in cycles.
        miss_penalty_cycles: DRAM latency + refill transfer, in cycles.
    """

    config: CacheConfig
    tech: TechnologyNode
    read_energy_j: float
    fill_energy_j: float
    leakage_w: float
    hit_cycles: int
    miss_penalty_cycles: int

    def timing_model(self, prefetch_issue_cycles: int = 1) -> TimingModel:
        """The :class:`TimingModel` the WCET analysis should use."""
        return TimingModel(
            hit_cycles=self.hit_cycles,
            miss_penalty_cycles=self.miss_penalty_cycles,
            prefetch_issue_cycles=prefetch_issue_cycles,
        )


def cacti_model(config: CacheConfig, tech: TechnologyNode) -> CacheEnergyModel:
    """Build the energy/latency model for one (configuration, node) pair."""
    capacity_factor = math.sqrt(config.capacity / 256.0)
    assoc_factor = 1.0 + 0.2 * (config.associativity - 1)
    block_factor = (config.block_size / 16.0) ** 0.25
    read_energy = (
        _BASE_READ_ENERGY_J
        * capacity_factor
        * assoc_factor
        * block_factor
        * tech.dynamic_scale
    )
    # A fill writes a whole block: charge the read path plus a per-byte
    # write component.
    fill_energy = read_energy * (1.2 + 0.05 * (config.block_size / 16.0))
    leakage = (
        _BASE_LEAKAGE_W_PER_KIB * (config.capacity / 1024.0) * tech.leakage_scale
    )
    refill_cycles = max(1, config.block_size // _REFILL_BYTES_PER_CYCLE)
    miss_penalty = tech.cycles(tech.dram_latency_s) + refill_cycles
    return CacheEnergyModel(
        config=config,
        tech=tech,
        read_energy_j=read_energy,
        fill_energy_j=fill_energy,
        leakage_w=leakage,
        hit_cycles=1,
        miss_penalty_cycles=miss_penalty,
    )


def cacti_l2_model(config: CacheConfig, tech: TechnologyNode) -> CacheEnergyModel:
    """Energy model of a second-level array with the same geometry rules.

    L2 arrays use density-optimised cells: much lower leakage per bit,
    slightly costlier accesses (see the ``L2_*`` factors in
    :mod:`repro.energy.technology`).  ``miss_penalty_cycles`` here is the
    L2-to-DRAM leg only; the hierarchy timing adds the L2 probe on top.
    """
    base = cacti_model(config, tech)
    return CacheEnergyModel(
        config=config,
        tech=tech,
        read_energy_j=base.read_energy_j * L2_DYNAMIC_FACTOR,
        fill_energy_j=base.fill_energy_j * L2_DYNAMIC_FACTOR,
        leakage_w=base.leakage_w * L2_LEAKAGE_FACTOR,
        hit_cycles=base.hit_cycles,
        miss_penalty_cycles=base.miss_penalty_cycles,
    )


@dataclass(frozen=True)
class HierarchyEnergyModel:
    """Energy/latency models for every level of one hierarchy.

    Attributes:
        l1: Model of the first-level cache.
        l2: Model of the second-level cache, ``None`` when single-level.
        timing: The :class:`TimingModel` the analyses and the simulator
            should use — single-level it is exactly ``l1``'s, multi-level
            the full miss penalty stacks the L2 probe latency on top of
            the L2-to-DRAM leg and ``l2_hit_penalty_cycles`` is the L2
            probe latency.
    """

    l1: CacheEnergyModel
    l2: Optional[CacheEnergyModel]
    timing: TimingModel


def hierarchy_model(
    hierarchy: HierarchyConfig,
    tech: TechnologyNode,
    prefetch_issue_cycles: int = 1,
) -> HierarchyEnergyModel:
    """Build the per-level energy models and timing for one hierarchy."""
    l1 = cacti_model(hierarchy.l1, tech)
    level2 = hierarchy.l2_level
    if level2 is None:
        return HierarchyEnergyModel(
            l1=l1,
            l2=None,
            timing=l1.timing_model(prefetch_issue_cycles),
        )
    l2 = cacti_l2_model(level2.config, tech)
    timing = TimingModel(
        hit_cycles=l1.hit_cycles,
        miss_penalty_cycles=level2.latency_cycles + l2.miss_penalty_cycles,
        prefetch_issue_cycles=prefetch_issue_cycles,
        l2_hit_penalty_cycles=level2.latency_cycles,
    )
    return HierarchyEnergyModel(l1=l1, l2=l2, timing=timing)
