"""Energy substrate: technology nodes, CACTI-style cache model, DRAM,
and per-run accounting."""

from repro.energy.cacti import (
    CacheEnergyModel,
    HierarchyEnergyModel,
    cacti_l2_model,
    cacti_model,
    hierarchy_model,
)
from repro.energy.dram import DRAM_SIZE_BYTES, DRAMModel
from repro.energy.metrics import (
    EnergyBreakdown,
    MemoryEventCounts,
    account_energy,
)
from repro.energy.technology import (
    TECH_32NM,
    TECH_45NM,
    TECHNOLOGIES,
    TechnologyNode,
    technology,
)

__all__ = [
    "CacheEnergyModel",
    "DRAM_SIZE_BYTES",
    "DRAMModel",
    "EnergyBreakdown",
    "HierarchyEnergyModel",
    "MemoryEventCounts",
    "TECH_32NM",
    "TECH_45NM",
    "TECHNOLOGIES",
    "TechnologyNode",
    "account_energy",
    "cacti_l2_model",
    "cacti_model",
    "hierarchy_model",
    "technology",
]
