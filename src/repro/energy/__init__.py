"""Energy substrate: technology nodes, CACTI-style cache model, DRAM,
and per-run accounting."""

from repro.energy.cacti import CacheEnergyModel, cacti_model
from repro.energy.dram import DRAM_SIZE_BYTES, DRAMModel
from repro.energy.metrics import (
    EnergyBreakdown,
    MemoryEventCounts,
    account_energy,
)
from repro.energy.technology import (
    TECH_32NM,
    TECH_45NM,
    TECHNOLOGIES,
    TechnologyNode,
    technology,
)

__all__ = [
    "CacheEnergyModel",
    "DRAM_SIZE_BYTES",
    "DRAMModel",
    "EnergyBreakdown",
    "MemoryEventCounts",
    "TECH_32NM",
    "TECH_45NM",
    "TECHNOLOGIES",
    "TechnologyNode",
    "account_energy",
    "cacti_model",
    "technology",
]
