"""Hardware prefetcher baselines (Section 2 of the paper).

The paper's related work motivates software prefetching by contrasting
it with the classical hardware schemes; this module implements those
schemes so the comparison can actually be run (see the
``prefetcher_shootout`` example and the ablation benches):

* **sequential prefetching** [18] — next-line always / on-miss / tagged,
  generalised to next-N-line;
* **target prefetching** [19] — a reference prediction table (RPT) maps
  a branch-source block to its observed target block and prefetches the
  target on the next visit (implicitly assuming the branch taken);
* **wrong-path prefetching** [13] — stores both the target and the
  fall-through, prefetching both.

Each prefetcher observes the demand stream through
``observe(address, block, hit)`` and returns the blocks to transfer;
``probes`` counts table lookups for energy accounting (hardware
prefetching spends energy even when it prefetches nothing — one of the
paper's arguments for the software approach).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SimulationError

#: Sequential policies.
POLICY_ALWAYS = "always"
POLICY_ON_MISS = "miss"
POLICY_TAGGED = "tagged"


class NextLinePrefetcher:
    """Sequential (next-N-line) prefetching.

    Args:
        policy: ``"always"`` (every access), ``"miss"`` (only on demand
            misses) or ``"tagged"`` (first touch of a block).
        degree: Number of consecutive next lines to prefetch (N).
    """

    def __init__(self, policy: str = POLICY_ALWAYS, degree: int = 1):
        if policy not in (POLICY_ALWAYS, POLICY_ON_MISS, POLICY_TAGGED):
            raise SimulationError(f"unknown sequential policy {policy!r}")
        if degree < 1:
            raise SimulationError(f"degree must be >= 1, got {degree}")
        self.policy = policy
        self.degree = degree
        self.probes = 0
        self._touched: Set[int] = set()

    def observe(self, address: int, block: int, hit: bool) -> Iterable[int]:
        """React to one demand fetch; returns blocks to prefetch."""
        self.probes += 1
        if self.policy == POLICY_ON_MISS and hit:
            return ()
        if self.policy == POLICY_TAGGED:
            if block in self._touched:
                return ()
            self._touched.add(block)
        return range(block + 1, block + 1 + self.degree)

    def reset(self) -> None:
        """Forget all tagging state and counters."""
        self.probes = 0
        self._touched.clear()


class _RPT:
    """A small LRU reference prediction table."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise SimulationError(f"RPT capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[int, Tuple[int, ...]]" = OrderedDict()

    def lookup(self, key: int) -> Optional[Tuple[int, ...]]:
        """LRU-touching table lookup."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def store(self, key: int, value: Tuple[int, ...]) -> None:
        """Insert/refresh an entry, evicting the least recently used."""
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = value

    def __len__(self) -> int:
        return len(self._entries)


class TargetPrefetcher:
    """Target prefetching with a reference prediction table [19].

    Observes control-flow discontinuities in the fetch stream: when the
    stream jumps from block ``p`` to a non-sequential block ``t``, the
    RPT learns ``p -> t``; the next time ``p`` is fetched, ``t`` is
    prefetched (the branch is implicitly assumed taken).
    """

    def __init__(self, rpt_entries: int = 64):
        self.rpt = _RPT(rpt_entries)
        self.probes = 0
        self._prev_block: Optional[int] = None

    def observe(self, address: int, block: int, hit: bool) -> Iterable[int]:
        """React to one demand fetch; returns blocks to prefetch."""
        targets: List[int] = []
        self.probes += 1
        prediction = self.rpt.lookup(block)
        if prediction is not None:
            targets.extend(prediction)
        if self._prev_block is not None and block not in (
            self._prev_block,
            self._prev_block + 1,
        ):
            self.rpt.store(self._prev_block, (block,))
        self._prev_block = block
        return targets

    def reset(self) -> None:
        """Forget history and counters."""
        self.rpt = _RPT(self.rpt.capacity)
        self.probes = 0
        self._prev_block = None


class WrongPathPrefetcher(TargetPrefetcher):
    """Wrong-path prefetching [13]: prefetch target *and* fall-through.

    Profitable whichever way the branch goes, at the cost of more
    ineffective transfers (exactly the trade-off the paper describes).
    """

    def observe(self, address: int, block: int, hit: bool) -> Iterable[int]:
        """React to one demand fetch; returns blocks to prefetch."""
        targets: List[int] = []
        self.probes += 1
        prediction = self.rpt.lookup(block)
        if prediction is not None:
            targets.extend(prediction)
        if self._prev_block is not None and block not in (
            self._prev_block,
            self._prev_block + 1,
        ):
            # Store both the taken target and the fall-through line.
            self.rpt.store(self._prev_block, (block, self._prev_block + 1))
        self._prev_block = block
        return targets
