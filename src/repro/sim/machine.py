"""Memory-system timing machine.

Prices a dynamic fetch stream against a concrete cache with a
non-blocking prefetch port:

* a demand fetch that hits costs ``hit_cycles``;
* a demand fetch whose block is *in flight* (a prefetch was issued but
  has not completed) stalls only for the remaining latency — a partially
  effective prefetch;
* a demand miss costs the full miss latency and installs the block;
* a software prefetch instruction costs its own fetch plus an issue
  slot, then transfers its target block in the background, installing it
  ``Λ`` cycles later;
* an optional hardware prefetcher (:mod:`repro.sim.prefetchers`)
  observes the demand stream and issues its own background transfers;
* with an optional second-level cache, an L1 miss that hits L2 pays only
  the (smaller) L2 penalty, and a prefetch whose block is L2-resident
  completes after the L2 latency instead of the full DRAM latency —
  blocks fetched from DRAM are installed into both levels.

Only memory time is accounted (``τ_a``), matching the paper's scope: the
processor micro-architecture is not modelled, and the measured
instruction overhead of the optimization is reported separately (Fig. 8).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.timing import TimingModel
from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.errors import SimulationError
from repro.program.cfg import BasicBlock, ControlFlowGraph
from repro.program.layout import AddressLayout
from repro.sim.executor import block_trace
from repro.sim.trace import FetchEvent, SimulationResult


class MemorySystem:
    """Cycle-accounting front end over a :class:`ConcreteCache`."""

    def __init__(
        self,
        config: CacheConfig,
        timing: TimingModel,
        prefetcher: Optional["object"] = None,
        record_trace: bool = False,
        locked_blocks: Optional[frozenset] = None,
        l2_config: Optional[CacheConfig] = None,
    ):
        self.config = config
        self.timing = timing
        self.cache = ConcreteCache(config)
        self.l2: Optional[ConcreteCache] = None
        if l2_config is not None:
            if timing.l2_hit_penalty_cycles is None:
                raise SimulationError(
                    "l2_config given but the timing model has no second level"
                )
            if l2_config.block_size != config.block_size:
                raise SimulationError(
                    "L1 and L2 must share one block size"
                )
            self.l2 = ConcreteCache(l2_config)
        self.prefetcher = prefetcher
        self.record_trace = record_trace
        #: Blocks pinned in locked ways (hybrid scheme): always hit,
        #: never touch the LRU state of ``config``'s (residual) ways.
        self.locked_blocks = locked_blocks or frozenset()
        self.now = 0.0
        #: block -> (completion time, transfer latency, served by L2)
        #: of an in-flight transfer.
        self._in_flight: Dict[int, Tuple[float, float, bool]] = {}
        #: blocks installed by a prefetch and not yet demanded.
        self._prefetched_unused: set = set()
        self.result = SimulationResult(program="")

    # ------------------------------------------------------------------
    # core events
    # ------------------------------------------------------------------
    def fetch(self, address: int, is_prefetch_instr: bool = False) -> float:
        """Demand-fetch the instruction at ``address``; returns cycles."""
        self._complete_arrivals()
        block = self.config.block_of_address(address)
        cycles: float
        if block in self.locked_blocks:
            cycles = float(self.timing.hit_cycles)
            if is_prefetch_instr:
                cycles += float(self.timing.prefetch_issue_cycles)
            self.now += cycles
            self.result.fetches += 1
            self.result.hits += 1
            if self.record_trace:
                self.result.trace.append(
                    FetchEvent(address, block, True, cycles, is_prefetch_instr)
                )
            return cycles
        if self.cache.contains(block):
            self.cache.access(block)  # LRU touch, counts a hit
            cycles = float(self.timing.hit_cycles)
            hit = True
            if block in self._prefetched_unused:
                self._prefetched_unused.discard(block)
                self.result.useful_prefetches += 1
        elif block in self._in_flight:
            completion, latency, from_l2 = self._in_flight.pop(block)
            remaining = max(0.0, completion - self.now)
            if self.l2 is not None and not from_l2:
                self.l2.install(block)
                self.result.l2_fills += 1
            self._install(block)
            self.cache.access(block)
            cycles = float(self.timing.hit_cycles) + remaining
            hit = remaining == 0.0
            hidden = latency - remaining
            self.result.stall_cycles_hidden += max(0.0, hidden)
            if block in self._prefetched_unused:
                self._prefetched_unused.discard(block)
                self.result.useful_prefetches += 1
        else:
            if self.l2 is not None:
                self.result.l2_accesses += 1
                if self.l2.contains(block):
                    self.l2.access(block)  # LRU touch in L2
                    self.result.l2_hits += 1
                    cycles = float(self.timing.l2_hit_cycles)
                else:
                    self.l2.install(block)
                    self.result.l2_fills += 1
                    cycles = float(self.timing.miss_cycles)
            else:
                cycles = float(self.timing.miss_cycles)
            self.cache.access(block)  # installs on miss
            self.result.fills += 1
            hit = False
        if is_prefetch_instr:
            cycles += float(self.timing.prefetch_issue_cycles)
        self.now += cycles
        self.result.fetches += 1
        if hit:
            self.result.hits += 1
        else:
            self.result.demand_misses += 1
        if self.record_trace:
            self.result.trace.append(
                FetchEvent(address, block, hit, cycles, is_prefetch_instr)
            )
        if self.prefetcher is not None:
            for target in self.prefetcher.observe(address, block, hit):
                self.issue_prefetch(target, software=False)
        return cycles

    def issue_prefetch(self, block: int, software: bool = True) -> bool:
        """Start a background transfer of ``block``.

        Dropped when the block is already cached or already in flight.

        Returns:
            ``True`` when a transfer was actually issued.
        """
        self._complete_arrivals()
        if block in self.locked_blocks:
            return False  # pinned content never needs a transfer
        if self.cache.contains(block) or block in self._in_flight:
            return False
        latency = float(self.timing.prefetch_latency)
        from_l2 = False
        if self.l2 is not None:
            self.result.l2_accesses += 1
            if self.l2.contains(block):
                self.l2.access(block)  # LRU touch in L2
                self.result.l2_hits += 1
                self.result.prefetch_l2_hits += 1
                latency = float(self.timing.l2_hit_penalty_cycles)
                from_l2 = True
        self._in_flight[block] = (self.now + latency, latency, from_l2)
        self.result.prefetch_transfers += 1
        return True

    def advance(self, cycles: float) -> None:
        """Advance this machine's clock by externally-spent time.

        Used by split-cache simulation: while the *other* cache serves
        an access, this machine's in-flight transfers keep progressing.
        """
        if cycles < 0:
            raise SimulationError("cannot advance time backwards")
        self.now += cycles

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _complete_arrivals(self) -> None:
        if not self._in_flight:
            return
        arrived = [
            b for b, (t, _, _) in self._in_flight.items() if t <= self.now
        ]
        arrived.sort(key=lambda b: self._in_flight[b][0])
        for block in arrived:
            _, _, from_l2 = self._in_flight.pop(block)
            if self.l2 is not None and not from_l2:
                self.l2.install(block)
                self.result.l2_fills += 1
            self._install(block)
            self._prefetched_unused.add(block)

    def _install(self, block: int) -> None:
        evicted = self.cache.install(block)
        self.result.fills += 1
        if evicted is not None:
            self._prefetched_unused.discard(evicted)


def simulate(
    cfg: ControlFlowGraph,
    config: CacheConfig,
    timing: TimingModel,
    seed: int = 0,
    prefetcher: Optional["object"] = None,
    repeat: int = 1,
    record_trace: bool = False,
    base_address: int = 0,
    locked_blocks: Optional[frozenset] = None,
    l2_config: Optional[CacheConfig] = None,
) -> SimulationResult:
    """Run a program once and return its memory-system summary.

    Args:
        cfg: Program to execute (prefetch instructions, if any, drive
            the software-prefetch path).
        config: Cache configuration.
        timing: Timing model (typically from
            :meth:`repro.energy.CacheEnergyModel.timing_model`).
        seed: Executor seed (branch/switch draws).
        prefetcher: Optional hardware prefetcher.
        repeat: Number of back-to-back runs (cache stays warm).
        record_trace: Keep per-fetch events (memory heavy).
        base_address: Code base address.
        l2_config: Optional second-level cache; requires a timing model
            with ``l2_hit_penalty_cycles`` set.

    Returns:
        A validated :class:`SimulationResult`.
    """
    layout = AddressLayout(cfg, base_address)
    machine = MemorySystem(
        config,
        timing,
        prefetcher,
        record_trace,
        locked_blocks=locked_blocks,
        l2_config=l2_config,
    )
    machine.result.program = cfg.name
    memory_map_cache: Dict[int, int] = {}
    for block in block_trace(cfg, seed=seed, repeat=repeat):
        for instr in block.instructions:
            address = layout.address(instr.uid)
            if instr.is_prefetch:
                machine.fetch(address, is_prefetch_instr=True)
                machine.result.prefetch_instructions += 1
                target_uid = instr.prefetch_target
                if target_uid is None:
                    # data prefetch: its transfer runs on the data-cache
                    # port (repro.data.machine); nothing to do here
                    continue
                target_block = memory_map_cache.get(target_uid)
                if target_block is None:
                    target_block = config.block_of_address(
                        layout.address(target_uid)
                    )
                    memory_map_cache[target_uid] = target_block
                machine.issue_prefetch(target_block)
            else:
                machine.fetch(address)
    result = machine.result
    result.memory_cycles = machine.now
    if prefetcher is not None:
        result.hw_table_probes = getattr(prefetcher, "probes", 0)
    result.validate()
    return result
