"""Trace containers and simulation results.

The paper estimates ACET and energy "through a traditional trace-based
approach" with traces from an instruction-set simulator (GEM5).  Our
executor produces the same artefact — the dynamic fetch-address stream —
directly from the program model, and :class:`SimulationResult` is the
per-run summary every experiment consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.energy.metrics import MemoryEventCounts
from repro.errors import SimulationError


@dataclass
class FetchEvent:
    """One recorded instruction fetch (only kept when tracing is on).

    Attributes:
        address: Byte address fetched.
        block: Memory block id.
        hit: Whether the cache served it without a DRAM transfer.
        cycles: Memory cycles this fetch cost.
        is_prefetch: Whether the fetched instruction was a prefetch.
    """

    address: int
    block: int
    hit: bool
    cycles: float
    is_prefetch: bool = False


@dataclass
class SimulationResult:
    """Summary of one concrete run of a program.

    Attributes:
        program: Program name.
        fetches: Total instruction fetches (= executed instructions).
        hits: Fetches served by the cache.
        demand_misses: Fetches that waited on DRAM (fully or partially).
        prefetch_instructions: Executed software prefetch instructions.
        prefetch_transfers: Block transfers issued by prefetches.
        useful_prefetches: Prefetched blocks that were demanded before
            eviction.
        fills: Blocks installed into the cache.
        memory_cycles: Total memory-system time of the run (the paper's
            ``τ_a``, the memory contribution to the ACET).
        stall_cycles_hidden: Miss cycles avoided thanks to prefetching
            (informational).
        hw_table_probes: Lookups performed by a hardware prefetcher's
            tables (0 for pure software prefetching).
        l2_accesses: Second-level probes (L1 misses and prefetch
            transfers); 0 in a single-level memory system.
        l2_hits: Second-level probes served without a DRAM transfer.
        l2_fills: Blocks installed into the second level.
        prefetch_l2_hits: Prefetch transfers served by the second level
            (subset of both ``prefetch_transfers`` and ``l2_hits``).
        trace: Recorded fetch events (empty unless tracing enabled).
    """

    program: str
    fetches: int = 0
    hits: int = 0
    demand_misses: int = 0
    prefetch_instructions: int = 0
    prefetch_transfers: int = 0
    useful_prefetches: int = 0
    fills: int = 0
    memory_cycles: float = 0.0
    stall_cycles_hidden: float = 0.0
    hw_table_probes: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    l2_fills: int = 0
    prefetch_l2_hits: int = 0
    trace: List[FetchEvent] = field(default_factory=list)

    @property
    def miss_rate(self) -> float:
        """Demand miss rate over all fetches."""
        if self.fetches == 0:
            return 0.0
        return self.demand_misses / self.fetches

    @property
    def acet_memory_cycles(self) -> float:
        """``τ_a``: memory contribution to the average-case time."""
        return self.memory_cycles

    def event_counts(self) -> MemoryEventCounts:
        """Convert to the energy-accounting input."""
        return MemoryEventCounts(
            fetches=self.fetches,
            demand_misses=self.demand_misses,
            prefetch_transfers=self.prefetch_transfers,
            fills=self.fills,
            memory_cycles=self.memory_cycles,
            l2_accesses=self.l2_accesses,
            l2_hits=self.l2_hits,
            l2_fills=self.l2_fills,
        )

    def validate(self) -> None:
        """Internal consistency checks (used by tests and harnesses)."""
        if self.hits + self.demand_misses != self.fetches:
            raise SimulationError(
                f"hits ({self.hits}) + misses ({self.demand_misses}) != "
                f"fetches ({self.fetches})"
            )
        if self.useful_prefetches > self.prefetch_transfers:
            raise SimulationError("useful_prefetches exceeds prefetch_transfers")
        if self.prefetch_transfers > self.prefetch_instructions and (
            self.hw_table_probes == 0
        ):
            raise SimulationError(
                "software prefetch transfers exceed executed prefetches"
            )
        if self.l2_hits > self.l2_accesses:
            raise SimulationError("l2_hits exceeds l2_accesses")
        if self.prefetch_l2_hits > self.prefetch_transfers:
            raise SimulationError("prefetch_l2_hits exceeds prefetch_transfers")
        if self.prefetch_l2_hits > self.l2_hits:
            raise SimulationError("prefetch_l2_hits exceeds l2_hits")
