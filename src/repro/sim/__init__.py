"""Simulation substrate: executor, memory machine, prefetchers, locking."""

from repro.sim.executor import Executor, MAX_BLOCK_VISITS, block_trace
from repro.sim.locking import (
    locked_wcet,
    optimize_with_locking,
    residual_config,
    select_locked_blocks,
    simulate_locked,
)
from repro.sim.machine import MemorySystem, simulate
from repro.sim.prefetchers import (
    NextLinePrefetcher,
    POLICY_ALWAYS,
    POLICY_ON_MISS,
    POLICY_TAGGED,
    TargetPrefetcher,
    WrongPathPrefetcher,
)
from repro.sim.trace import FetchEvent, SimulationResult

__all__ = [
    "Executor",
    "FetchEvent",
    "MAX_BLOCK_VISITS",
    "MemorySystem",
    "NextLinePrefetcher",
    "POLICY_ALWAYS",
    "POLICY_ON_MISS",
    "POLICY_TAGGED",
    "SimulationResult",
    "TargetPrefetcher",
    "WrongPathPrefetcher",
    "block_trace",
    "locked_wcet",
    "optimize_with_locking",
    "residual_config",
    "select_locked_blocks",
    "simulate",
    "simulate_locked",
]
