"""Concrete execution of a structured program.

Interprets the structure tree deterministically:

* loops run their :attr:`~repro.program.cfg.LoopInfo.sim_iterations`,
* conditionals follow their :class:`~repro.program.cfg.BranchProfile`
  (a cyclic pattern when given, otherwise a seeded RNG draw),
* switches select cases by their weights,
* calls descend into the callee's structure tree.

The output is the sequence of executed basic blocks — the exact dynamic
instruction stream a GEM5 trace would contain for this program model —
which the memory machine (:mod:`repro.sim.machine`) prices.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from repro.errors import SimulationError
from repro.program.cfg import BasicBlock, ControlFlowGraph
from repro.program.structure import (
    BlockNode,
    CallNode,
    IfElseNode,
    LoopNode,
    SeqNode,
    StructureNode,
    SwitchNode,
)

#: Safety valve: a single run longer than this indicates a runaway model.
MAX_BLOCK_VISITS = 5_000_000


class Executor:
    """Walks a program's structure tree, yielding executed blocks."""

    def __init__(self, cfg: ControlFlowGraph, seed: int = 0):
        if cfg.structure is None:
            raise SimulationError("CFG has no structure tree; use ProgramBuilder")
        self.cfg = cfg
        self.seed = seed
        self._rng = random.Random(seed)
        self._pattern_pos: Dict[str, int] = {}
        self._visits = 0
        #: Current iteration index (0-based) of each active loop;
        #: consumers resolving strided data addresses read this between
        #: yields (:mod:`repro.data.machine`).
        self.loop_iteration: Dict[str, int] = {}

    def run(self) -> Iterator[BasicBlock]:
        """Execute the program once, yielding blocks in dynamic order."""
        self._rng = random.Random(self.seed)
        self._pattern_pos = {}
        self._visits = 0
        self.loop_iteration = {}
        yield from self._walk(self.cfg.structure)

    # ------------------------------------------------------------------
    # tree interpretation
    # ------------------------------------------------------------------
    def _emit(self, block_name: str) -> BasicBlock:
        self._visits += 1
        if self._visits > MAX_BLOCK_VISITS:
            raise SimulationError(
                f"execution exceeded {MAX_BLOCK_VISITS} block visits; "
                "check loop sim_iterations"
            )
        return self.cfg.block(block_name)

    def _walk(self, node: StructureNode) -> Iterator[BasicBlock]:
        if isinstance(node, BlockNode):
            yield self._emit(node.block_name)
            return
        if isinstance(node, SeqNode):
            for item in node.items:
                yield from self._walk(item)
            return
        if isinstance(node, IfElseNode):
            yield self._emit(node.cond_block)
            if self._branch_taken(node.cond_block):
                yield from self._walk(node.then_node)
            elif node.else_node is not None:
                yield from self._walk(node.else_node)
            return
        if isinstance(node, LoopNode):
            info = self.cfg.loops[node.loop_name]
            iterations = info.sim_iterations or info.bound
            for index in range(iterations):
                self.loop_iteration[node.loop_name] = index
                yield from self._walk(node.body)
            return
        if isinstance(node, SwitchNode):
            yield self._emit(node.selector_block)
            yield from self._walk(self._select_case(node))
            return
        if isinstance(node, CallNode):
            yield self._emit(node.call_block)
            info = self.cfg.functions[node.function_name]
            yield from self._walk(info.structure)
            return
        raise SimulationError(f"unknown structure node {type(node).__name__}")

    def _branch_taken(self, cond_block: str) -> bool:
        profile = self.cfg.branch_profiles.get(cond_block)
        if profile is None:
            raise SimulationError(
                f"conditional block {cond_block!r} has no branch profile"
            )
        if profile.pattern is not None:
            pos = self._pattern_pos.get(cond_block, 0)
            self._pattern_pos[cond_block] = pos + 1
            return profile.pattern[pos % len(profile.pattern)]
        return self._rng.random() < profile.taken_prob

    def _select_case(self, node: SwitchNode) -> StructureNode:
        if node.weights is None:
            return self._rng.choice(node.cases)
        return self._rng.choices(node.cases, weights=node.weights, k=1)[0]


def block_trace(
    cfg: ControlFlowGraph, seed: int = 0, repeat: int = 1
) -> Iterator[BasicBlock]:
    """Convenience generator over ``repeat`` back-to-back runs.

    Repeating a run models a periodic real-time task re-executing with a
    warm cache; the paper's setup is a single cold-start run per program
    (``repeat=1``), which is the default everywhere.
    """
    if repeat < 1:
        raise SimulationError(f"repeat must be >= 1, got {repeat}")
    executor = Executor(cfg, seed)
    for run_index in range(repeat):
        executor.seed = seed + run_index
        yield from executor.run()
