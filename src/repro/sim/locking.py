"""Static instruction-cache locking baseline.

The paper positions its technique against the locking school (refs [4,
14, 16, 2]): lock the most valuable blocks into the cache, trade
performance for perfect predictability.  Section 6 names implementing a
locking baseline as planned work — this module provides it so the
energy/WCET comparison can be run (``examples/prefetcher_shootout.py``
and the ablation benches).

Model: *full static locking*.  A selection of memory blocks (at most
``associativity`` per set) is preloaded and locked; every other fetch
goes straight to DRAM without allocating.  WCET analysis under locking
is trivial — a reference hits iff its block is locked — which is the
predictability argument for locking, and the energy cost is the longer
execution, which is the paper's argument against it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.structural import PathSolution, solve_wcet_path
from repro.analysis.timing import TimingModel
from repro.cache.config import CacheConfig
from repro.errors import SimulationError
from repro.program.acfg import ACFG, build_acfg
from repro.program.cfg import ControlFlowGraph
from repro.program.layout import AddressLayout
from repro.sim.executor import block_trace
from repro.sim.trace import SimulationResult


def select_locked_blocks(
    acfg: ACFG,
    config: CacheConfig,
    weights: Optional[Dict[int, float]] = None,
) -> Set[int]:
    """Choose the blocks to lock: per set, the heaviest ``assoc`` blocks.

    Args:
        acfg: Program ACFG (provides the block inventory and, by
            default, the weights).
        config: Cache configuration (capacity constraint).
        weights: Optional block -> value map.  Defaults to the number of
            worst-case executions of the references in each block
            (``Σ multiplier`` over the block's vertices) — the standard
            frequency-driven selection of the locking literature.

    Returns:
        The set of locked memory-block ids.
    """
    if weights is None:
        weights = {}
        for vertex in acfg.ref_vertices():
            block = acfg.block_of(vertex.rid)
            weights[block] = weights.get(block, 0.0) + acfg.multiplier[vertex.rid]
    per_set: Dict[int, List[Tuple[float, int]]] = {}
    for block, weight in weights.items():
        per_set.setdefault(config.set_index(block), []).append((weight, block))
    locked: Set[int] = set()
    for candidates in per_set.values():
        candidates.sort(key=lambda pair: (-pair[0], pair[1]))
        for _, block in candidates[: config.associativity]:
            locked.add(block)
    return locked


def locked_wcet(
    acfg: ACFG, timing: TimingModel, locked_blocks: Set[int]
) -> PathSolution:
    """WCET path under full locking: hit iff the block is locked."""
    times: List[float] = [0.0] * len(acfg.vertices)
    for vertex in acfg.ref_vertices():
        block = acfg.block_of(vertex.rid)
        if block in locked_blocks:
            times[vertex.rid] = float(timing.hit_cycles)
        else:
            times[vertex.rid] = float(timing.miss_cycles)
    return solve_wcet_path(acfg, times)


def residual_config(config: CacheConfig, locked_ways: int) -> CacheConfig:
    """The configuration the *unlocked* ways present.

    Locking ``locked_ways`` ways per set leaves an
    ``(associativity - locked_ways)``-way cache with the same sets.
    """
    if not 0 < locked_ways < config.associativity:
        raise SimulationError(
            f"locked_ways must be in 1..{config.associativity - 1}, "
            f"got {locked_ways}"
        )
    remaining = config.associativity - locked_ways
    return CacheConfig(
        associativity=remaining,
        block_size=config.block_size,
        capacity=config.num_sets * remaining * config.block_size,
    )


def optimize_with_locking(
    cfg,
    config: CacheConfig,
    timing: TimingModel,
    locked_ways: int = 1,
    options=None,
):
    """The hybrid scheme of the paper's refs [16]/[2]: lock + prefetch.

    The hottest blocks (by worst-case execution count) are pinned into
    ``locked_ways`` ways per set; the paper's prefetch optimization then
    runs against the residual (unlocked) ways.  Locked references always
    hit, never disturb the unlocked LRU state, and are never prefetch
    targets.

    Args:
        cfg: The program (not mutated).
        config: The *full* cache configuration.
        timing: Timing model.
        locked_ways: Ways to lock per set (1 .. associativity-1).
        options: Base optimizer options; ``locked_blocks`` is filled in.

    Returns:
        ``(locked_blocks, optimized_cfg, report, residual)`` where
        ``report`` is the optimizer's report under the residual
        configuration with the locked blocks always hitting.

    Note:
        Lockdown pins *address-space blocks* (as the hardware's lockdown
        registers do): if the optimizer's insertions shift code across
        the locked block boundaries, the locked addresses still hit —
        the selection may just become less profitable, never unsound.
    """
    from repro.core.optimizer import OptimizerOptions, optimize
    import dataclasses

    residual = residual_config(config, locked_ways)
    acfg = build_acfg(cfg, config.block_size)
    # Per-set cap = locked ways, not the full associativity.
    weights: Dict[int, float] = {}
    for vertex in acfg.ref_vertices():
        block = acfg.block_of(vertex.rid)
        weights[block] = weights.get(block, 0.0) + acfg.multiplier[vertex.rid]
    per_set: Dict[int, List[Tuple[float, int]]] = {}
    for block, weight in weights.items():
        per_set.setdefault(config.set_index(block), []).append((weight, block))
    locked: Set[int] = set()
    for candidates in per_set.values():
        candidates.sort(key=lambda pair: (-pair[0], pair[1]))
        for _, block in candidates[:locked_ways]:
            locked.add(block)

    base = options or OptimizerOptions()
    hybrid_options = dataclasses.replace(base, locked_blocks=frozenset(locked))
    optimized, report = optimize(cfg, residual, timing, options=hybrid_options)
    return frozenset(locked), optimized, report, residual


def simulate_locked(
    cfg: ControlFlowGraph,
    config: CacheConfig,
    timing: TimingModel,
    locked_blocks: Set[int],
    seed: int = 0,
    base_address: int = 0,
) -> SimulationResult:
    """Concrete run with a fully locked cache.

    The preload of the locked blocks is charged as one DRAM transfer per
    locked block (``fills``/``demand_misses`` bookkeeping: preloads count
    as fills but not as demand misses, since they happen at task load).

    Returns:
        A :class:`SimulationResult` comparable to :func:`repro.sim.simulate`.
    """
    for block in locked_blocks:
        if not isinstance(block, int) or block < 0:
            raise SimulationError(f"invalid locked block id {block!r}")
    layout = AddressLayout(cfg, base_address)
    result = SimulationResult(program=cfg.name)
    result.fills = len(locked_blocks)
    now = 0.0
    for block in block_trace(cfg, seed=seed):
        for instr in block.instructions:
            if instr.is_prefetch:
                raise SimulationError(
                    "locked-cache simulation expects a prefetch-free program"
                )
            address = layout.address(instr.uid)
            mem_block = config.block_of_address(address)
            result.fetches += 1
            if mem_block in locked_blocks:
                result.hits += 1
                now += float(timing.hit_cycles)
            else:
                result.demand_misses += 1
                now += float(timing.miss_cycles)
    result.memory_cycles = now
    result.validate()
    return result
