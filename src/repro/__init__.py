"""repro — WCET-safe unlocked-cache software prefetching.

Reproduction of E. Wuerges, R. S. de Oliveira, L. C. V. dos Santos,
"Reconciling real-time guarantees and energy efficiency through
unlocked-cache prefetching", DAC 2013.

The public API re-exports the pieces a downstream user needs:

* build programs (:class:`~repro.program.ProgramBuilder`) or use the
  Malardalen-style suite (:mod:`repro.bench`),
* configure caches (:class:`~repro.cache.CacheConfig`, Table 2 presets)
  and technologies (:mod:`repro.energy`),
* analyse (:func:`~repro.analysis.analyze_wcet`) and simulate
  (:func:`~repro.sim.simulate`),
* optimize (:func:`~repro.core.optimize`) — the paper's contribution,
* regenerate the paper's tables and figures (:mod:`repro.experiments`).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
