"""The prefetching join function ``J_SE`` (Algorithm 2, Figure 2).

Classical must-analysis joins abstract states by *intersection* — sound
for timing, but it discards exactly the information the optimizer needs:
which concrete blocks sit in the cache along the worst-case path.  The
paper therefore proposes a join tailored to prefetching: **propagate the
state of the entering edge that belongs to the WCET path**, falling back
to the costlier entering edge when neither is on the path (Algorithm 2
compares the edges' miss costs).

The optimizer applies this join at every ``JOIN`` vertex of the ACFG,
which makes its forward state walk equivalent to replaying the cache
along the WCET path while still assigning a state to every off-path
vertex (off-path insertions can still pay off — they can turn a
``NOT_CLASSIFIED`` reference after a convergence point into an
always-hit).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.structural import PathSolution
from repro.errors import OptimizationError
from repro.program.acfg import ACFG, VertexKind


def select_join_predecessor(
    acfg: ACFG, solution: PathSolution, join_rid: int
) -> int:
    """Pick the predecessor whose state ``J_SE`` propagates.

    Args:
        acfg: The program's ACFG.
        solution: WCET path solution (provides path membership and
            execution counts).
        join_rid: A ``JOIN`` vertex id.

    Returns:
        The chosen predecessor's rid: the unique predecessor on the WCET
        path when one exists, otherwise the predecessor with the largest
        worst-case execution count (the "costlier" edge of Algorithm 2),
        ties broken towards the smaller rid for determinism.
    """
    vertex = acfg.vertex(join_rid)
    if vertex.kind is not VertexKind.JOIN:
        raise OptimizationError(f"vertex {join_rid} is not a JOIN")
    preds: Sequence[int] = acfg.predecessors(join_rid)
    if not preds:
        raise OptimizationError(f"JOIN {join_rid} has no predecessors")
    on_path = [p for p in preds if solution.on_path[p]]
    if on_path:
        # The WCET path enters a join through exactly one edge; if the
        # DAG ever presented several (it cannot, the path is a chain),
        # determinism still holds via min().
        return min(on_path)
    return min(preds, key=lambda p: (-acfg.multiplier[p], p))
