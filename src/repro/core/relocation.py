"""Relocation effects of inserting a prefetch (Eq. 8 context).

A prefetch is a real instruction: inserting one shifts every later
instruction by :data:`~repro.program.instructions.INSTRUCTION_SIZE`
bytes, which can move instructions across memory-block boundaries,
change their cache sets, and thereby change the hit/miss classification
of references that have nothing to do with the precluded miss.  The
paper folds this into ``rcost`` (Eq. 8): the WCET delta over all other
references, which must not be positive for the insertion to stand
(Lemma 2).

This module provides

* :func:`insertion_point_after` — mapping the ACFG program point
  ``(r_i, r_{i+1})`` to a static ``(block, index)`` position (Algorithm 1
  lines 5-7 splice the ACFG edge; in the binary this is one insertion
  location shared by all contexts of the block),
* :func:`relocation_cost` — the exact ``rcost``, measured by comparing
  the full re-analysis of the transformed program against the original,
  excluding the inserted prefetch and the precluded miss themselves,
* :func:`moved_blocks` — which instructions changed memory block, for
  diagnostics and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.wcet import WCETResult
from repro.errors import OptimizationError
from repro.program.acfg import ACFG, VertexKind
from repro.program.instructions import InstrKind
from repro.program.layout import MemoryMap


@dataclass(frozen=True)
class InsertionPoint:
    """A static location for a new prefetch instruction.

    The prefetch is inserted *before* position ``index`` of ``block``.
    """

    block_name: str
    index: int


def insertion_point_after(acfg: ACFG, rid: int) -> Optional[InsertionPoint]:
    """Static position realising the program point ``(r_i, succ(r_i))``.

    When ``r_i`` is a mid-block instruction the prefetch goes right
    after it.  When ``r_i`` terminates its block with a control transfer
    (branch/jump/call/return), nothing can be placed behind it in the
    same block; the prefetch goes at the top of the next reference's
    block instead — found by following successors (skipping JOIN
    vertices, preferring the smallest rid for determinism).

    Returns:
        The :class:`InsertionPoint`, or ``None`` when ``r_i`` has no
        downstream reference (it borders the sink).
    """
    vertex = acfg.vertex(rid)
    if not vertex.is_ref:
        raise OptimizationError(f"vertex {rid} is not a reference")
    assert vertex.instr is not None and vertex.block_name is not None
    block = acfg.cfg.block(vertex.block_name)
    is_last = vertex.index_in_block == len(block.instructions) - 1
    if not (is_last and vertex.instr.is_control):
        return InsertionPoint(vertex.block_name, vertex.index_in_block + 1)
    # Follow the graph to the next reference vertex.
    cursor = rid
    for _ in range(len(acfg.vertices)):
        succs = acfg.successors(cursor)
        if not succs:
            return None
        cursor = min(succs)
        nxt = acfg.vertex(cursor)
        if nxt.kind is VertexKind.SINK:
            return None
        if nxt.is_ref:
            return InsertionPoint(nxt.block_name, nxt.index_in_block)
        # JOIN: keep walking.
    raise OptimizationError("insertion-point walk did not terminate")


def relocation_cost(
    before: WCETResult,
    after: WCETResult,
    prefetch_uid: int,
    miss_uid: int,
) -> float:
    """Exact ``rcost`` (Eq. 8): WCET delta over all *other* references.

    Sums ``τ_w(r)`` over every reference except the inserted prefetch
    (all its contexts) and the precluded reference (all contexts), in
    both programs, and returns ``after - before``.  A non-positive value
    means the relocation alone did not lengthen the worst case.
    """
    return _tau_excluding(after, prefetch_uid, miss_uid) - _tau_excluding(
        before, prefetch_uid, miss_uid
    )


def _tau_excluding(result: WCETResult, prefetch_uid: int, miss_uid: int) -> float:
    total = 0.0
    for vertex in result.acfg.ref_vertices():
        assert vertex.instr is not None
        if vertex.instr.uid in (prefetch_uid, miss_uid):
            continue
        total += result.tau_of(vertex.rid)
    return total


def moved_blocks(
    old_map: MemoryMap, new_map: MemoryMap
) -> FrozenSet[int]:
    """Instruction uids whose memory block changed between two layouts.

    Only instructions present in both layouts are compared (the inserted
    prefetch exists only in the new one).
    """
    moved = set()
    for instr in old_map.layout.instructions_in_order():
        uid = instr.uid
        try:
            new_block = new_map.block_of(uid)
        except Exception:  # instruction removed (undo paths)
            continue
        if new_block != old_map.block_of(uid):
            moved.add(uid)
    return frozenset(moved)
