"""Verification of the paper's formal guarantees (Supplement S.2).

Theorem 1 states that the optimization never increases the memory
system's contribution to the WCET, provided memory operations execute in
program order.  In this implementation the property holds *by
construction* (the optimizer's re-analysis gate), but guarantees worth
having are guarantees worth checking independently — these functions are
used by the test suite, the examples, and the benchmark harness to
re-derive the claim from scratch on every optimized program:

* :func:`verify_wcet_guarantee` — re-analyses both programs and compares
  ``τ_w`` (Theorem 1);
* :func:`verify_prefetch_equivalence` — Definition 5: stripping the
  prefetches must recover the original instruction stream exactly;
* :func:`verify_effectiveness` — Definition 10 for every inserted
  prefetch: the latency Λ fits in the minimum memory time between the
  prefetch and the first on-path use of its target block;
* :func:`verify_miss_reduction` — Condition 2 on the WCET path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.timing import TimingModel
from repro.analysis.wcet import analyze_wcet, prefetch_lambda
from repro.cache.config import CacheConfig, HierarchyConfig
from repro.core.profit import min_path_slack, wraparound_slack
from repro.errors import GuaranteeViolation
from repro.program.acfg import build_acfg
from repro.program.cfg import ControlFlowGraph


@dataclass(frozen=True)
class GuaranteeCheck:
    """Outcome of one independent guarantee verification.

    Attributes:
        tau_original: τ_w of the unoptimized program.
        tau_optimized: τ_w of the optimized program.
        misses_original: Worst-case miss count before.
        misses_optimized: Worst-case miss count after.
        ineffective_prefetches: uids of prefetches violating Def. 10.
    """

    tau_original: float
    tau_optimized: float
    misses_original: int
    misses_optimized: int
    ineffective_prefetches: List[int]

    @property
    def theorem1_holds(self) -> bool:
        """Whether τ_w did not increase."""
        return self.tau_optimized <= self.tau_original + 1e-6

    @property
    def condition2_holds(self) -> bool:
        """Whether the worst-case miss count did not increase."""
        return self.misses_optimized <= self.misses_original

    @property
    def all_effective(self) -> bool:
        """Whether every prefetch satisfies Definition 10."""
        return not self.ineffective_prefetches


def verify_wcet_guarantee(
    original: ControlFlowGraph,
    optimized: ControlFlowGraph,
    config: CacheConfig,
    timing: TimingModel,
    base_address: int = 0,
    strict: bool = True,
    with_persistence: bool = True,
    hierarchy: Optional[HierarchyConfig] = None,
    refine: bool = False,
) -> GuaranteeCheck:
    """Independently re-derive Theorem 1 for a program pair.

    Theorem 1 is *relative to the analysis that gated the insertions*:
    a program optimized under the classic must/may baseline is
    guaranteed non-regressing under that baseline, but may look worse
    under the tighter persistence baseline (and vice versa) — verify
    with the same ``with_persistence`` the optimizer used.  The same
    applies to the memory hierarchy and to the model-checking
    refinement: pass the same ``hierarchy`` and ``refine``.

    Args:
        original: The prefetch-free program.
        optimized: The transformed program.
        config: Cache configuration both run on.
        timing: Timing model.
        base_address: Layout base.
        strict: Raise :class:`GuaranteeViolation` on failure instead of
            returning a failing check.
        with_persistence: Analysis fidelity (match the optimizer's).
        hierarchy: Memory hierarchy (match the optimizer's; ``None`` is
            the single-level system).
        refine: Model-checking refinement of NOT_CLASSIFIED references
            (match the optimizer's).

    Returns:
        The :class:`GuaranteeCheck` with all measurements.
    """
    acfg_orig = build_acfg(original, config.block_size, base_address)
    acfg_opt = build_acfg(optimized, config.block_size, base_address)
    wcet_orig = analyze_wcet(
        acfg_orig, config, timing, with_persistence=with_persistence,
        hierarchy=hierarchy, refine=refine,
    )
    wcet_opt = analyze_wcet(
        acfg_opt, config, timing, with_persistence=with_persistence,
        hierarchy=hierarchy, refine=refine,
    )
    ineffective = verify_effectiveness(
        optimized, config, timing, base_address,
        with_persistence=with_persistence, hierarchy=hierarchy,
        refine=refine,
    )
    check = GuaranteeCheck(
        tau_original=wcet_orig.tau_w,
        tau_optimized=wcet_opt.tau_w,
        misses_original=wcet_orig.wcet_path_misses,
        misses_optimized=wcet_opt.wcet_path_misses,
        ineffective_prefetches=ineffective,
    )
    if strict and not check.theorem1_holds:
        raise GuaranteeViolation(
            f"Theorem 1 violated: τ_w {check.tau_original} -> "
            f"{check.tau_optimized}"
        )
    return check


def verify_prefetch_equivalence(
    original: ControlFlowGraph, optimized: ControlFlowGraph
) -> bool:
    """Definition 5: the programs differ only in prefetch instructions.

    Compares the block structure and the uid sequence of non-prefetch
    instructions; also requires the original to be prefetch-free.
    """
    if any(i.is_prefetch for i in original.instructions()):
        return False
    orig_blocks = {b.name: b for b in original.blocks}
    opt_blocks = {b.name: b for b in optimized.blocks}
    if set(orig_blocks) != set(opt_blocks):
        return False
    for name, orig_block in orig_blocks.items():
        orig_uids = [i.uid for i in orig_block.instructions]
        opt_uids = [
            i.uid for i in opt_blocks[name].instructions if not i.is_prefetch
        ]
        if orig_uids != opt_uids:
            return False
    return True


def verify_effectiveness(
    optimized: ControlFlowGraph,
    config: CacheConfig,
    timing: TimingModel,
    base_address: int = 0,
    with_persistence: bool = True,
    hierarchy: Optional[HierarchyConfig] = None,
    refine: bool = False,
) -> List[int]:
    """Timing soundness of every prefetch-enabled hit (Definition 10).

    The hardware needs Λ cycles to complete a prefetch; the WCET bound
    is sound only if no reference is *charged a hit* while lying closer
    than Λ behind the prefetch that would supply its block.  The
    analysis enforces this with its latency guard
    (:attr:`repro.analysis.wcet.WCETResult.latency_guarded` charges such
    references the miss latency); this function independently re-derives
    the slacks and reports any hit-charged reference that is too close.

    Returns:
        rids of under-charged references (empty when the guard did its
        job — the expected outcome).
    """
    acfg = build_acfg(optimized, config.block_size, base_address)
    wcet = analyze_wcet(
        acfg, config, timing, with_persistence=with_persistence,
        hierarchy=hierarchy, refine=refine,
    )
    return find_undercharged_references(acfg, wcet, timing)


def find_undercharged_references(acfg, wcet, timing: TimingModel) -> List[int]:
    """The latency-soundness check against an analysed program.

    Returns:
        rids of references charged less than the miss latency although
        their block arrives through a prefetch less than Λ ahead.
    """
    from repro.analysis.slack import (
        min_path_slack as _slack,
        rest_instance_spans,
        wraparound_slack as _wslack,
    )

    loop_spans = rest_instance_spans(acfg)
    miss_cycles = float(timing.miss_cycles)
    violations: List[int] = []
    uses_by_block: dict = {}
    for c in acfg.ref_vertices():
        if c.is_prefetch:
            continue
        if wcet.t_w[c.rid] >= miss_cycles:
            continue  # already charged a full miss: always sound
        uses_by_block.setdefault(acfg.block_of(c.rid), []).append(c.rid)
    for vertex in acfg.ref_vertices():
        if not vertex.is_prefetch:
            continue
        target_block = acfg.target_block_or_none(vertex.rid)
        if target_block is None:
            continue  # data prefetch: no instruction-cache hit to justify
        # Per-prefetch Λ: an L2-guaranteed transfer completes after the
        # L2 penalty, so nearer uses are still sound (single-level this
        # is exactly timing.prefetch_latency).
        latency = float(
            prefetch_lambda(wcet.cache, timing, vertex.rid, target_block)
        )
        for use in uses_by_block.get(target_block, []):
            if use > vertex.rid:
                slack = _slack(acfg, wcet.t_w, vertex.rid, use)
                if slack < latency:
                    violations.append(use)
            else:
                for join_rid, last_rid, exit_rids in reversed(loop_spans):
                    if not join_rid <= vertex.rid <= last_rid:
                        continue
                    if join_rid <= use <= vertex.rid:
                        slack = _wslack(
                            acfg, wcet.t_w, vertex.rid, use, join_rid, exit_rids
                        )
                        if slack < latency:
                            violations.append(use)
                    break
    return sorted(set(violations))


def verify_miss_reduction(
    original: ControlFlowGraph,
    optimized: ControlFlowGraph,
    config: CacheConfig,
    timing: TimingModel,
    base_address: int = 0,
    with_persistence: bool = True,
    hierarchy: Optional[HierarchyConfig] = None,
    refine: bool = False,
) -> bool:
    """Condition 2 on the WCET path: misses must not have increased.

    Like Theorem 1 (see :func:`verify_wcet_guarantee`), the condition is
    relative to the analysis that gated the insertions — pass the same
    ``with_persistence``, ``hierarchy`` and ``refine`` the optimizer
    used.
    """
    acfg_orig = build_acfg(original, config.block_size, base_address)
    acfg_opt = build_acfg(optimized, config.block_size, base_address)
    wcet_orig = analyze_wcet(
        acfg_orig, config, timing, with_persistence=with_persistence,
        hierarchy=hierarchy, refine=refine,
    )
    wcet_opt = analyze_wcet(
        acfg_opt, config, timing, with_persistence=with_persistence,
        hierarchy=hierarchy, refine=refine,
    )
    return wcet_opt.wcet_path_misses <= wcet_orig.wcet_path_misses
