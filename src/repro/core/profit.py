"""The joint improvement criterion (Section 4.3, Eqs. 4-9).

Five notions decide whether inserting a prefetch ``π_{s'}`` at program
point ``(r_i, r_{i+1})`` to preclude the miss at ``r_j`` is worthwhile:

* **effectiveness** (Definition 10): the prefetch latency ``Λ`` must be
  covered by the memory time of the references between insertion point
  and use — :func:`min_path_slack` computes the *minimum* such time over
  all DAG paths, a conservative form of Eq. 5;
* **mcost** (Eq. 6): what the miss at ``r_j`` costs per execution;
* **pcost** (Eq. 7): what the prefetch instruction plus the resulting
  hit cost;
* **rcost** (Eq. 8): the WCET delta caused by relocating every
  instruction behind the insertion point (computed exactly by
  re-analysis, see :mod:`repro.core.relocation`);
* **profit** (Eq. 9): ``mcost - pcost`` when effective, with counts
  applied — :class:`ProfitTerms.value`.

The static estimate here is a *pre-filter*: the optimizer's final accept
decision re-analyses the transformed program (Conditions 1 and 2 checked
on the real ``τ_w`` and worst-case miss count), so an optimistic
estimate can never break the guarantee — it only costs an evaluation.

All terms derive from the classification-dependent ``t_w`` vector, so
when the model-checking refinement is on (:mod:`repro.analysis.refine`)
a promoted NC→AH reference stops being a miss candidate and a promoted
NC→AM reference's slack contribution grows to the full miss time —
tighter inputs, same criterion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.timing import TimingModel
from repro.errors import OptimizationError
from repro.program.acfg import ACFG


#: Re-exported from :mod:`repro.analysis.slack` (shared with the WCET
#: driver's prefetch-latency guard and the guarantee checkers).
from repro.analysis.slack import min_path_slack, wraparound_slack  # noqa: E402

@dataclass(frozen=True)
class ProfitTerms:
    """All criterion terms for one candidate prefetch.

    Attributes:
        mcost: Per-execution cost of the precluded miss (Eq. 6).
        pcost: Per-execution cost after the prefetch: issue slot + the
            prefetch's own fetch + the now-hitting reference (Eq. 7,
            optimistic pre-filter form).
        slack: Minimum memory time between insertion point and use.
        latency: ``Λ`` (Definition 4).
        n_miss: Worst-case executions of the precluded miss
            (``n^w_{B(r_j)}``).
        n_insert: Worst-case executions of the insertion point.
    """

    mcost: float
    pcost: float
    slack: float
    latency: float
    n_miss: int
    n_insert: int

    @property
    def effective(self) -> bool:
        """Definition 10: the latency fits in the slack."""
        return self.latency <= self.slack

    @property
    def value(self) -> float:
        """Eq. 9 with execution counts applied (0 when ineffective)."""
        if not self.effective:
            return 0.0
        hit_saving = self.mcost * self.n_miss
        prefetch_cost = self.pcost * max(self.n_insert, 1)
        return hit_saving - prefetch_cost

    @property
    def profitable(self) -> bool:
        """Pre-filter verdict (the re-analysis gate has the last word)."""
        return self.value > 0.0


def estimate_profit(
    acfg: ACFG,
    t_w: Sequence[float],
    timing: TimingModel,
    insert_after_rid: int,
    miss_rid: int,
    n_miss: int,
    n_insert: int,
    slack: Optional[float] = None,
    mcost: Optional[float] = None,
    latency: Optional[float] = None,
) -> ProfitTerms:
    """Build the :class:`ProfitTerms` for one candidate.

    Args:
        acfg: Current ACFG.
        t_w: Per-execution worst-case times (current program).
        timing: Timing model (provides ``Λ`` and the hit/miss costs).
        insert_after_rid: The eviction vertex ``r_i`` (prefetch goes at
            ``(r_i, r_{i+1})``).
        miss_rid: The reference ``r_j`` whose miss is to be precluded.
        n_miss: ``n^w`` of ``r_j``.
        n_insert: ``n^w`` (or multiplier, for off-path points) of the
            insertion point.
        slack: Precomputed Eq. 5 slack (wrap-around candidates pass
            :func:`wraparound_slack`); computed via
            :func:`min_path_slack` when omitted.
        mcost: Per-execution saving override (Eq. 6).  Multi-level
            callers pass ``t_w[miss_rid] - hit_cycles`` so a miss that
            the L2 already catches is not credited the full DRAM
            penalty.  Defaults to ``miss_cycles - hit_cycles``.
        latency: ``Λ`` override.  Multi-level callers pass the result of
            :func:`repro.analysis.wcet.prefetch_lambda`, which shrinks
            to the L2 hit penalty when the target block is guaranteed
            L2-resident at the insertion point.  Defaults to
            ``timing.prefetch_latency``.

    Returns:
        The candidate's :class:`ProfitTerms`.
    """
    if mcost is None:
        mcost = float(timing.miss_cycles) - float(timing.hit_cycles)
    # Optimistic pcost: the prefetch's own fetch hits (it lands inside an
    # already-resident block most of the time) and costs its issue slot.
    pcost = float(timing.prefetch_issue_cycles) + float(timing.hit_cycles)
    if slack is None:
        slack = min_path_slack(acfg, t_w, insert_after_rid, miss_rid)
    if latency is None:
        latency = float(timing.prefetch_latency)
    return ProfitTerms(
        mcost=mcost,
        pcost=pcost,
        slack=slack,
        latency=float(latency),
        n_miss=n_miss,
        n_insert=n_insert,
    )
