"""The prefetching optimization algorithm (Section 4.4, Algorithm 3).

Iterative improvement over prefetch-equivalent programs:

1. run the preliminary WCET analysis (classification + IPET counts),
2. walk the ACFG's references in **reverse execution order**, replaying
   the optimization cache state (``Û_e``/``J_SE``,
   :mod:`repro.core.update`) to detect replacements (Property 3),
3. for each replacement whose evicted block is demanded again on the
   WCET path, evaluate the joint improvement criterion
   (:mod:`repro.core.profit`) and — if it passes — insert a prefetch at
   the replacement point,
4. re-analyse the transformed program and *keep the insertion only if*
   the memory contribution to the WCET did not grow (Condition 1) and
   the worst-case miss count shrank (Condition 2) — the authoritative
   re-analysis gate that makes Theorem 1 hold by construction,
5. repeat from 1 until no further insertion is accepted.

Termination: every accepted insertion strictly decreases the worst-case
miss count, which is bounded below; rejected candidates are memoised.

The ablation switches in :class:`OptimizerOptions` exist to *demonstrate*
why each gate matters (see ``benchmarks/test_ablations.py``): disabling
the WCET gate breaks Theorem 1, disabling effectiveness inserts
prefetches that cannot hide their latency, disabling the miss gate stops
the optimization from paying for itself.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.timing import TimingModel
from repro.analysis.wcet import WCETResult, analyze_wcet
from repro.cache.classify import Classification
from repro.cache.config import CacheConfig
from repro.core.profit import ProfitTerms, estimate_profit, wraparound_slack
from repro.core.relocation import (
    InsertionPoint,
    insertion_point_after,
    relocation_cost,
)
from repro.core.update import PrefetchCandidateEvent, collect_reverse_events
from repro.errors import GuaranteeViolation, OptimizationError
from repro.program.acfg import ACFG, build_acfg
from repro.program.cfg import ControlFlowGraph

#: Numerical slack for float comparisons of τ_w values.
TAU_EPSILON = 1e-6


@dataclass(frozen=True)
class OptimizerOptions:
    """Tuning knobs and ablation switches.

    Attributes:
        max_insertions: Hard cap on accepted prefetches.
        require_effectiveness: Gate on Definition 10 (Λ fits the slack).
        require_wcet_nonincrease: Gate on Condition 1 (τ_w must not grow).
            Disabling this is the ablation that *breaks* Theorem 1.
        require_miss_decrease: Gate on Condition 2 (worst-case misses
            must shrink).
        use_prefilter: Apply the static profit estimate before paying
            for a re-analysis.
        verify_guarantee: Re-assert Theorem 1 on the final program and
            raise :class:`~repro.errors.GuaranteeViolation` on failure.
        base_address: Code base address for layouts.
        max_evaluations: Optimization budget: total number of candidate
            re-analyses allowed (``None`` = unlimited).  Every gate still
            applies — exhausting the budget only stops the search early,
            it can never admit a bad insertion.  Sweeps over the full
            suite set this to bound worst-case programs (the search is
            O(|R|^2), matching the paper's complexity bound).
        placement: Where candidate prefetches go.
            ``"earliest-survivable"`` (the paper): at the reverse
            analysis' replacement point — the earliest spot from which
            the block survives until its use, maximising latency slack.
            ``"block-begin"`` (the strategy of the paper's ref. [5],
            which Section 2.2 criticises): at the beginning of the basic
            block containing the missing reference — often too close to
            hide Λ.  Exists for the ablation benchmark.
    """

    max_insertions: int = 256
    require_effectiveness: bool = True
    require_wcet_nonincrease: bool = True
    require_miss_decrease: bool = True
    use_prefilter: bool = True
    verify_guarantee: bool = True
    base_address: int = 0
    max_evaluations: Optional[int] = None
    placement: str = "earliest-survivable"
    #: When the gate rejects a candidate, retry the insertion up to this
    #: many instruction slots later in the same block.  Rejections are
    #: usually relocation artefacts (the 4-byte shift re-aligns blocks
    #: unfavourably); a nearby slot often relocates benignly while still
    #: covering the latency.  Part of the paper's "iterative improvement
    #: as far as an improvement can be observed" reading.
    placement_retries: int = 2
    #: Analysis fidelity for the preliminary WCET analysis: ``True``
    #: includes the persistence domain (tighter modern baseline),
    #: ``False`` is the classic must/may baseline of the paper's era.
    with_persistence: bool = True
    #: Hybrid locking+prefetching ([16]/[2], the paper's planned
    #: extension): memory blocks pinned in locked ways.  They always
    #: hit, never disturb the unlocked ways, and are never prefetch
    #: targets; the cache configuration passed to :func:`optimize` must
    #: then be the reduced-way residual configuration (see
    #: :func:`repro.sim.locking.optimize_with_locking`).
    locked_blocks: frozenset = frozenset()

    def __post_init__(self) -> None:
        if self.placement not in ("earliest-survivable", "block-begin"):
            raise OptimizationError(
                f"unknown placement strategy {self.placement!r}"
            )


@dataclass
class InsertedPrefetch:
    """Record of one accepted insertion.

    Attributes:
        prefetch_uid: uid of the new prefetch instruction.
        target_uid: uid of the instruction whose block it loads.
        block_name: Block receiving the prefetch.
        index: Position within the block at insertion time.
        evictor_uid: Instruction whose access evicted the block
            (Property 3 detection site).
        miss_uid: The reference whose miss was precluded (``r_j``).
        terms: Criterion terms at decision time.
        rcost: Exact relocation cost (Eq. 8) measured by re-analysis.
        tau_before: τ_w before this insertion.
        tau_after: τ_w after this insertion.
        misses_before: Worst-case miss count before.
        misses_after: Worst-case miss count after.
    """

    prefetch_uid: int
    target_uid: int
    block_name: str
    index: int
    evictor_uid: int
    miss_uid: int
    terms: ProfitTerms
    rcost: float
    tau_before: float
    tau_after: float
    misses_before: int
    misses_after: int


@dataclass
class OptimizationReport:
    """Outcome of one :func:`optimize` run.

    All τ values are the memory system's contribution to the WCET.
    """

    program: str
    config: CacheConfig
    timing: TimingModel
    tau_original: float
    tau_final: float
    misses_original: int
    misses_final: int
    static_instructions_original: int
    static_instructions_final: int
    inserted: List[InsertedPrefetch] = field(default_factory=list)
    candidates_evaluated: int = 0
    candidates_rejected: int = 0
    passes: int = 0

    @property
    def prefetch_count(self) -> int:
        """Number of accepted prefetches."""
        return len(self.inserted)

    @property
    def wcet_reduction(self) -> float:
        """Relative τ_w reduction: ``1 - τ_final / τ_original``."""
        if self.tau_original == 0:
            return 0.0
        return 1.0 - self.tau_final / self.tau_original

    @property
    def miss_reduction(self) -> float:
        """Relative worst-case miss reduction."""
        if self.misses_original == 0:
            return 0.0
        return 1.0 - self.misses_final / self.misses_original

    @property
    def instruction_overhead(self) -> float:
        """Static instruction growth, Fig. 8's metric at the static level."""
        if self.static_instructions_original == 0:
            return 0.0
        return (
            self.static_instructions_final / self.static_instructions_original
            - 1.0
        )


def optimize(
    cfg: ControlFlowGraph,
    config: CacheConfig,
    timing: TimingModel,
    options: Optional[OptimizerOptions] = None,
    inplace: bool = False,
) -> Tuple[ControlFlowGraph, OptimizationReport]:
    """Run the paper's optimization on a program.

    Args:
        cfg: The program (must be prefetch-free unless resuming).
        config: Cache configuration to optimize for.
        timing: Timing model (from the energy model of the target
            technology).
        options: Gates and limits; defaults to the paper's setting.
        inplace: Mutate ``cfg`` instead of working on a clone.

    Returns:
        ``(optimized_program, report)``.  The optimized program is
        prefetch-equivalent to the input (Definition 5) and satisfies
        ``τ_w(optimized) <= τ_w(input)`` (Theorem 1) unless the
        corresponding gates were disabled.
    """
    opts = options or OptimizerOptions()
    work = cfg if inplace else cfg.clone()

    acfg = build_acfg(work, config.block_size, opts.base_address)
    wcet = analyze_wcet(
        acfg, config, timing, with_may=False,
        with_persistence=opts.with_persistence,
        locked_blocks=opts.locked_blocks or None,
    )
    report = OptimizationReport(
        program=work.name,
        config=config,
        timing=timing,
        tau_original=wcet.tau_w,
        tau_final=wcet.tau_w,
        misses_original=wcet.wcet_path_misses,
        misses_final=wcet.wcet_path_misses,
        static_instructions_original=work.instruction_count,
        static_instructions_final=work.instruction_count,
    )

    rejected: Set[Tuple] = set()
    while len(report.inserted) < opts.max_insertions:
        report.passes += 1
        accepted = _run_pass(work, config, timing, opts, acfg, wcet, rejected, report)
        if accepted is None:
            break
        acfg, wcet = accepted

    report.tau_final = wcet.tau_w
    report.misses_final = wcet.wcet_path_misses
    report.static_instructions_final = work.instruction_count

    if opts.verify_guarantee and opts.require_wcet_nonincrease:
        if report.tau_final > report.tau_original + TAU_EPSILON:
            raise GuaranteeViolation(
                f"Theorem 1 violated: τ_w grew from {report.tau_original} "
                f"to {report.tau_final}"
            )
    return work, report


def _run_pass(
    work: ControlFlowGraph,
    config: CacheConfig,
    timing: TimingModel,
    opts: OptimizerOptions,
    acfg: ACFG,
    wcet: WCETResult,
    rejected: Set[Tuple],
    report: OptimizationReport,
) -> Optional[Tuple[ACFG, WCETResult]]:
    """One reverse walk; returns the new (acfg, wcet) on acceptance."""
    events = collect_reverse_events(
        acfg, config, wcet.solution, locked_blocks=opts.locked_blocks or None
    )
    uses_by_block = _on_path_miss_uses(acfg, wcet)
    exec_count_by_uid = _exec_counts(acfg, wcet)
    loop_ranges = {j: (last, exits) for j, last, exits in _loop_ranges(acfg)}

    for event in events:
        located = _locate_candidate(
            acfg, wcet, event, uses_by_block, loop_ranges, opts
        )
        if located is None:
            continue
        key, point, miss_rid, wrap_join, price_anchor = located
        if key in rejected:
            continue
        terms = _price_candidate(
            acfg, wcet, timing, price_anchor, miss_rid, wrap_join,
            loop_ranges, exec_count_by_uid,
        )
        miss_vertex = acfg.vertex(miss_rid)
        assert miss_vertex.instr is not None
        if opts.require_effectiveness and not terms.effective:
            rejected.add(key)
            continue
        if opts.use_prefilter and not terms.profitable:
            rejected.add(key)
            continue
        # Evaluate the candidate point and, on rejection, a few slots
        # further down the block (rejections are mostly relocation
        # artefacts of the exact byte position).
        accepted = None
        block_len = len(work.block(point.block_name).instructions)
        for offset in range(opts.placement_retries + 1):
            index = point.index + offset
            if index > block_len:
                break
            if (
                opts.max_evaluations is not None
                and report.candidates_evaluated >= opts.max_evaluations
            ):
                return None  # budget exhausted: end the search
            report.candidates_evaluated += 1
            prefetch = work.insert_prefetch(
                point.block_name, index, miss_vertex.instr.uid
            )
            new_acfg = build_acfg(work, config.block_size, opts.base_address)
            new_wcet = analyze_wcet(
                new_acfg, config, timing, with_may=False,
                with_persistence=opts.with_persistence,
                locked_blocks=opts.locked_blocks or None,
            )
            ok = True
            if (
                opts.require_wcet_nonincrease
                and new_wcet.tau_w > wcet.tau_w + TAU_EPSILON
            ):
                ok = False
            if (
                opts.require_miss_decrease
                and new_wcet.wcet_path_misses >= wcet.wcet_path_misses
            ):
                ok = False
            # Note: lateness of earlier prefetches eroded by this
            # insertion needs no extra gate — analyze_wcet's
            # prefetch-latency guard charges any hit closer than Λ
            # behind a prefetch the full miss latency, so erosion shows
            # up in new_wcet.tau_w directly.
            if ok:
                accepted = (prefetch, new_acfg, new_wcet, index)
                break
            work.remove_prefetch(prefetch.uid)
            report.candidates_rejected += 1
        if accepted is None:
            rejected.add(key)
            continue
        prefetch, new_acfg, new_wcet, chosen_index = accepted
        point = InsertionPoint(point.block_name, chosen_index)

        evictor = acfg.vertex(event.insert_after_rid)
        evictor_uid = evictor.instr.uid if evictor.instr is not None else -1
        report.inserted.append(
            InsertedPrefetch(
                prefetch_uid=prefetch.uid,
                target_uid=miss_vertex.instr.uid,
                block_name=point.block_name,
                index=point.index,
                evictor_uid=evictor_uid,
                miss_uid=miss_vertex.instr.uid,
                terms=terms,
                rcost=relocation_cost(
                    wcet, new_wcet, prefetch.uid, miss_vertex.instr.uid
                ),
                tau_before=wcet.tau_w,
                tau_after=new_wcet.tau_w,
                misses_before=wcet.wcet_path_misses,
                misses_after=new_wcet.wcet_path_misses,
            )
        )
        return new_acfg, new_wcet
    return None


def _locate_candidate(
    acfg: ACFG,
    wcet: WCETResult,
    event: PrefetchCandidateEvent,
    uses_by_block: Dict[int, List[int]],
    loop_ranges: Dict[int, Tuple[int, Tuple[int, ...]]],
    opts: OptimizerOptions,
) -> Optional[Tuple[Tuple, InsertionPoint, int, int, int]]:
    """Cheap half of candidate construction: find the precluded miss.

    The event already names the earliest survivable insertion point;
    this locates the dropped block's next on-path non-hit use —
    downstream for straight-line events, circularly (through the back
    edge) for wrapped events — and builds the memo key.  No slack or
    profit is computed here, so rejected candidates cost one bisect per
    pass.

    Returns:
        ``(key, point, miss_rid, wrap_join_rid)`` with ``wrap_join_rid
        == -1`` for non-circular reuse, or ``None``.
    """
    uses = uses_by_block.get(event.dropped_block)
    if not uses:
        return None
    if event.insert_after_rid == acfg.source:
        # Cold-miss candidate: the prefetch opens the program.
        point = InsertionPoint(acfg.cfg.blocks[0].name, 0)
        anchor_uid: int = -1
        anchor_ctx: Tuple = ()
    else:
        anchor = acfg.vertex(event.insert_after_rid)
        assert anchor.instr is not None
        maybe_point = insertion_point_after(acfg, event.insert_after_rid)
        if maybe_point is None:
            return None
        point = maybe_point
        anchor_uid, anchor_ctx = anchor.instr.uid, anchor.context

    miss_rid: Optional[int] = None
    wrap_join = -1
    pos = bisect.bisect_right(uses, event.insert_after_rid)
    if not event.wrapped:
        if pos < len(uses):
            miss_rid = uses[pos]
    else:
        join_rid = event.loop_join_rid
        last_rid, _ = loop_ranges[join_rid]
        # Circularly-next use: rest of this iteration first, then the
        # top of the body (reached through the back edge).
        if pos < len(uses) and uses[pos] <= last_rid:
            miss_rid = uses[pos]
        else:
            lo = bisect.bisect_left(uses, join_rid)
            if lo < len(uses) and uses[lo] <= event.insert_after_rid:
                miss_rid = uses[lo]
                wrap_join = join_rid
    if miss_rid is None:
        return None
    miss_vertex = acfg.vertex(miss_rid)
    assert miss_vertex.instr is not None
    price_anchor = event.insert_after_rid
    if opts.placement == "block-begin":
        # The strategy of ref. [5]: the prefetch opens the basic block
        # containing the missing reference.
        assert miss_vertex.block_name is not None
        point = InsertionPoint(miss_vertex.block_name, 0)
        wrap_join = -1
        block = acfg.cfg.block(miss_vertex.block_name)
        first_rid = acfg.by_key(block.instructions[0].uid, miss_vertex.context)
        price_anchor = first_rid if first_rid is not None else miss_rid
        anchor_uid = block.instructions[0].uid
        anchor_ctx = miss_vertex.context
    key = (anchor_uid, anchor_ctx, miss_vertex.instr.uid, miss_vertex.context)
    return key, point, miss_rid, wrap_join, price_anchor


def _price_candidate(
    acfg: ACFG,
    wcet: WCETResult,
    timing: TimingModel,
    anchor_rid: int,
    miss_rid: int,
    wrap_join: int,
    loop_ranges: Dict[int, Tuple[int, Tuple[int, ...]]],
    exec_count_by_uid: Dict[int, int],
) -> ProfitTerms:
    """Expensive half: Eq. 5 slack and the Eq. 9 profit terms."""
    slack: Optional[float] = None
    if wrap_join >= 0:
        _, exit_rids = loop_ranges[wrap_join]
        slack = wraparound_slack(
            acfg, wcet.t_w, anchor_rid, miss_rid, wrap_join, exit_rids
        )
    elif anchor_rid >= miss_rid:
        slack = 0.0  # block-begin placement right at (or past) the use
    # A persistent (first-miss) reference pays one real miss regardless
    # of its execution count.
    if wcet.cache.classification(miss_rid) is Classification.PERSISTENT:
        n_miss = 1
    else:
        n_miss = wcet.n_w(miss_rid)
    anchor = acfg.vertex(anchor_rid)
    anchor_uid = anchor.instr.uid if anchor.instr is not None else -1
    return estimate_profit(
        acfg,
        wcet.t_w,
        timing,
        insert_after_rid=anchor_rid,
        miss_rid=miss_rid,
        n_miss=n_miss,
        n_insert=exec_count_by_uid.get(anchor_uid, 1),
        slack=slack,
    )


def _loop_ranges(acfg: ACFG) -> List[Tuple[int, int, Tuple[int, ...]]]:
    """REST instance spans: ``(entry_join_rid, last_rid, exit_rids)``.

    Derived from the analysis-only back edges; sorted by entry join so
    ``reversed()`` visits innermost instances first.
    """
    by_join: Dict[int, List[int]] = defaultdict(list)
    for src, dst in acfg.back_edges:
        by_join[dst].append(src)
    ranges = [
        (join, max(exits), tuple(sorted(exits)))
        for join, exits in by_join.items()
    ]
    ranges.sort()
    return ranges


def _on_path_miss_uses(acfg: ACFG, wcet: WCETResult) -> Dict[int, List[int]]:
    """Per memory block: sorted rids of on-path references still paying
    for a miss — always-miss, not-classified, or first-miss persistent —
    the misses a prefetch could preclude."""
    uses: Dict[int, List[int]] = defaultdict(list)
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        if wcet.solution.n_w[rid] == 0:
            continue
        if wcet.cache.classification(rid).is_always_hit:
            continue
        uses[acfg.block_of(rid)].append(rid)
    return uses


def _exec_counts(acfg: ACFG, wcet: WCETResult) -> Dict[int, int]:
    """Worst-case executions per *static instruction* (summed contexts)."""
    counts: Dict[int, int] = defaultdict(int)
    for vertex in acfg.ref_vertices():
        assert vertex.instr is not None
        counts[vertex.instr.uid] += wcet.solution.n_w[vertex.rid]
    return counts
