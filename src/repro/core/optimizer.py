"""The prefetching optimization algorithm (Section 4.4, Algorithm 3).

Iterative improvement over prefetch-equivalent programs:

1. run the preliminary WCET analysis (classification + IPET counts),
2. walk the ACFG's references in **reverse execution order**, replaying
   the optimization cache state (``Û_e``/``J_SE``,
   :mod:`repro.core.update`) to detect replacements (Property 3),
3. for each replacement whose evicted block is demanded again on the
   WCET path, evaluate the joint improvement criterion
   (:mod:`repro.core.profit`) and — if it passes — insert a prefetch at
   the replacement point,
4. re-analyse the transformed program and *keep the insertion only if*
   the memory contribution to the WCET did not grow (Condition 1) and
   the worst-case miss count shrank (Condition 2) — the authoritative
   re-analysis gate that makes Theorem 1 hold by construction,
5. repeat from 1 until no further insertion is accepted.

Termination: every accepted insertion strictly decreases the worst-case
miss count, which is bounded below; rejected candidates are memoised.

The ablation switches in :class:`OptimizerOptions` exist to *demonstrate*
why each gate matters (see ``benchmarks/test_ablations.py``): disabling
the WCET gate breaks Theorem 1, disabling effectiveness inserts
prefetches that cannot hide their latency, disabling the miss gate stops
the optimization from paying for itself.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.pipeline import AnalysisPipeline, PipelineResult
from repro.analysis.timing import TimingModel
from repro.analysis.wcet import WCETResult, prefetch_lambda
from repro.cache.classify import Classification
from repro.cache.config import CacheConfig, parse_l2_spec
from repro.core.profit import ProfitTerms, estimate_profit, wraparound_slack
from repro.core.relocation import (
    InsertionPoint,
    insertion_point_after,
    relocation_cost,
)
from repro.core.update import PrefetchCandidateEvent
from repro.errors import GuaranteeViolation, OptimizationError
from repro.program.acfg import ACFG
from repro.program.cfg import ControlFlowGraph

#: Numerical slack for float comparisons of τ_w values.
TAU_EPSILON = 1e-6


@dataclass(frozen=True)
class OptimizerOptions:
    """Tuning knobs and ablation switches.

    Attributes:
        max_insertions: Hard cap on accepted prefetches.
        require_effectiveness: Gate on Definition 10 (Λ fits the slack).
        require_wcet_nonincrease: Gate on Condition 1 (τ_w must not grow).
            Disabling this is the ablation that *breaks* Theorem 1.
        require_miss_decrease: Gate on Condition 2 (worst-case misses
            must shrink).
        use_prefilter: Apply the static profit estimate before paying
            for a re-analysis.
        verify_guarantee: Re-assert Theorem 1 on the final program and
            raise :class:`~repro.errors.GuaranteeViolation` on failure.
        base_address: Code base address for layouts.
        max_evaluations: Optimization budget: total number of candidate
            re-analyses allowed (``None`` = unlimited).  Every gate still
            applies — exhausting the budget only stops the search early,
            it can never admit a bad insertion.  Sweeps over the full
            suite set this to bound worst-case programs (the search is
            O(|R|^2), matching the paper's complexity bound).
        placement: Where candidate prefetches go.
            ``"earliest-survivable"`` (the paper): at the reverse
            analysis' replacement point — the earliest spot from which
            the block survives until its use, maximising latency slack.
            ``"block-begin"`` (the strategy of the paper's ref. [5],
            which Section 2.2 criticises): at the beginning of the basic
            block containing the missing reference — often too close to
            hide Λ.  Exists for the ablation benchmark.
    """

    max_insertions: int = 256
    require_effectiveness: bool = True
    require_wcet_nonincrease: bool = True
    require_miss_decrease: bool = True
    use_prefilter: bool = True
    verify_guarantee: bool = True
    base_address: int = 0
    max_evaluations: Optional[int] = None
    placement: str = "earliest-survivable"
    #: When the gate rejects a candidate, retry the insertion up to this
    #: many instruction slots later in the same block.  Rejections are
    #: usually relocation artefacts (the 4-byte shift re-aligns blocks
    #: unfavourably); a nearby slot often relocates benignly while still
    #: covering the latency.  Part of the paper's "iterative improvement
    #: as far as an improvement can be observed" reading.
    placement_retries: int = 2
    #: Analysis fidelity for the preliminary WCET analysis: ``True``
    #: includes the persistence domain (tighter modern baseline),
    #: ``False`` is the classic must/may baseline of the paper's era.
    with_persistence: bool = True
    #: Hybrid locking+prefetching ([16]/[2], the paper's planned
    #: extension): memory blocks pinned in locked ways.  They always
    #: hit, never disturb the unlocked ways, and are never prefetch
    #: targets; the cache configuration passed to :func:`optimize` must
    #: then be the reduced-way residual configuration (see
    #: :func:`repro.sim.locking.optimize_with_locking`).
    locked_blocks: frozenset = frozenset()
    #: Abstract-domain implementation for the preliminary analysis:
    #: ``"python"`` (the verified oracle), ``"vectorized"`` (the dense
    #: numpy kernel of :mod:`repro.cache.kernel`, proven bit-identical
    #: by the differential suite), or ``None`` to follow the
    #: ``REPRO_CACHE_KERNEL`` environment variable.
    kernel: Optional[str] = None
    #: Second-level cache of the memory hierarchy, as an
    #: ``assoc:block:capacity:latency`` spec (see
    #: :func:`repro.cache.config.parse_l2_spec`), or ``None`` for the
    #: classic single-level system.  With an L2 the analyses run the
    #: Hardy & Puaut per-level fixpoint, Λ shrinks for prefetches whose
    #: target is guaranteed L2-resident, and the timing model must carry
    #: ``l2_hit_penalty_cycles``.
    l2: Optional[str] = None
    #: Run the model-checking refinement (:mod:`repro.analysis.refine`)
    #: after classification: NOT_CLASSIFIED references decided by the
    #: bounded concrete-state exploration are promoted to
    #: always-hit/always-miss, tightening ``t_w`` and the L2 access
    #: plan.  Sound (Theorem 1 is preserved; the differential suite
    #: proves refined WCET <= unrefined) but opt-in: the exploration
    #: costs extra analysis time and ``False`` keeps every output
    #: byte-identical to the unrefined analysis.
    refine: bool = False

    def __post_init__(self) -> None:
        if self.placement not in ("earliest-survivable", "block-begin"):
            raise OptimizationError(
                f"unknown placement strategy {self.placement!r}"
            )
        if self.kernel is not None and self.kernel not in (
            "python", "vectorized"
        ):
            raise OptimizationError(
                f"unknown cache kernel {self.kernel!r}"
            )
        if self.l2 is not None:
            parse_l2_spec(self.l2)  # fail fast on a malformed spec


@dataclass
class InsertedPrefetch:
    """Record of one accepted insertion.

    Attributes:
        prefetch_uid: uid of the new prefetch instruction.
        target_uid: uid of the instruction whose block it loads.
        block_name: Block receiving the prefetch.
        index: Position within the block at insertion time.
        evictor_uid: Instruction whose access evicted the block
            (Property 3 detection site).
        miss_uid: The reference whose miss was precluded (``r_j``).
        terms: Criterion terms at decision time.
        rcost: Exact relocation cost (Eq. 8) measured by re-analysis.
        tau_before: τ_w before this insertion.
        tau_after: τ_w after this insertion.
        misses_before: Worst-case miss count before.
        misses_after: Worst-case miss count after.
    """

    prefetch_uid: int
    target_uid: int
    block_name: str
    index: int
    evictor_uid: int
    miss_uid: int
    terms: ProfitTerms
    rcost: float
    tau_before: float
    tau_after: float
    misses_before: int
    misses_after: int


@dataclass
class OptimizationReport:
    """Outcome of one :func:`optimize` run.

    All τ values are the memory system's contribution to the WCET.
    """

    program: str
    config: CacheConfig
    timing: TimingModel
    tau_original: float
    tau_final: float
    misses_original: int
    misses_final: int
    static_instructions_original: int
    static_instructions_final: int
    inserted: List[InsertedPrefetch] = field(default_factory=list)
    candidates_evaluated: int = 0
    candidates_rejected: int = 0
    passes: int = 0
    #: Snapshot of the analysis pipeline's cache counters at the end of
    #: the run (cumulative over the pipeline's lifetime when a shared
    #: pipeline was passed in).  Deterministic; serialized in reports.
    pipeline: Dict[str, int] = field(default_factory=dict)
    #: Per-stage wall-clock seconds (``repro optimize --profile``).
    #: Machine-dependent, therefore excluded from equality and never
    #: serialized.
    profile: Optional[Dict[str, float]] = field(default=None, compare=False)

    @property
    def prefetch_count(self) -> int:
        """Number of accepted prefetches."""
        return len(self.inserted)

    @property
    def wcet_reduction(self) -> float:
        """Relative τ_w reduction: ``1 - τ_final / τ_original``."""
        if self.tau_original == 0:
            return 0.0
        return 1.0 - self.tau_final / self.tau_original

    @property
    def miss_reduction(self) -> float:
        """Relative worst-case miss reduction."""
        if self.misses_original == 0:
            return 0.0
        return 1.0 - self.misses_final / self.misses_original

    @property
    def instruction_overhead(self) -> float:
        """Static instruction growth, Fig. 8's metric at the static level."""
        if self.static_instructions_original == 0:
            return 0.0
        return (
            self.static_instructions_final / self.static_instructions_original
            - 1.0
        )


def optimize(
    cfg: ControlFlowGraph,
    config: CacheConfig,
    timing: TimingModel,
    options: Optional[OptimizerOptions] = None,
    inplace: bool = False,
    pipeline: Optional[AnalysisPipeline] = None,
) -> Tuple[ControlFlowGraph, OptimizationReport]:
    """Run the paper's optimization on a program.

    Args:
        cfg: The program (must be prefetch-free unless resuming).
        config: Cache configuration to optimize for.
        timing: Timing model (from the energy model of the target
            technology).
        options: Gates and limits; defaults to the paper's setting.
        inplace: Mutate ``cfg`` instead of working on a clone.
        pipeline: Optionally share an
            :class:`~repro.analysis.pipeline.AnalysisPipeline` (e.g. one
            per use case, so the measure/optimize/measure phases reuse
            each other's artifacts).  Must agree with ``config``,
            ``timing`` and ``options``; by default a fresh one is built.

    Returns:
        ``(optimized_program, report)``.  The optimized program is
        prefetch-equivalent to the input (Definition 5) and satisfies
        ``τ_w(optimized) <= τ_w(input)`` (Theorem 1) unless the
        corresponding gates were disabled.
    """
    opts = options or OptimizerOptions()
    work = cfg if inplace else cfg.clone()

    if pipeline is None:
        pipeline = AnalysisPipeline.for_options(config, timing, opts)
    elif (
        pipeline.config != config
        or pipeline.timing != timing
        or not pipeline.matches_options(opts)
    ):
        raise OptimizationError(
            "shared analysis pipeline disagrees with the optimizer's "
            "config/timing/options"
        )

    base = pipeline.analyze(work, with_may=False)
    report = OptimizationReport(
        program=work.name,
        config=config,
        timing=timing,
        tau_original=base.wcet.tau_w,
        tau_final=base.wcet.tau_w,
        misses_original=base.wcet.wcet_path_misses,
        misses_final=base.wcet.wcet_path_misses,
        static_instructions_original=work.instruction_count,
        static_instructions_final=work.instruction_count,
    )

    rejected: Set[Tuple] = set()
    while len(report.inserted) < opts.max_insertions:
        report.passes += 1
        accepted = _run_pass(work, timing, opts, pipeline, base, rejected, report)
        if accepted is None:
            break
        base = accepted

    report.tau_final = base.wcet.tau_w
    report.misses_final = base.wcet.wcet_path_misses
    report.static_instructions_final = work.instruction_count
    report.pipeline = pipeline.stats.counters()
    report.profile = pipeline.stats.profile()

    if opts.verify_guarantee and opts.require_wcet_nonincrease:
        if report.tau_final > report.tau_original + TAU_EPSILON:
            raise GuaranteeViolation(
                f"Theorem 1 violated: τ_w grew from {report.tau_original} "
                f"to {report.tau_final}"
            )
    return work, report


def _run_pass(
    work: ControlFlowGraph,
    timing: TimingModel,
    opts: OptimizerOptions,
    pipeline: AnalysisPipeline,
    base: PipelineResult,
    rejected: Set[Tuple],
    report: OptimizationReport,
) -> Optional[PipelineResult]:
    """One reverse walk; returns the accepted candidate's analysis.

    The per-pass artifacts — reverse events, miss uses, execution
    counts, loop ranges — all come (cached) from ``base``; candidate
    evaluations delta-analyse against ``base`` so only the suffix behind
    the insertion point is recomputed.
    """
    acfg = base.acfg
    wcet = base.wcet
    events = base.reverse_events()
    uses_by_block = base.miss_uses()
    exec_count_by_uid = base.exec_counts()
    loop_ranges = base.loop_ranges()

    for event in events:
        located = _locate_candidate(
            acfg, wcet, event, uses_by_block, loop_ranges, opts
        )
        if located is None:
            continue
        key, point, miss_rid, wrap_join, price_anchor = located
        if key in rejected:
            continue
        terms = _price_candidate(
            acfg, wcet, timing, price_anchor, miss_rid, wrap_join,
            loop_ranges, exec_count_by_uid,
        )
        miss_vertex = acfg.vertex(miss_rid)
        assert miss_vertex.instr is not None
        if opts.require_effectiveness and not terms.effective:
            rejected.add(key)
            continue
        if opts.use_prefilter and not terms.profitable:
            rejected.add(key)
            continue
        # Evaluate the candidate point and, on rejection, a few slots
        # further down the block (rejections are mostly relocation
        # artefacts of the exact byte position).
        accepted = None
        block_len = len(work.block(point.block_name).instructions)
        for offset in range(opts.placement_retries + 1):
            index = point.index + offset
            if index > block_len:
                break
            if (
                opts.max_evaluations is not None
                and report.candidates_evaluated >= opts.max_evaluations
            ):
                return None  # budget exhausted: end the search
            report.candidates_evaluated += 1
            prefetch = work.insert_prefetch(
                point.block_name, index, miss_vertex.instr.uid
            )
            candidate = pipeline.analyze(work, with_may=False, base=base)
            new_wcet = candidate.wcet
            ok = True
            if (
                opts.require_wcet_nonincrease
                and new_wcet.tau_w > wcet.tau_w + TAU_EPSILON
            ):
                ok = False
            if (
                opts.require_miss_decrease
                and new_wcet.wcet_path_misses >= wcet.wcet_path_misses
            ):
                ok = False
            # Note: lateness of earlier prefetches eroded by this
            # insertion needs no extra gate — analyze_wcet's
            # prefetch-latency guard charges any hit closer than Λ
            # behind a prefetch the full miss latency, so erosion shows
            # up in new_wcet.tau_w directly.
            if ok:
                accepted = (prefetch, candidate, index)
                break
            work.remove_prefetch(prefetch.uid)
            report.candidates_rejected += 1
        if accepted is None:
            rejected.add(key)
            continue
        prefetch, candidate, chosen_index = accepted
        new_wcet = candidate.wcet
        point = InsertionPoint(point.block_name, chosen_index)

        evictor = acfg.vertex(event.insert_after_rid)
        evictor_uid = evictor.instr.uid if evictor.instr is not None else -1
        report.inserted.append(
            InsertedPrefetch(
                prefetch_uid=prefetch.uid,
                target_uid=miss_vertex.instr.uid,
                block_name=point.block_name,
                index=point.index,
                evictor_uid=evictor_uid,
                miss_uid=miss_vertex.instr.uid,
                terms=terms,
                rcost=relocation_cost(
                    wcet, new_wcet, prefetch.uid, miss_vertex.instr.uid
                ),
                tau_before=wcet.tau_w,
                tau_after=new_wcet.tau_w,
                misses_before=wcet.wcet_path_misses,
                misses_after=new_wcet.wcet_path_misses,
            )
        )
        return candidate
    return None


def _locate_candidate(
    acfg: ACFG,
    wcet: WCETResult,
    event: PrefetchCandidateEvent,
    uses_by_block: Dict[int, List[int]],
    loop_ranges: Dict[int, Tuple[int, Tuple[int, ...]]],
    opts: OptimizerOptions,
) -> Optional[Tuple[Tuple, InsertionPoint, int, int, int]]:
    """Cheap half of candidate construction: find the precluded miss.

    The event already names the earliest survivable insertion point;
    this locates the dropped block's next on-path non-hit use —
    downstream for straight-line events, circularly (through the back
    edge) for wrapped events — and builds the memo key.  No slack or
    profit is computed here, so rejected candidates cost one bisect per
    pass.

    Returns:
        ``(key, point, miss_rid, wrap_join_rid)`` with ``wrap_join_rid
        == -1`` for non-circular reuse, or ``None``.
    """
    uses = uses_by_block.get(event.dropped_block)
    if not uses:
        return None
    if event.insert_after_rid == acfg.source:
        # Cold-miss candidate: the prefetch opens the program.
        point = InsertionPoint(acfg.cfg.blocks[0].name, 0)
        anchor_uid: int = -1
        anchor_ctx: Tuple = ()
    else:
        anchor = acfg.vertex(event.insert_after_rid)
        assert anchor.instr is not None
        maybe_point = insertion_point_after(acfg, event.insert_after_rid)
        if maybe_point is None:
            return None
        point = maybe_point
        anchor_uid, anchor_ctx = anchor.instr.uid, anchor.context

    miss_rid: Optional[int] = None
    wrap_join = -1
    pos = bisect.bisect_right(uses, event.insert_after_rid)
    if not event.wrapped:
        if pos < len(uses):
            miss_rid = uses[pos]
    else:
        join_rid = event.loop_join_rid
        last_rid, _ = loop_ranges[join_rid]
        # Circularly-next use: rest of this iteration first, then the
        # top of the body (reached through the back edge).
        if pos < len(uses) and uses[pos] <= last_rid:
            miss_rid = uses[pos]
        else:
            lo = bisect.bisect_left(uses, join_rid)
            if lo < len(uses) and uses[lo] <= event.insert_after_rid:
                miss_rid = uses[lo]
                wrap_join = join_rid
    if miss_rid is None:
        return None
    miss_vertex = acfg.vertex(miss_rid)
    assert miss_vertex.instr is not None
    price_anchor = event.insert_after_rid
    if opts.placement == "block-begin":
        # The strategy of ref. [5]: the prefetch opens the basic block
        # containing the missing reference.
        assert miss_vertex.block_name is not None
        point = InsertionPoint(miss_vertex.block_name, 0)
        wrap_join = -1
        block = acfg.cfg.block(miss_vertex.block_name)
        first_rid = acfg.by_key(block.instructions[0].uid, miss_vertex.context)
        price_anchor = first_rid if first_rid is not None else miss_rid
        anchor_uid = block.instructions[0].uid
        anchor_ctx = miss_vertex.context
    key = (anchor_uid, anchor_ctx, miss_vertex.instr.uid, miss_vertex.context)
    return key, point, miss_rid, wrap_join, price_anchor


def _price_candidate(
    acfg: ACFG,
    wcet: WCETResult,
    timing: TimingModel,
    anchor_rid: int,
    miss_rid: int,
    wrap_join: int,
    loop_ranges: Dict[int, Tuple[int, Tuple[int, ...]]],
    exec_count_by_uid: Dict[int, int],
) -> ProfitTerms:
    """Expensive half: Eq. 5 slack and the Eq. 9 profit terms."""
    slack: Optional[float] = None
    if wrap_join >= 0:
        _, exit_rids = loop_ranges[wrap_join]
        slack = wraparound_slack(
            acfg, wcet.t_w, anchor_rid, miss_rid, wrap_join, exit_rids
        )
    elif anchor_rid >= miss_rid:
        slack = 0.0  # block-begin placement right at (or past) the use
    # A persistent (first-miss) reference pays one real miss regardless
    # of its execution count.
    if wcet.cache.classification(miss_rid) is Classification.PERSISTENT:
        n_miss = 1
    else:
        n_miss = wcet.n_w(miss_rid)
    anchor = acfg.vertex(anchor_rid)
    anchor_uid = anchor.instr.uid if anchor.instr is not None else -1
    mcost: Optional[float] = None
    latency: Optional[float] = None
    if timing.l2_hit_penalty_cycles is not None:
        # Multi-level: credit the precluded miss at what it costs on the
        # worst-case path (an L2-guaranteed hit saves only the L2
        # penalty, not the full DRAM one), and use the per-prefetch Λ —
        # it shrinks to the L2 penalty when the target is guaranteed
        # L2-resident at the insertion point.
        mcost = float(wcet.t_w[miss_rid]) - float(timing.hit_cycles)
        latency = float(
            prefetch_lambda(
                wcet.cache, timing, anchor_rid, acfg.block_of(miss_rid)
            )
        )
    return estimate_profit(
        acfg,
        wcet.t_w,
        timing,
        insert_after_rid=anchor_rid,
        miss_rid=miss_rid,
        n_miss=n_miss,
        n_insert=exec_count_by_uid.get(anchor_uid, 1),
        slack=slack,
        mcost=mcost,
        latency=latency,
    )


