"""The paper's contribution: WCET-safe prefetch insertion.

Entry point::

    from repro.core import optimize, OptimizerOptions

    optimized, report = optimize(cfg, cache_config, timing)
    assert report.tau_final <= report.tau_original        # Theorem 1
"""

from repro.core.guarantees import (
    GuaranteeCheck,
    find_undercharged_references,
    verify_effectiveness,
    verify_miss_reduction,
    verify_prefetch_equivalence,
    verify_wcet_guarantee,
)
from repro.core.join import select_join_predecessor
from repro.core.optimizer import (
    InsertedPrefetch,
    OptimizationReport,
    OptimizerOptions,
    TAU_EPSILON,
    optimize,
)
from repro.core.profit import ProfitTerms, estimate_profit, min_path_slack
from repro.core.relocation import (
    InsertionPoint,
    insertion_point_after,
    moved_blocks,
    relocation_cost,
)
from repro.core.update import (
    EvictionEvent,
    PrefetchCandidateEvent,
    apply_update,
    collect_optimization_states,
    collect_reverse_events,
)

__all__ = [
    "EvictionEvent",
    "PrefetchCandidateEvent",
    "collect_reverse_events",
    "find_undercharged_references",
    "GuaranteeCheck",
    "InsertedPrefetch",
    "InsertionPoint",
    "OptimizationReport",
    "OptimizerOptions",
    "ProfitTerms",
    "TAU_EPSILON",
    "apply_update",
    "collect_optimization_states",
    "estimate_profit",
    "insertion_point_after",
    "min_path_slack",
    "moved_blocks",
    "optimize",
    "relocation_cost",
    "select_join_predecessor",
    "verify_effectiveness",
    "verify_miss_reduction",
    "verify_prefetch_equivalence",
    "verify_wcet_guarantee",
]
