"""The prefetching update function ``Û_e`` (Algorithm 1, Figure 1).

Two walks implement the paper's novel static analysis:

**Reverse analysis** (:func:`collect_reverse_events`) — Algorithm 3's
core.  Visiting references from sink to source while applying the LRU
update turns the abstract state into a *next-use working set*: the
blocks of each cache set that will be referenced soonest, ordered by
how soon.  When visiting ``r_i`` pushes a block ``s'`` out of that set
(Property 3 applied to successive reverse states), the program point
``(r_i, r_{i+1})`` is the **earliest point from which a prefetched
``s'`` is guaranteed to survive until its next use** — go any earlier
and ``r_i`` itself is one competitor too many for the set's
associativity.  Earliest-survivable maximises the slack available to
hide the prefetch latency Λ, which is exactly why the paper walks the
program backwards.

Loop ``REST`` instances get a *virtual second pass*: after the main
walk leaves a REST entry join, the instance's body is replayed once
more in reverse from the accumulated state, so loop-carried reuse (the
dominant conflict-miss pattern) produces wrap-around candidates.

**Forward replay** (:func:`collect_optimization_states`) — the forward
state evolution along the WCET path with ``J_SE`` joins
(:mod:`repro.core.join`), matching the states displayed in the paper's
Figure 1/2 walkthrough; used by tests, examples, and diagnostics.

A software prefetch vertex updates the state twice (its own fetch and
the block it loads) in both directions, which realises Algorithm 1's
recursive self-application (line 9: an inserted prefetch is itself
visited and may spawn further candidates on the next pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.structural import PathSolution
from repro.cache.abstract import MustState
from repro.cache.config import CacheConfig
from repro.core.join import select_join_predecessor
from repro.errors import OptimizationError
from repro.program.acfg import ACFG, VertexKind


@dataclass(frozen=True)
class EvictionEvent:
    """A replacement detected by Property 3 (forward replay)."""

    evictor_rid: int
    evicted_block: int
    by_prefetch_fill: bool = False


@dataclass(frozen=True)
class PrefetchCandidateEvent:
    """A working-set drop found by the reverse analysis.

    Attributes:
        insert_after_rid: The visited reference ``r_i``; the prefetch
            goes at program point ``(r_i, r_{i+1})`` — the earliest
            survivable insertion point for the dropped block.
        dropped_block: The memory block that left the next-use working
            set (it *will* be referenced downstream — blocks only enter
            the reverse state by being referenced).
        wrapped: True when found during a REST instance's virtual second
            pass, i.e. the reuse is loop-carried (next iteration).
        loop_join_rid: For wrapped events, the REST entry join of the
            instance; ``-1`` otherwise.
    """

    insert_after_rid: int
    dropped_block: int
    wrapped: bool = False
    loop_join_rid: int = -1


def apply_update(
    state: MustState, acfg: ACFG, rid: int
) -> Tuple[MustState, List[EvictionEvent]]:
    """Update the optimization state through one vertex.

    Returns:
        The out-state and the replacements the access caused.
    """
    vertex = acfg.vertex(rid)
    if not vertex.is_ref:
        return state, []
    events: List[EvictionEvent] = []
    own_block = acfg.block_of(rid)
    for evicted in sorted(state.evicted_by(own_block)):
        events.append(EvictionEvent(rid, evicted, by_prefetch_fill=False))
    state = state.update(own_block)
    if vertex.is_prefetch:
        target = acfg.target_block_or_none(rid)
        if target is not None:
            for evicted in sorted(state.evicted_by(target)):
                events.append(
                    EvictionEvent(rid, evicted, by_prefetch_fill=True)
                )
            state = state.update(target)
    return state, events


def _reverse_update(
    state: MustState, acfg: ACFG, rid: int, locked: frozenset
) -> Tuple[MustState, List[int]]:
    """Process one vertex of the *reverse* stream.

    A forward vertex touches ``own_block`` then (for a prefetch) its
    target; the reverse stream therefore applies the target first.
    Blocks pinned in locked ways never enter the working set.
    Returns the new state and the blocks dropped from the working set.
    """
    vertex = acfg.vertex(rid)
    if not vertex.is_ref:
        return state, []
    dropped: List[int] = []
    if vertex.is_prefetch:
        target = acfg.target_block_or_none(rid)
        if target is not None and target not in locked:
            dropped.extend(sorted(state.evicted_by(target)))
            state = state.update(target)
    own_block = acfg.block_of(rid)
    if own_block not in locked:
        dropped.extend(sorted(state.evicted_by(own_block)))
        state = state.update(own_block)
    return state, dropped


def collect_reverse_events(
    acfg: ACFG,
    config: CacheConfig,
    solution: PathSolution,
    locked_blocks: Optional[frozenset] = None,
) -> List[PrefetchCandidateEvent]:
    """Algorithm 3's reverse walk: find every prefetch-candidate point.

    Visits vertices sink→source maintaining the next-use working set;
    at branch vertices (several forward successors) the state of the
    WCET-path successor is kept — the reverse counterpart of ``J_SE``.
    Each loop REST instance additionally gets one virtual extra reverse
    pass over its body to expose loop-carried reuse.

    Returns:
        Candidate events in detection (reverse-execution) order.
    """
    n = len(acfg.vertices)
    locked = locked_blocks or frozenset()
    rev_states: List[Optional[MustState]] = [None] * n
    events: List[PrefetchCandidateEvent] = []
    rest_spans = _rest_instance_spans(acfg)

    for vertex in acfg.iter_reverse():
        rid = vertex.rid
        if vertex.kind is VertexKind.SINK:
            incoming: MustState = MustState(config)
        else:
            succs = acfg.successors(rid)
            if not succs:
                raise OptimizationError(f"vertex {rid} has no successors")
            chosen = _pick_reverse_successor(acfg, solution, succs)
            picked = rev_states[chosen]
            if picked is None:
                raise OptimizationError(
                    f"vertex {rid}: successor {chosen} not yet processed"
                )
            incoming = picked
        state, dropped = _reverse_update(incoming, acfg, rid, locked)
        rev_states[rid] = state
        for block in dropped:
            events.append(PrefetchCandidateEvent(rid, block))
        if rid in rest_spans:
            # Virtual second iteration of this REST instance: replay the
            # body in reverse from the accumulated state so that blocks
            # competing across the back edge surface as candidates.
            last_rid = rest_spans[rid]
            wrap_state = state
            for wrap_rid in range(last_rid, rid, -1):
                wrap_vertex = acfg.vertex(wrap_rid)
                if not wrap_vertex.is_ref:
                    continue
                if solution.n_w[wrap_rid] == 0:
                    continue
                wrap_state, wrap_dropped = _reverse_update(
                    wrap_state, acfg, wrap_rid, locked
                )
                for block in wrap_dropped:
                    events.append(
                        PrefetchCandidateEvent(
                            wrap_rid, block, wrapped=True, loop_join_rid=rid
                        )
                    )

    # Blocks surviving to the source never lose the working-set
    # competition: their first use misses only because the cache starts
    # invalid.  Each is a candidate for a start-of-program prefetch (a
    # cold-miss preclusion), anchored at the source pole.
    residual = rev_states[acfg.source]
    if residual is not None:
        ordered = sorted(
            residual.blocks(), key=lambda blk: (residual.age_of(blk), blk)
        )
        for block in ordered:
            events.append(PrefetchCandidateEvent(acfg.source, block))
    return events


def _pick_reverse_successor(acfg: ACFG, solution: PathSolution, succs) -> int:
    """Reverse ``J_SE``: prefer the forward successor on the WCET path."""
    on_path = [s for s in succs if solution.on_path[s]]
    if on_path:
        return min(on_path)
    return min(succs, key=lambda s: (-acfg.multiplier[s], s))


def _rest_instance_spans(acfg: ACFG) -> dict:
    """REST entry join rid -> last rid of the instance's body."""
    spans: dict = {}
    for src, dst in acfg.back_edges:
        spans[dst] = max(spans.get(dst, dst), src)
    return spans


def collect_optimization_states(
    acfg: ACFG,
    config: CacheConfig,
    solution: PathSolution,
) -> Tuple[List[Optional[MustState]], List[EvictionEvent]]:
    """Forward walk of the whole ACFG with ``Û_e``/``J_SE`` semantics.

    Args:
        acfg: The program's ACFG.
        config: Cache configuration.
        solution: WCET path solution driving the ``J_SE`` joins.

    Returns:
        ``(in_states, events)`` — the optimization in-state per vertex
        (the state *before* the vertex's own accesses) and every
        replacement event, in topological (execution) order.  Iterating
        ``reversed(events)`` yields Algorithm 3's reverse visiting order.
    """
    n = len(acfg.vertices)
    in_states: List[Optional[MustState]] = [None] * n
    out_states: List[Optional[MustState]] = [None] * n
    events: List[EvictionEvent] = []
    for vertex in acfg.iter_topological():
        rid = vertex.rid
        if vertex.kind is VertexKind.SOURCE:
            in_state: MustState = MustState(config)
        elif vertex.kind is VertexKind.JOIN:
            chosen = select_join_predecessor(acfg, solution, rid)
            picked = out_states[chosen]
            if picked is None:
                raise OptimizationError(
                    f"JOIN {rid}: predecessor {chosen} has no state"
                )
            in_state = picked
        else:
            preds = acfg.predecessors(rid)
            if len(preds) != 1:
                raise OptimizationError(
                    f"REF/SINK vertex {rid} expected one predecessor, "
                    f"got {len(preds)}"
                )
            picked = out_states[preds[0]]
            if picked is None:
                raise OptimizationError(f"vertex {rid}: predecessor state missing")
            in_state = picked
        in_states[rid] = in_state
        out_state, vertex_events = apply_update(in_state, acfg, rid)
        out_states[rid] = out_state
        events.extend(vertex_events)
    return in_states, events
