"""Model-checking refinement of ``NOT_CLASSIFIED`` references.

The must/may abstract interpretation (:mod:`repro.cache.classify`)
leaves a reference ``NOT_CLASSIFIED`` whenever neither domain can prove
it: the joins lose correlations between block ages and paths, and WCET
analysis must then assume a miss on every execution.  Touzeau et al.
("Model Checking of Cache for WCET Analysis Refinement") showed these
uncertain references can be decided *exactly* by a focused search of
the reachable states of the CFG x concrete-cache product: if the block
is cached in every reachable state entering the reference, it is an
always-hit; if in none, an always-miss.

This module implements that refinement over the ACFG, reusing
:class:`repro.cache.concrete.ConcreteCache` — the executable ground
truth the differential test layer already checks the abstract analysis
against — as the transition relation.

Design notes:

* **Per-set decomposition.**  LRU sets are independent: an access
  touches only the set its block maps to, so the joint reachable cache
  states project *exactly* onto per-set reachable line sets, and block
  presence (all classification needs) is a per-set property.  Each
  cache set is therefore explored separately, which keeps the visited
  sets exponentially smaller than the joint product while losing no
  precision.

* **State canonicalization.**  A concrete per-set state is canonically
  the MRU-first tuple of cached block ids (exactly
  :meth:`ConcreteCache.set_contents`); the visited sets hash these
  tuples directly.  Transitions are memoized on ``(line, ops)``.

* **Exploration budget.**  The reachable state space is finite but can
  be exponential in pathological programs.  A budget bounds the number
  of newly-reached ``(vertex, line)`` pairs summed over all sets;
  exploration of a set that would exceed it is abandoned and every
  reference mapping to an unexplored set simply *stays*
  ``NOT_CLASSIFIED`` — the sound fallback (the unrefined classification
  is already sound).  Completed sets are kept: their fixpoints do not
  depend on the abandoned ones.

* **Soundness.**  The exploration runs over the same ACFG (same VIVU
  contexts, same analysis-only back edges, same instruction-fetch
  access plan as :func:`repro.cache.classify.propagate`'s default) that
  the abstract domains use, so its reachable-state collecting semantics
  over-approximates exactly the set of concrete executions Theorem 1
  quantifies over.  ``NC -> AH`` (block present in *all* reachable
  in-states) can only lower per-reference worst-case times;
  ``NC -> AM`` never changes them (both are charged the miss latency);
  and ``NC -> PS`` (block present in *some* in-states and never evicted
  by any reachable transition of its set) replaces per-execution miss
  charges with the hit latency plus the per-block one-time first-miss
  penalty — the block is installed by its first miss and, being
  eviction-free, stays resident, so it misses at most once per run,
  which is exactly what :class:`~repro.cache.classify.Classification`'s
  ``PERSISTENT`` charging assumes.  Hence refined WCET <= unrefined
  WCET, and every promotion agrees with exhaustive concrete simulation
  (enforced by tests/test_refine.py).  ``PS`` promotions are only
  emitted for single-level analyses: with a second level the one-time
  penalty is charged at the DRAM rate while the unrefined bound may
  already charge the reference only the L2 service time, so the
  promotion could loosen the bound (callers gate it via
  ``persistence=False``).

* **Warm start.**  Like the abstract fixpoints, a re-analysis may copy
  the per-vertex line sets below a divergence boundary from a base
  exploration — sound under the pipeline's back-edge boundary closure.
  The pipeline additionally verifies that the *applied* prefix
  classifications match the base run before reusing any downstream
  warm-start state (a budget flip may change refinement outcomes
  without changing the prefix equations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cache.classify import Classification, classification_rank
from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.errors import AnalysisError
from repro.program.acfg import ACFG

#: Default bound on newly-reached ``(vertex, line)`` expansions summed
#: over all cache sets.  Generous for the paper's benchmark sizes;
#: exhaustion is sound (affected references stay ``NOT_CLASSIFIED``).
DEFAULT_BUDGET = 200_000

#: Hard cap on fixpoint passes per cache set.  Unlike the abstract
#: lattices (height bounded by associativity x blocks), the concrete
#: visited sets can deepen by one state per loop closure, so this is
#: deliberately far above :data:`repro.cache.classify.MAX_FIXPOINT_PASSES`;
#: hitting it is treated like budget exhaustion, not a bug.
MAX_EXPLORATION_PASSES = 4096

#: One canonical per-set concrete state: cached block ids, MRU first
#: (the tuple :meth:`ConcreteCache.set_contents` returns).
LineKey = Tuple[int, ...]

#: The visited set of one vertex: every reachable canonical line.
LineSet = FrozenSet[LineKey]


@dataclass
class SetExploration:
    """Converged reachable line sets of one cache set, per vertex.

    ``None`` entries are vertices the exploration never reached (no
    concrete path, matching the abstract domains' unreachable states).
    ``plan`` is the per-vertex op tuple the transitions replayed — kept
    so :func:`refine_classifications` can re-walk every reachable
    transition op by op for the eviction-freedom (persistence) check.
    """

    in_lines: List[Optional[LineSet]]
    out_lines: List[Optional[LineSet]]
    plan: List[Optional[Tuple[Tuple[str, int], ...]]] = field(
        default_factory=list
    )


@dataclass
class RefinementResult:
    """Outcome of one bounded concrete-state exploration.

    The exploration is classification-independent (it walks the same
    default access plan for every run over the same ACFG), so one
    result serves any classification produced for the same
    ``(acfg, config, locked_blocks)`` — promotions are extracted per
    classification by :func:`refine_classifications`.

    Attributes:
        config: Cache configuration explored (defines the set mapping).
        per_set: Completed explorations keyed by cache-set index.  Sets
            abandoned on budget exhaustion are absent; references
            mapping to them keep their unrefined classification.
        explored: Newly-reached ``(vertex, line)`` pairs charged against
            the budget, summed over all sets (including abandoned ones).
        exhausted: True when at least one set was abandoned.
    """

    config: CacheConfig
    per_set: Dict[int, SetExploration] = field(default_factory=dict)
    explored: int = 0
    exhausted: bool = False


def _transition(
    config: CacheConfig,
    set_index: int,
    line: LineKey,
    ops: Tuple[Tuple[str, int], ...],
    memo: Dict[Tuple[LineKey, tuple], LineKey],
) -> LineKey:
    """Apply one vertex's accesses to one canonical line.

    The concrete cache itself is the transition relation: the line is
    rebuilt in a fresh :class:`ConcreteCache` (installing LRU-first
    reproduces the MRU order exactly) and the vertex's demand accesses
    and prefetch installs are replayed through the public API.
    """
    key = (line, ops)
    cached = memo.get(key)
    if cached is not None:
        return cached
    cache = ConcreteCache(config)
    for block in reversed(line):
        cache.install(block)
    for kind, block in ops:
        if kind == "access":
            cache.access(block)
        else:
            cache.install(block)
    result = cache.set_contents(set_index)
    memo[key] = result
    return result


def _explore_set(
    acfg: ACFG,
    config: CacheConfig,
    set_index: int,
    plan: List[Optional[Tuple[Tuple[str, int], ...]]],
    preds: List[tuple],
    back_by_target: Dict[int, List[int]],
    memo: Dict[Tuple[LineKey, tuple], LineKey],
    counters: Dict[str, int],
    warm: Optional[Tuple[int, SetExploration]],
) -> Optional[SetExploration]:
    """Reachable-line fixpoint of one cache set over the ACFG.

    Mirrors :func:`repro.cache.classify.propagate`: pass 1 is a full
    topological sweep, later passes re-process only vertices whose
    forward or back-edge inputs changed; the join is set union and the
    source enters with the empty (all-invalid) line.

    Returns ``None`` when the budget (or the pass cap) was exceeded.
    """
    n = len(acfg.vertices)
    in_lines: List[Optional[LineSet]] = [None] * n
    out_lines: List[Optional[LineSet]] = [None] * n
    start = 0
    if warm is not None:
        boundary, base = warm
        if 0 < boundary <= n and len(base.in_lines) >= boundary and len(
            base.out_lines
        ) >= boundary:
            in_lines[:boundary] = base.in_lines[:boundary]
            out_lines[:boundary] = base.out_lines[:boundary]
            start = boundary

    source = acfg.source
    initial: LineSet = frozenset({()})
    back_src_changed: Dict[int, bool] = {}

    for pass_count in range(1, MAX_EXPLORATION_PASSES + 1):
        changed = [False] * n
        any_changed = False
        first_pass = pass_count == 1
        for rid in range(start, n):
            if not first_pass:
                need = any(changed[p] for p in preds[rid]) or any(
                    back_src_changed.get(src, False)
                    for src in back_by_target.get(rid, ())
                )
                if not need:
                    continue
            if rid == source:
                new_in: LineSet = initial
            else:
                contributions = [
                    out_lines[p] for p in preds[rid] if out_lines[p] is not None
                ]
                for src in back_by_target.get(rid, ()):
                    if out_lines[src] is not None:
                        contributions.append(out_lines[src])
                if not contributions:
                    continue  # unreachable this pass (back edge pending)
                new_in = contributions[0]
                for extra in contributions[1:]:
                    new_in = new_in | extra
            if new_in == in_lines[rid]:
                continue  # inputs re-joined to the same visited set
            ops = plan[rid]
            if ops is None:
                new_out = new_in
            else:
                fresh = (
                    len(new_in)
                    if in_lines[rid] is None
                    else len(new_in - in_lines[rid])
                )
                counters["explored"] += fresh
                if counters["explored"] > counters["budget"]:
                    return None
                new_out = frozenset(
                    _transition(config, set_index, line, ops, memo)
                    for line in new_in
                )
            in_lines[rid] = new_in
            any_changed = True
            if new_out != out_lines[rid]:
                changed[rid] = True
                out_lines[rid] = new_out
        back_src_changed = {src: changed[src] for src, _ in acfg.back_edges}
        if not any_changed:
            return SetExploration(in_lines, out_lines, plan)
    return None  # pass cap: treat like budget exhaustion (sound)


def explore_concrete_states(
    acfg: ACFG,
    config: CacheConfig,
    locked_blocks: Optional[frozenset] = None,
    budget: Optional[int] = None,
    warm: Optional[Tuple[int, "RefinementResult"]] = None,
) -> RefinementResult:
    """Bounded exploration of the ACFG x concrete-cache product.

    Args:
        acfg: The program's ACFG.
        config: L1 cache configuration (defines the set mapping the
            per-set decomposition uses).
        locked_blocks: Blocks pinned in locked ways; like the abstract
            plan, their accesses never touch the explored LRU state.
        budget: Cap on newly-reached ``(vertex, line)`` pairs across all
            sets (:data:`DEFAULT_BUDGET` when ``None``).
        warm: Optional ``(boundary, base_result)`` warm start: per-set
            line sets of every vertex below ``boundary`` are copied from
            the base exploration.  Only sound when the caller has proven
            the prefix equations unchanged (the pipeline's divergence
            boundary closure); only completed base sets are reused.

    Returns:
        A :class:`RefinementResult`; on budget exhaustion ``exhausted``
        is set and the abandoned sets are simply absent from
        ``per_set`` (their references keep the unrefined labels).
    """
    if budget is None:
        budget = DEFAULT_BUDGET
    locked = locked_blocks or frozenset()
    n = len(acfg.vertices)

    # The default instruction-fetch access plan of propagate() — own
    # block, then a prefetch's target — split by the cache set each
    # block maps to.  Ops touching different sets commute, and within a
    # set the plan preserves program order.
    plans: Dict[int, List[Optional[Tuple[Tuple[str, int], ...]]]] = {}

    def _add_op(index: int, rid: int, op: Tuple[str, int]) -> None:
        plan = plans.setdefault(index, [None] * n)
        existing = plan[rid]
        plan[rid] = (op,) if existing is None else existing + (op,)

    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        own = acfg.block_of(rid)
        if own not in locked:
            _add_op(config.set_index(own), rid, ("access", own))
        target = acfg.target_block_or_none(rid)
        if target is not None and target not in locked:
            _add_op(config.set_index(target), rid, ("install", target))

    preds = [acfg.predecessors(rid) for rid in range(n)]
    back_by_target: Dict[int, List[int]] = {}
    for src, dst in acfg.back_edges:
        back_by_target.setdefault(dst, []).append(src)

    memo: Dict[Tuple[LineKey, tuple], LineKey] = {}
    counters = {"explored": 0, "budget": budget}
    result = RefinementResult(config=config)
    for set_index in sorted(plans):
        warm_entry = None
        if warm is not None:
            boundary, base = warm
            base_set = base.per_set.get(set_index)
            if base_set is not None:
                warm_entry = (boundary, base_set)
        exploration = _explore_set(
            acfg,
            config,
            set_index,
            plans[set_index],
            preds,
            back_by_target,
            memo,
            counters,
            warm_entry,
        )
        if exploration is None:
            result.exhausted = True
        else:
            result.per_set[set_index] = exploration
    result.explored = counters["explored"]
    return result


def _evicted_blocks(
    config: CacheConfig, set_index: int, per_set: SetExploration
) -> FrozenSet[int]:
    """Blocks some reachable transition of the set can evict.

    Re-walks every reachable ``(in-line, vertex ops)`` pair op by op —
    a block present before an op and absent after it was evicted by
    that op.  The op granularity matters: a vertex whose access
    installs a block and whose prefetch-install then evicts it again
    would look eviction-free at transition endpoints.
    """
    evicted: set = set()
    memo: Dict[Tuple[LineKey, tuple], FrozenSet[int]] = {}
    for rid, ops in enumerate(per_set.plan):
        if ops is None:
            continue
        lines = per_set.in_lines[rid]
        if not lines:
            continue
        for line in lines:
            key = (line, ops)
            lost = memo.get(key)
            if lost is None:
                cache = ConcreteCache(config)
                for block in reversed(line):
                    cache.install(block)
                previous = frozenset(line)
                losses: set = set()
                for kind, block in ops:
                    if kind == "access":
                        cache.access(block)
                    else:
                        cache.install(block)
                    now = frozenset(cache.set_contents(set_index))
                    losses |= previous - now
                    previous = now
                lost = frozenset(losses)
                memo[key] = lost
            evicted |= lost
    return frozenset(evicted)


def refine_classifications(
    acfg: ACFG,
    exploration: RefinementResult,
    classifications: Sequence[Optional[Classification]],
    persistence: bool = True,
) -> Dict[int, Classification]:
    """Promotions decided by a completed exploration.

    Only ``NOT_CLASSIFIED`` references are considered (the abstract
    labels are already exact for the rest): a block present in *every*
    reachable in-line of its set promotes to ``ALWAYS_HIT``, one
    present in *none* to ``ALWAYS_MISS``, and — when ``persistence``
    is allowed (single-level analyses, see the module soundness note)
    — a block with mixed presence that *no reachable transition of its
    set can evict* promotes to ``PERSISTENT``: its first miss installs
    it for good, so it misses at most once per run, matching the
    layered ``NC < AM < PS < AH`` charging exactly.  References whose
    set was abandoned (budget), or that are concretely unreachable,
    keep the sound ``NOT_CLASSIFIED``.
    """
    config = exploration.config
    promotions: Dict[int, Classification] = {}
    evictions: Dict[int, FrozenSet[int]] = {}
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        if classifications[rid] is not Classification.NOT_CLASSIFIED:
            continue
        block = acfg.block_of(rid)
        set_index = config.set_index(block)
        per_set = exploration.per_set.get(set_index)
        if per_set is None:
            continue
        lines = per_set.in_lines[rid]
        if not lines:
            continue
        present = sum(1 for line in lines if block in line)
        if present == len(lines):
            promotions[rid] = Classification.ALWAYS_HIT
        elif present == 0:
            promotions[rid] = Classification.ALWAYS_MISS
        elif persistence:
            if set_index not in evictions:
                evictions[set_index] = _evicted_blocks(
                    config, set_index, per_set
                )
            if block not in evictions[set_index]:
                promotions[rid] = Classification.PERSISTENT
    return promotions


def apply_promotions(
    classifications: Sequence[Optional[Classification]],
    promotions: Dict[int, Classification],
) -> List[Optional[Classification]]:
    """A new classification list with the promotions applied.

    Promotions may only strengthen: the current label must be
    ``NOT_CLASSIFIED`` and the promoted one must sit strictly higher in
    the layered :data:`repro.cache.classify.CLASSIFICATION_LAYERS`
    order the dense kernel's gather arrays assume.  Model checking can
    conclude ``ALWAYS_HIT``, ``ALWAYS_MISS``, or (for single-level
    analyses) the eviction-freedom form of ``PERSISTENT``.
    """
    refined = list(classifications)
    for rid, label in promotions.items():
        current = refined[rid]
        if current is not Classification.NOT_CLASSIFIED:
            raise AnalysisError(
                f"refinement may only promote NOT_CLASSIFIED references; "
                f"vertex {rid} is {current}"
            )
        if label not in (
            Classification.ALWAYS_HIT,
            Classification.ALWAYS_MISS,
            Classification.PERSISTENT,
        ) or classification_rank(label) <= classification_rank(current):
            raise AnalysisError(
                f"invalid refinement promotion {current} -> {label} "
                f"at vertex {rid}"
            )
        refined[rid] = label
    return refined
