"""Memory-system timing model.

The paper's cost terms (Section 3.3) need, per reference, the time spent
in the memory system in the WCET scenario.  With an instruction cache in
front of a DRAM level-two memory that is:

* ``hit_cycles`` for a fetch served by the cache,
* ``hit_cycles + miss_penalty_cycles`` for a fetch that must go to DRAM,
* for a software prefetch: its own fetch cost plus one issue slot — the
  block transfer itself proceeds on the non-blocking port and is *not*
  charged, which is exactly why the effectiveness condition
  (Definition 4/10: latency Λ must be covered by downstream accesses)
  matters.

Concrete cycle numbers come from the CACTI-style energy/latency model
(:mod:`repro.energy`), which builds a :class:`TimingModel` per cache
configuration and technology node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AnalysisError


@dataclass(frozen=True)
class TimingModel:
    """Cycle-level costs of the memory system.

    Attributes:
        hit_cycles: Cache-hit service time.
        miss_penalty_cycles: Extra cycles to fetch a block from the
            backstop memory (DRAM); in a multi-level hierarchy this is
            the *full* L1-miss-to-DRAM penalty (L2 probe included).
        prefetch_issue_cycles: Pipeline slot consumed by executing a
            prefetch instruction (its transfer is non-blocking).
        l2_hit_penalty_cycles: Extra cycles for a fetch that misses L1
            but is served by the second-level cache; ``None`` models
            the single-level memory system (L1 straight to DRAM).
    """

    hit_cycles: int = 1
    miss_penalty_cycles: int = 30
    prefetch_issue_cycles: int = 1
    l2_hit_penalty_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.hit_cycles < 1:
            raise AnalysisError("hit_cycles must be >= 1")
        if self.miss_penalty_cycles < 1:
            raise AnalysisError("miss_penalty_cycles must be >= 1")
        if self.prefetch_issue_cycles < 0:
            raise AnalysisError("prefetch_issue_cycles must be >= 0")
        if self.l2_hit_penalty_cycles is not None:
            if self.l2_hit_penalty_cycles < 1:
                raise AnalysisError("l2_hit_penalty_cycles must be >= 1")
            if self.l2_hit_penalty_cycles >= self.miss_penalty_cycles:
                raise AnalysisError(
                    "an L2 hit must be cheaper than the full miss penalty"
                )

    @property
    def miss_cycles(self) -> int:
        """Total service time of a demand miss."""
        return self.hit_cycles + self.miss_penalty_cycles

    @property
    def l2_hit_cycles(self) -> int:
        """Total service time of a fetch served by the L2 cache."""
        if self.l2_hit_penalty_cycles is None:
            raise AnalysisError("timing model has no second level")
        return self.hit_cycles + self.l2_hit_penalty_cycles

    @property
    def prefetch_latency(self) -> int:
        """Λ (Definition 4): cycles for a prefetch to place its block."""
        return self.miss_penalty_cycles
