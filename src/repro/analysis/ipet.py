"""IPET as an explicit integer linear program (Section 3.2-3.3).

Casts the WCET-scenario determination into the ILP form of the Implicit
Path Enumeration Technique [11]: edge variables carry execution flow,
flow is conserved at every vertex, the source emits one unit, and the
objective maximises ``Σ t_w(r) · multiplier(r) · x_r`` where ``x_r`` is
the flow entering reference ``r``.

On the VIVU-expanded ACFG this ILP and the structural solver
(:mod:`repro.analysis.structural`) are two routes to the same optimum;
the test suite cross-checks them.  The ILP backend exists because it is
the form the paper (and the WCET literature) actually specifies, and it
generalises to irreducible graphs the structural argument does not cover.

Solved with ``scipy.optimize.milp`` (HiGHS).  Binary edge flows suffice:
loop multiplicities are folded into vertex weights by VIVU, so every
feasible flow is a single source→sink path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.errors import AnalysisError, InfeasibleILPError
from repro.program.acfg import ACFG


@dataclass
class ILPSolution:
    """Solution of the IPET ILP.

    Attributes:
        objective: Optimal ``Σ t_w · n^w`` (memory contribution to WCET).
        n_w: Per-rid execution counts implied by the optimal flow.
        edge_flow: Flow value per edge, aligned with :func:`edge_list`.
    """

    objective: float
    n_w: List[int]
    edge_flow: List[int]


def edge_list(acfg: ACFG) -> List[tuple]:
    """Forward edges of the ACFG as ``(src, dst)`` pairs, in rid order."""
    edges = []
    for rid in range(len(acfg.vertices)):
        for succ in acfg.successors(rid):
            edges.append((rid, succ))
    return edges


def solve_ipet(acfg: ACFG, per_exec_time: Sequence[float]) -> ILPSolution:
    """Solve the IPET ILP for the WCET scenario.

    Args:
        acfg: The program's ACFG.
        per_exec_time: ``t_w(r)`` per rid (0 for non-REF vertices).

    Returns:
        The optimal :class:`ILPSolution`.

    Raises:
        InfeasibleILPError: If HiGHS reports no feasible flow (indicates
            a malformed graph).
    """
    n = len(acfg.vertices)
    if len(per_exec_time) != n:
        raise AnalysisError(
            f"per_exec_time has {len(per_exec_time)} entries, ACFG has {n}"
        )
    edges = edge_list(acfg)
    m = len(edges)
    if m == 0:
        raise AnalysisError("ACFG has no edges")

    # Vertex usage x_v = incoming flow (outgoing for the source).  Flow
    # conservation: in(v) == out(v) for interior vertices; out(source)=1;
    # in(sink)=1.
    weight = np.array(
        [per_exec_time[rid] * acfg.multiplier[rid] for rid in range(n)]
    )
    cost = np.zeros(m)
    for edge_idx, (_, dst) in enumerate(edges):
        cost[edge_idx] += weight[dst]
    cost[_out_edges(acfg, edges, acfg.source)] += 0.0  # source weight is 0

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for edge_idx, (src, dst) in enumerate(edges):
        # +1 leaving src, -1 entering dst.
        rows.append(src)
        cols.append(edge_idx)
        vals.append(1.0)
        rows.append(dst)
        cols.append(edge_idx)
        vals.append(-1.0)
    balance = sparse.coo_matrix((vals, (rows, cols)), shape=(n, m))
    rhs = np.zeros(n)
    rhs[acfg.source] = 1.0
    rhs[acfg.sink] = -1.0

    result = milp(
        c=-cost,  # milp minimises
        constraints=[LinearConstraint(balance, rhs, rhs)],
        integrality=np.ones(m),
        bounds=Bounds(0, 1),
    )
    if not result.success:
        raise InfeasibleILPError(f"HiGHS failed: {result.message}")

    flow = [int(round(v)) for v in result.x]
    n_w = [0] * n
    n_w[acfg.source] = acfg.multiplier[acfg.source]
    for edge_idx, (_, dst) in enumerate(edges):
        if flow[edge_idx]:
            n_w[dst] = acfg.multiplier[dst]
    objective = float(sum(per_exec_time[r] * n_w[r] for r in range(n)))
    return ILPSolution(objective=objective, n_w=n_w, edge_flow=flow)


def _out_edges(acfg: ACFG, edges: List[tuple], rid: int) -> List[int]:
    return [idx for idx, (src, _) in enumerate(edges) if src == rid]
