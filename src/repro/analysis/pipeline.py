"""Staged, cached, incremental WCET analysis (the analysis pipeline).

:func:`repro.analysis.wcet.analyze_wcet` recomputes everything from the
CFG on every call.  That is the right interface for one-shot analyses,
but the optimizer's loop calls it once per candidate insertion and most
of the work is identical between calls: the ACFG of the unmodified
program, the abstract fixpoint over the untouched prefix, transfer
functions applied to states already seen.  :class:`AnalysisPipeline`
decomposes the analysis into explicitly cached stages:

1. **Structural artifacts** — ACFG, loop instance spans, and the IPET
   structural recurrence inputs, keyed by a *content key* of the CFG
   (block/instruction streams, structure-tree shape, loop bounds,
   layout parameters).  Two CFG objects with equal content share one
   artifact, which is what lets ``measure → optimize → measure`` inside
   a use case build the ACFG once.
2. **Hash-consed abstract states** — a per-domain
   :class:`TransferCache` interns every
   :class:`~repro.cache.abstract.AbstractCacheState` it produces and
   memoizes ``update``/``join``/``unknown_access`` by value, so the
   fixpoint engine never recomputes a transfer it has already seen —
   across candidates, passes, and use-case phases.
3. **Delta re-analysis** — after a prefetch insertion the pipeline
   computes the *divergence boundary*: the first reference vertex at
   which the old and new ACFGs differ, lowered (closure) until no back
   edge of either graph crosses from at-or-above the boundary into the
   prefix.  Below the boundary the dataflow equations, classifications,
   ``t_w`` entries, latency-guard verdicts and IPET table entries of the
   base analysis are provably unchanged, so the fixpoint and the
   structural solve warm-start there and only the affected suffix is
   recomputed.  When the invariants cannot be established (no base,
   foreign base, boundary 0) the pipeline falls back to a cold run; a
   ``differential`` mode re-runs every delta analysis from scratch and
   asserts bit-identical ``tau_w``, classifications and
   ``wcet_path_misses``.

Counters for every cache (hits/misses/invalidations) and per-stage
wall-clock accumulate in :class:`PipelineStats`; the counters are
deterministic (pure functions of the analysis sequence) and flow into
:class:`~repro.core.optimizer.OptimizationReport`, sweep metrics and the
service's telemetry, while the wall-clock profile stays out of
serialized reports (see ``repro optimize --profile``).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.refine import (
    RefinementResult,
    apply_promotions,
    explore_concrete_states,
    refine_classifications,
)
from repro.analysis.slack import rest_instance_spans
from repro.analysis.structural import solve_wcet_path_tables
from repro.analysis.timing import TimingModel
from repro.analysis.wcet import (
    WCETResult,
    _charged_persistent_blocks,
    _latency_guard,
    analyze_wcet,
    compute_ref_times,
)
from repro.cache.abstract import MayState, MustState
from repro.cache.classify import (
    CacheAnalysis,
    DataflowResult,
    analyze_l2_must,
    classify_references,
    l2_guaranteed_hits,
    propagate,
)
from repro.cache.config import CacheConfig, HierarchyConfig, hierarchy_for
from repro.cache.kernel import (
    BlockUniverse,
    DenseDataflowResult,
    KernelSchedule,
    SegmentMemo,
    classify_references_dense,
    propagate_kernel_batch,
    resolve_kernel,
)
from repro.cache.persistence import PersistenceState
from repro.errors import AnalysisError
from repro.obs.trace import active_tracer
from repro.program.acfg import ACFG, build_acfg
from repro.program.cfg import ControlFlowGraph
from repro.program.structure import (
    BlockNode,
    CallNode,
    IfElseNode,
    LoopNode,
    SeqNode,
    SwitchNode,
)


@dataclass
class PipelineStats:
    """Cache counters and stage timings of one :class:`AnalysisPipeline`.

    All counters are deterministic functions of the analysis sequence
    (no wall-clock, no memory addresses), so they can be embedded in
    serialized reports and compared across serial/parallel runs.  The
    wall-clock numbers live only in :attr:`stage_seconds` and are
    surfaced separately (``--profile``).
    """

    result_hits: int = 0
    structural_hits: int = 0
    structural_misses: int = 0
    dataflow_hits: int = 0
    dataflow_misses: int = 0
    transfer_hits: int = 0
    transfer_misses: int = 0
    kernel_segment_hits: int = 0
    kernel_segment_misses: int = 0
    delta_runs: int = 0
    cold_runs: int = 0
    delta_fallbacks: int = 0
    invalidations: int = 0
    differential_checks: int = 0
    refine_runs: int = 0
    refine_promotions: int = 0
    refine_states: int = 0
    refine_exhausted: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def add_time(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock into one stage bucket."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def counters(self) -> Dict[str, int]:
        """Deterministic counter snapshot (safe to serialize in reports)."""
        data = {
            "result_hits": self.result_hits,
            "structural_hits": self.structural_hits,
            "structural_misses": self.structural_misses,
            "dataflow_hits": self.dataflow_hits,
            "dataflow_misses": self.dataflow_misses,
            "transfer_hits": self.transfer_hits,
            "transfer_misses": self.transfer_misses,
            "kernel_segment_hits": self.kernel_segment_hits,
            "kernel_segment_misses": self.kernel_segment_misses,
            "delta_runs": self.delta_runs,
            "cold_runs": self.cold_runs,
            "delta_fallbacks": self.delta_fallbacks,
            "invalidations": self.invalidations,
            "differential_checks": self.differential_checks,
        }
        # The refinement counters join the snapshot only when the stage
        # ran, so every refine-off report stays byte-identical to the
        # pre-refinement serialization (mirroring the l2 treatment of
        # the service protocol's canonical params).
        if self.refine_runs:
            data["refine_runs"] = self.refine_runs
            data["refine_promotions"] = self.refine_promotions
            data["refine_states"] = self.refine_states
            data["refine_exhausted"] = self.refine_exhausted
        return data

    def profile(self) -> Dict[str, float]:
        """Per-stage wall-clock snapshot (never serialized into reports)."""
        return dict(self.stage_seconds)


class _StageTimer:
    """Span-backed stage clock: the one timing source for the pipeline.

    Wraps a ``pipeline.<stage>`` span (``timed=True``, so a real clock
    exists even with tracing off; ``aggregate=True``, so sinks fold the
    hundreds of per-candidate occurrences into one statistical span per
    parent) and folds its duration into ``stats.stage_seconds`` on exit
    — ``--profile`` and exported traces therefore always agree.
    """

    __slots__ = ("stats", "stage", "span")

    def __init__(self, stats: PipelineStats, stage: str):
        self.stats = stats
        self.stage = stage
        self.span = active_tracer().start_span(
            "pipeline." + stage, timed=True, aggregate=True
        )

    def __enter__(self):
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        if exc_type is not None:
            span.set_status("error", f"{exc_type.__name__}: {exc}")
        span.end()
        self.stats.add_time(self.stage, span.duration_s)
        return False


class TransferCache:
    """Hash-consing interner + transfer memos for one abstract domain.

    ``update``/``join``/``unknown`` are pure functions of immutable
    states, so memoizing them by value is exact.  Results are interned,
    which (a) dedupes state memory and (b) makes the value-keyed memo
    lookups cheap: interned keys hit the ``__eq__`` identity fast path.
    When the combined tables exceed ``max_entries`` everything is
    cleared at once (counted as an invalidation) — correctness never
    depends on residency.

    Plugs into :func:`repro.cache.classify.propagate` via its
    ``transfer`` parameter.
    """

    __slots__ = ("stats", "max_entries", "_intern", "_update", "_join",
                 "_unknown")

    def __init__(self, stats: PipelineStats, max_entries: int = 200_000):
        self.stats = stats
        self.max_entries = max_entries
        self._intern: Dict[Any, Any] = {}
        self._update: Dict[Tuple[Any, int], Any] = {}
        self._join: Dict[Tuple[Any, Any], Any] = {}
        self._unknown: Dict[Any, Any] = {}

    def intern(self, state):
        """The canonical object for ``state``'s value."""
        canonical = self._intern.get(state)
        if canonical is None:
            self._intern[state] = state
            canonical = state
        return canonical

    def update(self, state, block: int):
        """Memoized ``state.update(block)``."""
        key = (state, block)
        hit = self._update.get(key)
        if hit is not None:
            self.stats.transfer_hits += 1
            return hit
        self.stats.transfer_misses += 1
        result = self.intern(state.update(block))
        self._update[key] = result
        self._maybe_clear()
        return result

    def join(self, a, b):
        """Memoized ``a.join(b)``."""
        key = (a, b)
        hit = self._join.get(key)
        if hit is not None:
            self.stats.transfer_hits += 1
            return hit
        self.stats.transfer_misses += 1
        result = self.intern(a.join(b))
        self._join[key] = result
        self._maybe_clear()
        return result

    def unknown(self, state):
        """Memoized ``state.unknown_access()``."""
        hit = self._unknown.get(state)
        if hit is not None:
            self.stats.transfer_hits += 1
            return hit
        self.stats.transfer_misses += 1
        result = self.intern(state.unknown_access())
        self._unknown[state] = result
        self._maybe_clear()
        return result

    def _maybe_clear(self) -> None:
        total = (
            len(self._intern) + len(self._update) + len(self._join)
            + len(self._unknown)
        )
        if total > self.max_entries:
            self._intern.clear()
            self._update.clear()
            self._join.clear()
            self._unknown.clear()
            self.stats.invalidations += 1


@dataclass
class StructuralArtifacts:
    """Stage-1 products: everything derivable from CFG content alone."""

    key: Any
    acfg: ACFG
    #: REST instance spans ``(entry_join, last_rid, exit_rids)`` — the
    #: optimizer's loop ranges and the latency guard's wrap-around scopes.
    loop_spans: List[Tuple[int, int, Tuple[int, ...]]]
    #: Lazily compiled :class:`~repro.cache.kernel.KernelSchedule` of the
    #: vectorized kernel (``None`` until first dense analysis, or when
    #: the pipeline runs the python kernel).  Invalidated implicitly
    #: when the pipeline's block universe is rebuilt (the schedule keeps
    #: a reference to the universe it was compiled against).
    schedule: Optional[KernelSchedule] = None


class PipelineResult:
    """One analysis run: WCET bundle + reusable solver/dataflow state.

    Also carries the optimizer's per-pass derived artifacts
    (:meth:`reverse_events`, :meth:`exec_counts`, :meth:`miss_uses`)
    lazily, so ``_run_pass`` stops recomputing them per pass.
    """

    __slots__ = ("owner", "artifacts", "wcet", "dataflows", "best",
                 "best_pred", "with_may", "locked_blocks",
                 "_reverse_events", "_exec_counts", "_miss_uses")

    def __init__(self, owner, artifacts, wcet, dataflows, best, best_pred,
                 with_may, locked_blocks):
        self.owner = owner
        self.artifacts = artifacts
        self.wcet = wcet
        self.dataflows = dataflows
        self.best = best
        self.best_pred = best_pred
        self.with_may = with_may
        self.locked_blocks = locked_blocks
        self._reverse_events = None
        self._exec_counts = None
        self._miss_uses = None

    @property
    def acfg(self) -> ACFG:
        """The analysed ACFG."""
        return self.artifacts.acfg

    def loop_ranges(self) -> Dict[int, Tuple[int, Tuple[int, ...]]]:
        """``{entry_join: (last_rid, exit_rids)}`` from the cached spans."""
        return {
            join: (last, exits)
            for join, last, exits in self.artifacts.loop_spans
        }

    def reverse_events(self):
        """Cached replacement events of the WCET path (Property 3)."""
        if self._reverse_events is None:
            from repro.core.update import collect_reverse_events

            self._reverse_events = collect_reverse_events(
                self.artifacts.acfg,
                self.wcet.cache.config,
                self.wcet.solution,
                locked_blocks=self.locked_blocks,
            )
        return self._reverse_events

    def exec_counts(self) -> Dict[int, int]:
        """Cached per-instruction-uid WCET execution counts."""
        if self._exec_counts is None:
            counts: Dict[int, int] = {}
            n_w = self.wcet.solution.n_w
            for vertex in self.artifacts.acfg.ref_vertices():
                counts[vertex.instr.uid] = (
                    counts.get(vertex.instr.uid, 0) + n_w[vertex.rid]
                )
            self._exec_counts = counts
        return self._exec_counts

    def miss_uses(self) -> Dict[int, List[int]]:
        """Per memory block: sorted rids of on-path references still
        paying for a miss — the misses a prefetch could preclude."""
        if self._miss_uses is None:
            uses: Dict[int, List[int]] = {}
            acfg = self.artifacts.acfg
            n_w = self.wcet.solution.n_w
            for vertex in acfg.ref_vertices():
                rid = vertex.rid
                if n_w[rid] == 0:
                    continue
                if self.wcet.cache.classification(rid).is_always_hit:
                    continue
                uses.setdefault(acfg.block_of(rid), []).append(rid)
            self._miss_uses = uses
        return self._miss_uses


def _structure_sig(node) -> tuple:
    """Hashable signature of a structure tree (shape + block names)."""
    if node is None:
        return ("none",)
    if isinstance(node, BlockNode):
        return ("b", node.block_name)
    if isinstance(node, SeqNode):
        return ("s",) + tuple(_structure_sig(item) for item in node.items)
    if isinstance(node, IfElseNode):
        return (
            "if",
            node.cond_block,
            _structure_sig(node.then_node),
            _structure_sig(node.else_node),
        )
    if isinstance(node, LoopNode):
        return ("lp", node.loop_name, _structure_sig(node.body))
    if isinstance(node, SwitchNode):
        return ("sw", node.selector_block) + tuple(
            _structure_sig(case) for case in node.cases
        )
    if isinstance(node, CallNode):
        return ("call", node.call_block, node.function_name, node.site_id)
    raise AnalysisError(f"unknown structure node {type(node).__name__}")


def content_key(cfg: ControlFlowGraph, block_size: int, base_address: int):
    """Hashable key of everything the instruction-cache analysis reads.

    Covers the per-block instruction streams (uid, prefetch role,
    prefetch target — layout order determines addresses), the CFG
    edges, the structure-tree shape, loop bounds, function bodies, and
    the layout parameters.  Two CFG objects with equal keys yield
    byte-for-byte identical analyses, which is the pipeline's licence to
    share artifacts across objects (e.g. ``optimize``'s working clone
    and the measured original).
    """
    blocks = tuple(
        (
            block.name,
            tuple(
                (instr.uid, instr.is_prefetch, instr.prefetch_target)
                for instr in block.instructions
            ),
        )
        for block in cfg.blocks
    )
    edges = tuple(sorted(cfg.edges()))
    loops = tuple(
        sorted((name, info.bound) for name, info in cfg.loops.items())
    )
    functions = tuple(
        sorted(
            (name, _structure_sig(info.structure))
            for name, info in cfg.functions.items()
        )
    )
    return (
        cfg.name,
        blocks,
        edges,
        loops,
        _structure_sig(cfg.structure),
        functions,
        block_size,
        base_address,
    )


def _vertex_matches(old: ACFG, new: ACFG, rid: int) -> bool:
    """Whether vertex ``rid`` is analysis-equivalent in both ACFGs.

    Compares everything the dataflow/guard/IPET equations read at this
    vertex: kind, context, instruction identity and prefetch role,
    memory blocks (own + target — these capture address-layout shifts),
    execution multiplier, and the forward predecessor list.
    """
    a = old.vertices[rid]
    b = new.vertices[rid]
    if a.kind is not b.kind or a.context != b.context:
        return False
    ia, ib = a.instr, b.instr
    if (ia is None) != (ib is None):
        return False
    if ia is not None and (
        ia.uid != ib.uid
        or ia.is_prefetch != ib.is_prefetch
        or ia.prefetch_target != ib.prefetch_target
    ):
        return False
    if (
        old._ref_block[rid] != new._ref_block[rid]
        or old._target_block[rid] != new._target_block[rid]
        or old.multiplier[rid] != new.multiplier[rid]
    ):
        return False
    return old.predecessors(rid) == new.predecessors(rid)


def divergence_boundary(old: ACFG, new: ACFG) -> int:
    """The warm-start boundary between two ACFGs.

    Returns the largest ``b`` such that every analysis equation of
    vertices ``rid < b`` is identical in both graphs: first the lowest
    rid whose vertex differs (:func:`_vertex_matches`), then lowered by
    closure until no back edge of *either* graph — and no back edge
    present in only one of them — targets the prefix from at or above
    the boundary.  With that closure, the prefix fixpoint states,
    classifications, ``t_w`` entries, latency-guard verdicts and IPET
    table entries of the base analysis carry over unchanged.

    Returns 0 when nothing can be reused.
    """
    n = min(len(old.vertices), len(new.vertices))
    b = n
    for rid in range(n):
        if not _vertex_matches(old, new, rid):
            b = rid
            break
    if b <= 0:
        return 0
    old_edges = set(old.back_edges)
    new_edges = set(new.back_edges)
    only_one = old_edges ^ new_edges
    every = old_edges | new_edges
    changed = True
    while changed and b > 0:
        changed = False
        for src, dst in every:
            if dst < b and (src >= b or (src, dst) in only_one):
                b = dst
                changed = True
    return max(b, 0)


class AnalysisPipeline:
    """Staged, cached WCET analysis for one (config, timing) context.

    One pipeline serves one use case: the cache configuration, timing
    model, persistence setting, locked blocks and base address are fixed
    at construction so every cached artifact is valid for every call.
    Not thread-safe; sweep workers build one per use case.

    Args:
        config: Cache configuration.
        timing: Timing model.
        with_persistence: Run the persistence domain (must match the
            optimizer options the pipeline is used with).
        locked_blocks: Hybrid-locking pinned blocks.
        base_address: Program load address.
        differential: Verify every delta re-analysis against a cold
            :func:`~repro.analysis.wcet.analyze_wcet` run (slow; used by
            the equivalence tests).
        stats: Optionally share a :class:`PipelineStats` instance.
        kernel: Abstract-domain implementation: ``"python"`` (the
            verified oracle), ``"vectorized"`` (the dense numpy kernel,
            bit-identical by the differential suite), or ``None`` to
            follow ``REPRO_CACHE_KERNEL`` (default ``vectorized``).
        hierarchy: Optional multi-level
            :class:`~repro.cache.config.HierarchyConfig`; its L1 must
            equal ``config``.  Adds an L2 must stage (python-kernel
            :func:`~repro.cache.classify.analyze_l2_must` over the
            classification-filtered stream, delta-warm-started at the
            same divergence boundary) after classification.  ``None``
            keeps the single-level analysis bit-identical to before.
        refine: Run the model-checking refinement
            (:mod:`repro.analysis.refine`) after classification and
            apply its NC->AH / NC->AM promotions before the L2, guard
            and IPET stages.  The exploration is cached per program
            content and warm-started at the divergence boundary like
            the abstract fixpoints.  ``False`` keeps every output
            byte-identical to before.
        refine_budget: Exploration budget override for the refinement
            (:data:`repro.analysis.refine.DEFAULT_BUDGET` when ``None``).
    """

    #: LRU capacities.  Structural artifacts and dataflow results are
    #: keyed by program content; candidate evaluations churn through
    #: unique contents, so the caps bound memory while keeping the
    #: cross-phase entries (original and final program) resident.
    MAX_STRUCTURAL = 32
    MAX_DATAFLOW = 64
    MAX_RESULTS = 8

    def __init__(
        self,
        config: CacheConfig,
        timing: TimingModel,
        with_persistence: bool = True,
        locked_blocks: frozenset = frozenset(),
        base_address: int = 0,
        differential: bool = False,
        stats: Optional[PipelineStats] = None,
        kernel: Optional[str] = None,
        hierarchy: Optional[HierarchyConfig] = None,
        refine: bool = False,
        refine_budget: Optional[int] = None,
    ):
        self.config = config
        self.timing = timing
        self.with_persistence = with_persistence
        self.locked_blocks = frozenset(locked_blocks or ())
        self.base_address = base_address
        self.differential = differential
        self.stats = stats if stats is not None else PipelineStats()
        self.kernel = resolve_kernel(kernel)
        self.refine = bool(refine)
        self.refine_budget = refine_budget
        if hierarchy is not None and hierarchy.l1 != config:
            raise AnalysisError(
                f"hierarchy L1 {hierarchy.l1.label()} does not match the "
                f"pipeline configuration {config.label()}"
            )
        self.hierarchy = hierarchy
        self._transfer: Dict[str, TransferCache] = {
            "must": TransferCache(self.stats),
            "may": TransferCache(self.stats),
            "persistence": TransferCache(self.stats),
            "l2-must": TransferCache(self.stats),
        }
        #: Vectorized-kernel state: one block universe shared by every
        #: schedule/dense matrix of this pipeline (rebuilt with headroom
        #: when a program outgrows it) and one segment memo keyed by
        #: (domain batch, segment ops, in-state bytes).
        self._universe: Optional[BlockUniverse] = None
        self._segment_memo = SegmentMemo(stats=self.stats)
        self._structural_cache: "OrderedDict[Any, StructuralArtifacts]" = (
            OrderedDict()
        )
        self._dataflow_cache: "OrderedDict[Any, DataflowResult]" = OrderedDict()
        self._results: "OrderedDict[Any, PipelineResult]" = OrderedDict()
        #: id(cfg) -> (version, weakref, content key): memoizes the
        #: content key per live CFG object; the weakref guards against
        #: id reuse after garbage collection and the version (bumped by
        #: every CFG mutation, never reused) against in-place edits.
        self._content_keys: Dict[int, Tuple[int, Any, Any]] = {}

    @classmethod
    def for_options(cls, config: CacheConfig, timing: TimingModel, options,
                    **kwargs) -> "AnalysisPipeline":
        """A pipeline matching an :class:`~repro.core.optimizer.OptimizerOptions`."""
        l2_spec = getattr(options, "l2", None)
        return cls(
            config,
            timing,
            with_persistence=options.with_persistence,
            locked_blocks=options.locked_blocks,
            base_address=options.base_address,
            kernel=getattr(options, "kernel", None),
            hierarchy=hierarchy_for(config, l2_spec) if l2_spec else None,
            refine=bool(getattr(options, "refine", False)),
            **kwargs,
        )

    def matches_options(self, options) -> bool:
        """Whether this pipeline's fixed context agrees with ``options``."""
        l2_spec = getattr(options, "l2", None)
        wanted = hierarchy_for(self.config, l2_spec) if l2_spec else None
        return (
            self.with_persistence == options.with_persistence
            and self.locked_blocks == frozenset(options.locked_blocks or ())
            and self.base_address == options.base_address
            and self.kernel == resolve_kernel(getattr(options, "kernel", None))
            and self.hierarchy == wanted
            and self.refine == bool(getattr(options, "refine", False))
        )

    # ------------------------------------------------------------------
    # the staged analysis
    # ------------------------------------------------------------------
    def analyze(
        self,
        cfg: ControlFlowGraph,
        with_may: bool = True,
        base: Optional[PipelineResult] = None,
    ) -> PipelineResult:
        """Analyse ``cfg``, reusing every stage the caches allow.

        Args:
            cfg: The program (any object; keyed by content).
            with_may: Run the may domain (as in :func:`analyze_wcet`).
            base: A previous result *from this pipeline* to delta
                against — typically the analysis of the program this
                ``cfg`` was derived from by one prefetch insertion.

        Returns:
            A :class:`PipelineResult` whose ``wcet`` is bit-identical to
            a fresh :func:`~repro.analysis.wcet.analyze_wcet` call.
        """
        key = self._content_key_of(cfg)
        result_key = (key, bool(with_may))
        cached = self._results.get(result_key)
        if cached is not None:
            self._results.move_to_end(result_key)
            self.stats.result_hits += 1
            return cached

        artifacts = self._structural_stage(cfg, key)
        acfg = artifacts.acfg

        boundary = 0
        if base is not None:
            if base.owner is not self:
                self.stats.delta_fallbacks += 1
                base = None
            else:
                boundary = divergence_boundary(base.artifacts.acfg, acfg)
                if boundary <= 0:
                    self.stats.delta_fallbacks += 1
                    base = None
        use_delta = base is not None and boundary > 0
        if use_delta:
            self.stats.delta_runs += 1
        else:
            self.stats.cold_runs += 1
            boundary = 0

        level2 = self.hierarchy.l2_level if self.hierarchy is not None else None
        domains = ["must"]
        # A second level implies the may domain: the L2 access plan's
        # definite accesses are the L1 always-misses (see
        # classify.l2_access_plan), so the fixpoint must have may even
        # in the optimizer's must-only hot loop — and the plan (hence
        # τ_w) stays identical across the caller's with_may choices.
        if with_may or level2 is not None:
            domains.append("may")
        if self.with_persistence:
            domains.append("persistence")
        with self._stage("fixpoint") as fixpoint_span:
            seg_hits = self.stats.kernel_segment_hits
            seg_misses = self.stats.kernel_segment_misses
            if self.kernel == "vectorized":
                dataflows = self._dense_dataflow_stage(
                    artifacts, domains, base if use_delta else None, boundary
                )
            else:
                dataflows = {
                    domain: self._dataflow_stage(
                        artifacts, domain, base if use_delta else None, boundary
                    )
                    for domain in domains
                }
            if fixpoint_span.recording and self.kernel == "vectorized":
                fixpoint_span.set_attributes(
                    {
                        "kernel_segment_hits": self.stats.kernel_segment_hits
                        - seg_hits,
                        "kernel_segment_misses": self.stats.kernel_segment_misses
                        - seg_misses,
                    }
                )

        with self._stage("classify"):
            locked = self.locked_blocks or None
            if all(
                isinstance(df, DenseDataflowResult) for df in dataflows.values()
            ):
                classifications = classify_references_dense(
                    acfg,
                    dataflows["must"],
                    dataflows.get("may"),
                    dataflows.get("persistence"),
                    locked,
                    schedule=artifacts.schedule,
                )
            else:
                classifications = classify_references(
                    acfg,
                    dataflows["must"],
                    dataflows.get("may"),
                    dataflows.get("persistence"),
                    locked,
                )
            cache_analysis = CacheAnalysis(
                self.config,
                classifications,
                dataflows["must"],
                dataflows.get("may"),
                dataflows.get("persistence"),
            )

        # Downstream warm-starts (l2/guard/ipet) rely on the prefix
        # classifications matching the base run; refinement can break
        # that (a budget flip changes promotions without changing the
        # prefix equations), in which case they run cold.
        warm_boundary = boundary
        if self.refine:
            with self._stage("refine") as refine_span:
                exploration = self._refine_stage(
                    artifacts, base if use_delta else None, boundary
                )
                # PS promotions would charge the one-time penalty at
                # the DRAM rate; with an L2 the unrefined bound can be
                # tighter (L2 service time), so they are single-level
                # only (see the refine module's soundness note).
                promotions = refine_classifications(
                    acfg,
                    exploration,
                    classifications,
                    persistence=level2 is None,
                )
                self.stats.refine_runs += 1
                self.stats.refine_promotions += len(promotions)
                if exploration.exhausted:
                    self.stats.refine_exhausted += 1
                if promotions:
                    classifications = apply_promotions(
                        classifications, promotions
                    )
                    cache_analysis.classifications = classifications
                dataflows["refine"] = exploration
                if refine_span.recording:
                    refine_span.set_attributes(
                        {
                            "promotions": len(promotions),
                            "states": exploration.explored,
                            "exhausted": exploration.exhausted,
                        }
                    )
            if use_delta and classifications[:boundary] != (
                base.wcet.cache.classifications[:boundary]
            ):
                warm_boundary = 0
                self.stats.delta_fallbacks += 1
        use_warm = use_delta and warm_boundary > 0

        if level2 is not None:
            with self._stage("l2"):
                l2_must = self._l2_stage(
                    artifacts,
                    classifications,
                    base if use_warm else None,
                    warm_boundary,
                    level2.config,
                    dataflows.get("may"),
                )
                dataflows["l2-must"] = l2_must
                cache_analysis.l2_must = l2_must
                cache_analysis.l2_hits = l2_guaranteed_hits(
                    acfg, classifications, l2_must
                )

        with self._stage("guard"):
            t_w = compute_ref_times(acfg, cache_analysis, self.timing)
            guarded = _latency_guard(
                acfg,
                cache_analysis,
                self.timing,
                t_w,
                boundary=warm_boundary,
                base_guarded=base.wcet.latency_guarded if use_warm else frozenset(),
            )
            for rid in guarded:
                t_w[rid] = float(self.timing.miss_cycles)

        with self._stage("ipet"):
            warm = (warm_boundary, base.best, base.best_pred) if use_warm else None
            solution, best, best_pred = solve_wcet_path_tables(acfg, t_w, warm=warm)
            charged = _charged_persistent_blocks(acfg, cache_analysis, solution)
            wcet = WCETResult(
                acfg=acfg,
                cache=cache_analysis,
                timing=self.timing,
                t_w=t_w,
                solution=solution,
                persistent_charged_blocks=charged,
                latency_guarded=guarded,
            )

        if use_delta and self.differential:
            self._differential_check(acfg, wcet, with_may)

        result = PipelineResult(
            owner=self,
            artifacts=artifacts,
            wcet=wcet,
            dataflows=dataflows,
            best=best,
            best_pred=best_pred,
            with_may=bool(with_may),
            locked_blocks=locked,
        )
        if base is None:
            # Candidate evaluations (base != None) churn through unique
            # contents and are carried by the optimizer explicitly; only
            # cold analyses of "real" programs earn a result-cache slot.
            self._results[result_key] = result
            while len(self._results) > self.MAX_RESULTS:
                self._results.popitem(last=False)
                self.stats.invalidations += 1
        return result

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def _stage(self, name: str) -> _StageTimer:
        return _StageTimer(self.stats, name)

    def _content_key_of(self, cfg: ControlFlowGraph):
        cached = self._content_keys.get(id(cfg))
        if cached is not None:
            version, ref, key = cached
            if ref() is cfg and version == cfg.version:
                return key
        key = content_key(cfg, self.config.block_size, self.base_address)
        self._content_keys[id(cfg)] = (cfg.version, weakref.ref(cfg), key)
        if len(self._content_keys) > 16:
            self._content_keys = {
                obj_id: entry
                for obj_id, entry in self._content_keys.items()
                if entry[1]() is not None
            }
        return key

    def _structural_stage(self, cfg: ControlFlowGraph, key) -> StructuralArtifacts:
        hit = self._structural_cache.get(key)
        if hit is not None:
            self._structural_cache.move_to_end(key)
            self.stats.structural_hits += 1
            return hit
        self.stats.structural_misses += 1
        with self._stage("acfg"):
            acfg = build_acfg(cfg, self.config.block_size, self.base_address)
            artifacts = StructuralArtifacts(
                key=key, acfg=acfg, loop_spans=rest_instance_spans(acfg)
            )
            if self.kernel == "vectorized":
                # Schedule compilation is structural work (per program
                # content, domain-independent), so it rides the acfg stage.
                self._schedule_for(artifacts)
        self._structural_cache[key] = artifacts
        while len(self._structural_cache) > self.MAX_STRUCTURAL:
            self._structural_cache.popitem(last=False)
            self.stats.invalidations += 1
        return artifacts

    def _initial_state(self, domain: str):
        if domain == "must":
            return MustState(self.config)
        if domain == "may":
            return MayState(self.config)
        if domain == "persistence":
            return PersistenceState(self.config)
        raise AnalysisError(f"unknown abstract domain {domain!r}")

    def _dataflow_stage(
        self,
        artifacts: StructuralArtifacts,
        domain: str,
        base: Optional[PipelineResult],
        boundary: int,
    ) -> DataflowResult:
        key = (artifacts.key, domain)
        hit = self._dataflow_cache.get(key)
        if hit is not None:
            self._dataflow_cache.move_to_end(key)
            self.stats.dataflow_hits += 1
            return hit
        self.stats.dataflow_misses += 1
        base_df = (
            base.dataflows.get(domain)
            if base is not None and boundary > 0
            else None
        )
        transfer = self._transfer[domain]
        warm = None
        if base_df is not None:
            warm = (boundary, base_df.in_states, base_df.out_states)
        result = propagate(
            artifacts.acfg,
            self.config,
            transfer.intern(self._initial_state(domain)),
            locked_blocks=self.locked_blocks or None,
            transfer=transfer,
            warm=warm,
        )
        self._dataflow_cache[key] = result
        while len(self._dataflow_cache) > self.MAX_DATAFLOW:
            self._dataflow_cache.popitem(last=False)
            self.stats.invalidations += 1
        return result

    def _l2_stage(
        self,
        artifacts: StructuralArtifacts,
        classifications,
        base: Optional[PipelineResult],
        boundary: int,
        l2_config: CacheConfig,
        may: Optional[DataflowResult],
    ) -> DataflowResult:
        """The L2 must fixpoint over the classification-filtered stream.

        Runs the python :func:`~repro.cache.classify.analyze_l2_must`
        under both kernels (the maybe-access op has no dense
        counterpart; the plan is derived from the kernel-independent L1
        classification and may states, so the result is too).
        Warm-starting at the divergence boundary is sound because the
        prefix classifications and may in-states — and with them the
        L2 access plan — are unchanged there.
        """
        key = (artifacts.key, "l2-must")
        hit = self._dataflow_cache.get(key)
        if hit is not None:
            self._dataflow_cache.move_to_end(key)
            self.stats.dataflow_hits += 1
            return hit
        self.stats.dataflow_misses += 1
        base_df = (
            base.dataflows.get("l2-must")
            if base is not None and boundary > 0
            else None
        )
        warm = None
        if base_df is not None:
            warm = (boundary, base_df.in_states, base_df.out_states)
        result = analyze_l2_must(
            artifacts.acfg,
            l2_config,
            classifications,
            locked_blocks=self.locked_blocks or None,
            transfer=self._transfer["l2-must"],
            warm=warm,
            may=may,
        )
        self._dataflow_cache[key] = result
        while len(self._dataflow_cache) > self.MAX_DATAFLOW:
            self._dataflow_cache.popitem(last=False)
            self.stats.invalidations += 1
        return result

    def _refine_stage(
        self,
        artifacts: StructuralArtifacts,
        base: Optional[PipelineResult],
        boundary: int,
    ) -> RefinementResult:
        """The bounded concrete-state exploration of one program.

        The exploration walks the same default access plan for every
        classification of the same content, so it is cached per
        ``artifacts.key`` alone (shared across ``with_may`` modes) and
        warm-started at the divergence boundary like the abstract
        fixpoints — reusing only completed (non-exhausted) base sets,
        whose prefix line sets are converged and therefore sound to
        copy under the boundary closure.
        """
        key = (artifacts.key, "refine")
        hit = self._dataflow_cache.get(key)
        if hit is not None:
            self._dataflow_cache.move_to_end(key)
            self.stats.dataflow_hits += 1
            return hit
        self.stats.dataflow_misses += 1
        base_df = (
            base.dataflows.get("refine")
            if base is not None and boundary > 0
            else None
        )
        warm = (boundary, base_df) if base_df is not None else None
        result = explore_concrete_states(
            artifacts.acfg,
            self.config,
            locked_blocks=self.locked_blocks or None,
            budget=self.refine_budget,
            warm=warm,
        )
        self.stats.refine_states += result.explored
        self._dataflow_cache[key] = result
        while len(self._dataflow_cache) > self.MAX_DATAFLOW:
            self._dataflow_cache.popitem(last=False)
            self.stats.invalidations += 1
        return result

    def _dense_dataflow_stage(
        self,
        artifacts: StructuralArtifacts,
        domains: Sequence[str],
        base: Optional[PipelineResult],
        boundary: int,
    ) -> Dict[str, DataflowResult]:
        """All requested domains in one batched dense fixpoint.

        The vectorized counterpart of mapping :meth:`_dataflow_stage`
        over ``domains``: per-domain dataflow-cache keys are honoured
        first, then every *missing* domain rides a single stacked
        :func:`propagate_kernel_batch` walk — one schedule traversal,
        one join, one memo probe per segment for the whole batch.
        """
        dataflows: Dict[str, DataflowResult] = {}
        missing = []
        for domain in domains:
            key = (artifacts.key, domain)
            hit = self._dataflow_cache.get(key)
            if hit is not None and isinstance(hit, DenseDataflowResult):
                self._dataflow_cache.move_to_end(key)
                self.stats.dataflow_hits += 1
                dataflows[domain] = hit
            else:
                self.stats.dataflow_misses += 1
                missing.append(domain)
        if not missing:
            return dataflows

        schedule = self._schedule_for(artifacts)
        warm = None
        if base is not None and boundary > 0:
            bases = {
                domain: df
                for domain in missing
                for df in (base.dataflows.get(domain),)
                if isinstance(df, DenseDataflowResult)
            }
            if len(bases) == len(missing):
                warm = (boundary, bases)
        batch = propagate_kernel_batch(
            schedule, missing, memo=self._segment_memo, warm=warm
        )
        for domain in missing:
            result = batch[domain]
            dataflows[domain] = result
            self._dataflow_cache[(artifacts.key, domain)] = result
        while len(self._dataflow_cache) > self.MAX_DATAFLOW:
            self._dataflow_cache.popitem(last=False)
            self.stats.invalidations += 1
        return dataflows

    def _schedule_for(self, artifacts: StructuralArtifacts) -> KernelSchedule:
        """The compiled schedule of one ACFG against the live universe.

        Compiles optimistically against the current universe — the
        compiler's own column-range check doubles as the coverage probe,
        so the common candidate path skips the per-call block scan.  A
        program outgrowing the universe raises, and only then is the
        universe regrown (with headroom) and the schedule recompiled.
        """
        schedule = artifacts.schedule
        universe = self._universe
        if schedule is not None and schedule.universe is universe:
            return schedule
        if universe is not None:
            try:
                schedule = KernelSchedule(
                    artifacts.acfg, universe, self.locked_blocks
                )
                artifacts.schedule = schedule
                return schedule
            except AnalysisError:
                pass  # outgrown: rebuild below
        universe = self._ensure_universe(artifacts.acfg)
        schedule = KernelSchedule(artifacts.acfg, universe, self.locked_blocks)
        artifacts.schedule = schedule
        return schedule

    def _ensure_universe(self, acfg: ACFG) -> BlockUniverse:
        """The pipeline's block universe, grown to cover ``acfg``.

        Rebuilding (a program referencing blocks outside the current
        range) clears the segment memos — dense rows of different widths
        are incomparable — and counts as an invalidation.  The headroom
        absorbs the small upward block drift of candidate programs (each
        prefetch insertion shifts later addresses by one instruction).
        """
        probe = BlockUniverse.for_acfg(acfg, self.config)
        current = self._universe
        if current is not None and current.covers(probe.base_block) and (
            current.covers(probe.base_block + probe.width - 1)
        ):
            return current
        lo = probe.base_block
        hi = probe.base_block + probe.width - 1
        if current is not None:
            lo = min(lo, current.base_block)
            hi = max(hi, current.base_block + current.width - 1)
        universe = BlockUniverse(self.config, lo, hi - lo + 1 + 32)
        self._universe = universe
        self._segment_memo.clear()
        if current is not None:
            self.stats.invalidations += 1
        return universe

    def _differential_check(self, acfg: ACFG, wcet: WCETResult,
                            with_may: bool) -> None:
        """Prove one delta analysis bit-identical to a from-scratch run."""
        self.stats.differential_checks += 1
        cold = analyze_wcet(
            acfg,
            self.config,
            self.timing,
            with_may=with_may,
            with_persistence=self.with_persistence,
            locked_blocks=self.locked_blocks or None,
            hierarchy=self.hierarchy,
            refine=self.refine,
            refine_budget=self.refine_budget,
        )
        problems = []
        if wcet.tau_w != cold.tau_w:
            problems.append(f"tau_w {wcet.tau_w!r} != {cold.tau_w!r}")
        if wcet.cache.classifications != cold.cache.classifications:
            problems.append("classifications differ")
        if wcet.t_w != cold.t_w:
            problems.append("t_w differs")
        if wcet.latency_guarded != cold.latency_guarded:
            problems.append("latency_guarded differs")
        if (wcet.cache.l2_hits or frozenset()) != (
            cold.cache.l2_hits or frozenset()
        ):
            problems.append("l2_hits differ")
        if wcet.solution.n_w != cold.solution.n_w:
            problems.append("n_w differs")
        if wcet.persistent_charged_blocks != cold.persistent_charged_blocks:
            problems.append("persistent_charged_blocks differ")
        if wcet.wcet_path_misses != cold.wcet_path_misses:
            problems.append(
                f"wcet_path_misses {wcet.wcet_path_misses} != "
                f"{cold.wcet_path_misses}"
            )
        if problems:
            raise AnalysisError(
                "delta re-analysis diverged from cold analysis: "
                + "; ".join(problems)
            )
