"""End-to-end WCET analysis driver.

Composes the pieces the paper's preliminary analysis provides to the
optimizer (Section 4.4 preconditions):

1. cache classification of every reference (must/may abstract
   interpretation, :mod:`repro.cache.classify`),
2. per-reference worst-case memory times ``t_w(r)``,
3. the WCET scenario — execution counts ``n^w`` and the memory
   contribution ``τ^p_w`` (Eqs. 1-3), via the structural solver or the
   explicit ILP.

The result object is the interface the optimizer's joint improvement
criterion (:mod:`repro.core.profit`) consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.ipet import solve_ipet
from repro.analysis.structural import PathSolution, solve_wcet_path
from repro.analysis.timing import TimingModel
from repro.cache.classify import (
    CacheAnalysis,
    Classification,
    analyze_cache,
    analyze_l2_must,
    l2_guaranteed_hits,
)
from repro.cache.config import CacheConfig
from repro.errors import AnalysisError
from repro.program.acfg import ACFG


def compute_ref_times(
    acfg: ACFG, analysis: CacheAnalysis, timing: TimingModel
) -> List[float]:
    """Per-execution worst-case memory time ``t_w(r)`` for every vertex.

    References classified always-hit cost the hit latency; always-miss
    and not-classified references are conservatively charged the miss
    latency — unless the second-level analysis proved the block resident
    in L2 (``analysis.l2_hits``), in which case the L2 service time
    bounds the worst case.  When the model-checking refinement
    (:mod:`repro.analysis.refine`) ran, ``analysis.classifications``
    already carries its NC->AH promotions, so those references are
    charged the hit latency here — and dropped from the L2 access plan
    — without any special casing.  A software prefetch additionally
    occupies its issue slot (its block transfer is non-blocking and not
    charged here).  Non-reference vertices cost nothing.
    """
    times: List[float] = [0.0] * len(acfg.vertices)
    l2_hits = (
        analysis.l2_hits
        if timing.l2_hit_penalty_cycles is not None and analysis.l2_hits
        else frozenset()
    )
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        if analysis.classification(rid).is_hit:
            cost = float(timing.hit_cycles)
        elif rid in l2_hits:
            cost = float(timing.l2_hit_cycles)
        else:
            cost = float(timing.miss_cycles)
        if vertex.is_prefetch:
            cost += float(timing.prefetch_issue_cycles)
        times[rid] = cost
    return times


@dataclass
class WCETResult:
    """The paper's preliminary-analysis bundle for one program/config.

    Attributes:
        acfg: The analysed ACFG.
        cache: Cache classification results.
        timing: Timing model used.
        t_w: Per-rid per-execution worst-case time.
        solution: WCET path and counts (``n^w``).
        persistent_charged_blocks: Memory blocks classified persistent
            (first-miss) whose one-time miss penalty is charged on top
            of the path objective.  A block already paying a full
            always-miss/not-classified reference on the path is not
            charged again.
    """

    acfg: ACFG
    cache: CacheAnalysis
    timing: TimingModel
    t_w: List[float]
    solution: PathSolution
    persistent_charged_blocks: frozenset = frozenset()
    #: References charged the miss latency by the prefetch-latency
    #: guard: they would hit only thanks to a prefetch issued less than
    #: Λ before them, which the hardware cannot guarantee.
    latency_guarded: frozenset = frozenset()

    @property
    def persistence_penalty(self) -> float:
        """One-time first-miss penalties added to the path objective."""
        return float(
            len(self.persistent_charged_blocks) * self.timing.miss_penalty_cycles
        )

    @property
    def tau_w(self) -> float:
        """``τ^p_w`` (Eq. 3): memory contribution to the WCET."""
        return self.solution.objective + self.persistence_penalty

    def tau_of(self, rid: int) -> float:
        """``τ^p_w(r)`` (Eq. 2): one reference's overall contribution."""
        return self.t_w[rid] * self.solution.n_w[rid]

    def n_w(self, rid: int) -> int:
        """``n^w`` of the basic-block instance holding ``rid``."""
        return self.solution.n_w[rid]

    def on_wcet_path(self, rid: int) -> bool:
        """Whether the vertex lies on the WCET path."""
        return self.solution.on_path[rid]

    @property
    def wcet_path_misses(self) -> int:
        """Worst-case number of demand misses (Condition 2 tracking).

        Counts every always-miss/not-classified reference on the WCET
        path weighted by its execution count, plus one first-miss per
        charged persistent block.  Cached after the first computation.
        """
        cached = getattr(self, "_misses_cache", None)
        if cached is not None:
            return cached
        total = len(self.persistent_charged_blocks)
        n_w = self.solution.n_w
        classifications = self.cache.classifications
        for vertex in self.acfg.ref_vertices():
            rid = vertex.rid
            classification = classifications[rid]
            assert classification is not None
            if n_w[rid] and (
                not classification.is_hit or rid in self.latency_guarded
            ):
                total += n_w[rid]
        self._misses_cache = total
        return total

    @property
    def wcet_path_l2_hits(self) -> int:
        """Worst-case L1 misses served by the L2 cache (hierarchy mode).

        A subset of :attr:`wcet_path_misses`: these references still
        miss L1 in the worst case but never reach DRAM.  Zero for
        single-level analyses.
        """
        l2_hits = self.cache.l2_hits
        if not l2_hits:
            return 0
        n_w = self.solution.n_w
        return sum(
            n_w[rid]
            for rid in l2_hits
            if n_w[rid] and rid not in self.latency_guarded
        )

    @property
    def wcet_path_fetches(self) -> int:
        """Worst-case number of instruction fetches (prefetches included)."""
        return sum(
            self.solution.n_w[v.rid] for v in self.acfg.ref_vertices()
        )

    @property
    def wcet_miss_rate(self) -> float:
        """Miss rate along the WCET scenario."""
        fetches = self.wcet_path_fetches
        if fetches == 0:
            return 0.0
        return self.wcet_path_misses / fetches


def analyze_wcet(
    acfg: ACFG,
    config: CacheConfig,
    timing: TimingModel,
    backend: str = "structural",
    cache_analysis: Optional[CacheAnalysis] = None,
    with_may: bool = True,
    with_persistence: bool = True,
    locked_blocks: Optional[frozenset] = None,
    hierarchy=None,
    refine: bool = False,
    refine_budget: Optional[int] = None,
) -> WCETResult:
    """Run the full preliminary WCET analysis.

    Args:
        acfg: Program ACFG (built with the cache's block size).
        config: Cache configuration.
        timing: Timing model.
        backend: ``"structural"`` (exact DP, default) or ``"ilp"``
            (scipy/HiGHS IPET; slower, used for cross-validation).
        cache_analysis: Optionally reuse an existing classification
            (``refine`` is then the caller's business: the reused
            classification is taken as-is).
        with_may: Forwarded to :func:`repro.cache.classify.analyze_cache`
            (the WCET bound is identical either way; ``False`` is faster).
        with_persistence: Include the persistence ("first miss") domain.
            ``True`` is the tighter modern baseline; ``False`` is the
            classic must/may baseline of the paper's era — see
            EXPERIMENTS.md for the impact of this choice on the
            reproduced improvement magnitudes.
        locked_blocks: Hybrid locking+prefetching: blocks pinned in
            locked ways (always hit; ``config`` must then be the
            reduced-way residual configuration).
        hierarchy: Optional multi-level
            :class:`~repro.cache.config.HierarchyConfig` (its L1 must
            equal ``config`` and ``timing`` must carry the matching
            ``l2_hit_penalty_cycles``); adds the L2 must fixpoint and
            charges proven L2 hits the L2 service time.
        refine: Run the model-checking refinement
            (:mod:`repro.analysis.refine`) on the ``NOT_CLASSIFIED``
            references and apply its NC->AH / NC->AM promotions before
            computing ``t_w`` — and, in hierarchy mode, before deriving
            the L2 access plan, mirroring the staged pipeline's
            classify -> refine -> l2 order exactly.
        refine_budget: Exploration budget override
            (:data:`repro.analysis.refine.DEFAULT_BUDGET` when ``None``).

    Returns:
        The :class:`WCETResult`.
    """
    if cache_analysis is not None:
        cache = cache_analysis
    elif not refine:
        cache = analyze_cache(
            acfg,
            config,
            with_may=with_may,
            with_persistence=with_persistence,
            locked_blocks=locked_blocks,
            hierarchy=hierarchy,
        )
    else:
        from repro.analysis.refine import (
            apply_promotions,
            explore_concrete_states,
            refine_classifications,
        )

        # Promotions must land before the L2 plan is derived (an NC->AH
        # promotion removes the reference from the L2 access stream),
        # so in hierarchy mode the L1 analysis runs alone, refinement
        # is applied, and the L2 stage re-runs on the refined labels —
        # the exact stage order of the incremental pipeline.
        level2 = hierarchy.l2_level if hierarchy is not None else None
        cache = analyze_cache(
            acfg,
            config,
            # A second level implies the may analysis (see analyze_cache);
            # re-force it here since the L1-only call cannot know.
            with_may=with_may or level2 is not None,
            with_persistence=with_persistence,
            locked_blocks=locked_blocks,
            hierarchy=None,
        )
        exploration = explore_concrete_states(
            acfg, config, locked_blocks=locked_blocks, budget=refine_budget
        )
        promotions = refine_classifications(
            acfg,
            exploration,
            cache.classifications,
            persistence=level2 is None,
        )
        if promotions:
            cache.classifications = apply_promotions(
                cache.classifications, promotions
            )
        if level2 is not None:
            if hierarchy.l1 != config:
                raise AnalysisError(
                    f"hierarchy L1 {hierarchy.l1.label()} does not match "
                    f"the analysed configuration {config.label()}"
                )
            cache.l2_must = analyze_l2_must(
                acfg,
                level2.config,
                cache.classifications,
                locked_blocks,
                may=cache.may,
            )
            cache.l2_hits = l2_guaranteed_hits(
                acfg, cache.classifications, cache.l2_must
            )
    t_w = compute_ref_times(acfg, cache, timing)
    guarded = _latency_guard(acfg, cache, timing, t_w)
    for rid in guarded:
        t_w[rid] = float(timing.miss_cycles)
    if backend == "structural":
        solution = solve_wcet_path(acfg, t_w)
    elif backend == "ilp":
        ilp = solve_ipet(acfg, t_w)
        on_path = [count > 0 for count in ilp.n_w]
        solution = PathSolution(
            objective=ilp.objective,
            n_w=ilp.n_w,
            on_path=on_path,
            path=[rid for rid, used in enumerate(on_path) if used],
        )
    else:
        raise AnalysisError(f"unknown WCET backend {backend!r}")
    charged = _charged_persistent_blocks(acfg, cache, solution)
    return WCETResult(
        acfg=acfg,
        cache=cache,
        timing=timing,
        t_w=t_w,
        solution=solution,
        persistent_charged_blocks=charged,
        latency_guarded=guarded,
    )


def prefetch_lambda(cache, timing, prefetch_rid: int, target: int) -> int:
    """Λ of one prefetch: the worst-case cycles until its block lands.

    Single-level: always the DRAM transfer time
    (:attr:`TimingModel.prefetch_latency`).  Multi-level: when the L2
    must state entering the prefetch guarantees the target block is
    resident in L2, the transfer is served by L2 and Λ shrinks to the
    L2 hit penalty — the hierarchy's main effect on placement
    profitability (shorter Λ needs less slack to hide).
    """
    if timing.l2_hit_penalty_cycles is not None and cache.l2_must is not None:
        must_in = cache.l2_must.in_states[prefetch_rid]
        if must_in is not None and target in must_in:
            return timing.l2_hit_penalty_cycles
    return timing.prefetch_latency


def _latency_guard(
    acfg,
    cache,
    timing,
    t_w,
    boundary: int = 0,
    base_guarded: frozenset = frozenset(),
) -> frozenset:
    """References whose hit classification cannot be guaranteed in time.

    The abstract semantics install a prefetched block immediately; the
    hardware needs Λ cycles.  Any hit-classified reference to a
    prefetched block lying (on some path — minimum slack) closer than Λ
    behind the prefetch is therefore charged the miss latency, covering
    both straight-line and loop-carried (wrap-around) proximity.  This
    is the conservative counterpart of the prefetching-aware abstract
    semantics of the paper's ref. [22].

    Slack queries are batched: one DAG sweep per prefetch covers all its
    straight-line uses, and per loop instance the tail of the wrap-around
    slack is computed once and shared across the wrapped uses.  The
    sweeps replay exactly the per-pair recurrence, so the guarded set is
    identical to pairwise evaluation.

    ``boundary``/``base_guarded`` support the delta re-analysis of
    :mod:`repro.analysis.pipeline`: verdicts of uses below the
    divergence boundary are taken from ``base_guarded`` and only pairs
    with ``use >= boundary`` are recomputed.  Sound because after the
    boundary closure no slack span of a below-boundary use crosses the
    boundary (straight-line spans end at the use; a wrap-around span
    reaching past it would need a back edge from >= boundary into the
    prefix, which the closure rules out).
    """
    from repro.analysis.slack import (
        min_path_slacks,
        min_tail_slack,
        rest_instance_spans,
    )

    prefetches = [v for v in acfg.ref_vertices() if v.is_prefetch]
    if not prefetches:
        return frozenset()
    uses_by_block: dict = {}
    for vertex in acfg.ref_vertices():
        if vertex.is_prefetch:
            continue
        classification = cache.classifications[vertex.rid]
        assert classification is not None
        if classification.is_hit:
            uses_by_block.setdefault(acfg.block_of(vertex.rid), []).append(
                vertex.rid
            )
    spans = rest_instance_spans(acfg)
    guarded = {use for use in base_guarded if use < boundary}
    for prefetch in prefetches:
        target = acfg.target_block_or_none(prefetch.rid)
        if target is None:
            continue  # data prefetch: no instruction-cache effect
        latency = float(prefetch_lambda(cache, timing, prefetch.rid, target))
        uses = uses_by_block.get(target, ())
        straight = [
            use
            for use in uses
            if use > prefetch.rid and use >= boundary and use not in guarded
        ]
        if straight:
            slacks = min_path_slacks(acfg, t_w, prefetch.rid, straight)
            for use in straight:
                if slacks[use] < latency:
                    guarded.add(use)
        # Loop-carried proximity: prefetch late in the body, use early
        # in the next iteration of the same (innermost) instance.
        wrapped = [
            use
            for use in uses
            if use <= prefetch.rid and use >= boundary and use not in guarded
        ]
        if not wrapped:
            continue
        for join_rid, last_rid, exit_rids in reversed(spans):
            if not join_rid <= prefetch.rid <= last_rid:
                continue
            in_span = [use for use in wrapped if join_rid <= use]
            if in_span:
                tail = min_tail_slack(acfg, t_w, prefetch.rid, exit_rids)
                if not math.isinf(tail):
                    heads = min_path_slacks(acfg, t_w, join_rid, in_span)
                    for use in in_span:
                        if tail + heads[use] < latency:
                            guarded.add(use)
            break
    return frozenset(guarded)


def _charged_persistent_blocks(acfg, cache, solution) -> frozenset:
    """Blocks owing a one-time first-miss penalty.

    A persistent block is charged when it has an on-path PERSISTENT
    reference and no on-path reference already paying a full miss
    (which would cover the single real miss).
    """
    persistent: set = set()
    fully_charged: set = set()
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        if solution.n_w[rid] == 0:
            continue
        block = acfg.block_of(rid)
        classification = cache.classification(rid)
        if classification is Classification.PERSISTENT:
            persistent.add(block)
        elif not classification.is_hit:
            fully_charged.add(block)
    return frozenset(persistent - fully_charged)
