"""WCET analysis: timing model, structural/ILP IPET, end-to-end driver."""

from repro.analysis.ipet import ILPSolution, edge_list, solve_ipet
from repro.analysis.slack import (
    min_path_slack,
    rest_instance_spans,
    wraparound_slack,
)
from repro.analysis.structural import PathSolution, solve_wcet_path
from repro.analysis.timing import TimingModel
from repro.analysis.wcet import WCETResult, analyze_wcet, compute_ref_times

__all__ = [
    "ILPSolution",
    "PathSolution",
    "TimingModel",
    "WCETResult",
    "analyze_wcet",
    "compute_ref_times",
    "edge_list",
    "min_path_slack",
    "rest_instance_spans",
    "solve_ipet",
    "solve_wcet_path",
    "wraparound_slack",
]
