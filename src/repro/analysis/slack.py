"""Path-slack computations over the ACFG (Eq. 5 and variants).

Shared by the optimizer's joint improvement criterion
(:mod:`repro.core.profit`), the guarantee checkers, and the WCET
driver's prefetch-latency guard.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import OptimizationError
from repro.program.acfg import ACFG


def min_path_slack(
    acfg: ACFG,
    t_w: Sequence[float],
    from_rid: int,
    to_rid: int,
) -> float:
    """Minimum memory time between two vertices (conservative Eq. 5).

    Sums ``t_w`` over the references *strictly between* ``from_rid`` and
    ``to_rid`` along the cheapest DAG path; endpoint weights are
    excluded, matching Eq. 5's span ``r_{i+1} .. r_{j-1}``.

    Returns:
        The slack in cycles; ``inf`` when ``to_rid`` is unreachable from
        ``from_rid``.
    """
    if not 0 <= from_rid < len(acfg.vertices) or not 0 <= to_rid < len(acfg.vertices):
        raise OptimizationError("slack endpoints out of range")
    if to_rid <= from_rid:
        raise OptimizationError(
            f"slack requires from_rid < to_rid, got {from_rid} >= {to_rid}"
        )
    infinity = math.inf
    dist = [infinity] * (to_rid + 1)
    dist[from_rid] = 0.0
    for rid in range(from_rid + 1, to_rid + 1):
        best = infinity
        for pred in acfg.predecessors(rid):
            if pred >= from_rid and dist[pred] < best:
                best = dist[pred]
        if best is infinity:
            continue
        if rid == to_rid:
            return best  # exclude the endpoint's own weight
        weight = t_w[rid] if acfg.vertex(rid).is_ref else 0.0
        dist[rid] = best + weight
    return infinity


def min_path_slacks(
    acfg: ACFG,
    t_w: Sequence[float],
    from_rid: int,
    to_rids: Sequence[int],
) -> Dict[int, float]:
    """Batched :func:`min_path_slack`: one DP sweep, many targets.

    Computes ``{to: min_path_slack(acfg, t_w, from_rid, to)}`` for every
    ``to`` in ``to_rids`` with a single forward pass up to the largest
    target.  The recurrence, iteration order, and float additions are
    exactly those of the per-pair function, so results are bit-identical
    — a target that lies between ``from_rid`` and a later target also
    contributes its own weight to paths through it, just as it does in
    the per-pair DP.
    """
    if not to_rids:
        return {}
    if not 0 <= from_rid < len(acfg.vertices):
        raise OptimizationError("slack endpoints out of range")
    last = -1
    for to_rid in to_rids:
        if not 0 <= to_rid < len(acfg.vertices):
            raise OptimizationError("slack endpoints out of range")
        if to_rid <= from_rid:
            raise OptimizationError(
                f"slack requires from_rid < to_rid, got {from_rid} >= {to_rid}"
            )
        if to_rid > last:
            last = to_rid
    infinity = math.inf
    dist = [infinity] * (last + 1)
    dist[from_rid] = 0.0
    wanted = set(to_rids)
    out: Dict[int, float] = {}
    for rid in range(from_rid + 1, last + 1):
        best = infinity
        for pred in acfg.predecessors(rid):
            if pred >= from_rid and dist[pred] < best:
                best = dist[pred]
        if rid in wanted:
            out[rid] = best  # exclude the endpoint's own weight
        if best is infinity:
            continue
        weight = t_w[rid] if acfg.vertex(rid).is_ref else 0.0
        dist[rid] = best + weight
    return out


def min_tail_slack(
    acfg: ACFG,
    t_w: Sequence[float],
    evictor_rid: int,
    exit_rids: Sequence[int],
) -> float:
    """The loop-tail half of :func:`wraparound_slack`.

    ``min over latches e >= evictor of (minpath(evictor→e) + t_w(e))`` —
    independent of the use, so the latency guard computes it once per
    (prefetch, loop instance) and shares it across every wrapped use.
    """
    after = [e for e in exit_rids if e > evictor_rid]
    parts = min_path_slacks(acfg, t_w, evictor_rid, after) if after else {}
    best_tail = math.inf
    for exit_rid in exit_rids:
        if exit_rid == evictor_rid:
            tail = 0.0
        elif exit_rid > evictor_rid:
            weight = t_w[exit_rid] if acfg.vertex(exit_rid).is_ref else 0.0
            tail = parts[exit_rid] + weight
        else:
            continue
        best_tail = min(best_tail, tail)
    return best_tail


def wraparound_slack(
    acfg: ACFG,
    t_w: Sequence[float],
    evictor_rid: int,
    use_rid: int,
    join_rid: int,
    exit_rids: Sequence[int],
) -> float:
    """Eq. 5 slack for a loop-carried (wrap-around) reuse.

    The covered references are those from the anchor to the loop latch,
    plus those from the loop entry to the use:

    ``slack = min over latches e of (minpath(anchor→e) + t_w(e))
            + minpath(join→use)``.
    """
    best_tail = math.inf
    for exit_rid in exit_rids:
        if exit_rid == evictor_rid:
            tail = 0.0
        elif exit_rid > evictor_rid:
            part = min_path_slack(acfg, t_w, evictor_rid, exit_rid)
            weight = t_w[exit_rid] if acfg.vertex(exit_rid).is_ref else 0.0
            tail = part + weight
        else:
            continue
        best_tail = min(best_tail, tail)
    if best_tail is math.inf:
        return math.inf
    if use_rid <= join_rid:
        raise OptimizationError("wrap-around use must follow the loop join")
    head = min_path_slack(acfg, t_w, join_rid, use_rid)
    return best_tail + head


def rest_instance_spans(acfg: ACFG) -> List[Tuple[int, int, Tuple[int, ...]]]:
    """REST instance spans ``(entry_join, last_rid, exit_rids)``.

    Derived from the analysis-only back edges, sorted by entry join so
    ``reversed()`` visits innermost instances first.
    """
    by_join: Dict[int, List[int]] = {}
    for src, dst in acfg.back_edges:
        by_join.setdefault(dst, []).append(src)
    spans = [
        (join, max(exits), tuple(sorted(exits)))
        for join, exits in by_join.items()
    ]
    spans.sort()
    return spans
