"""Exact WCET-path computation on the ACFG (structural IPET).

The paper determines the WCET scenario with IPET (Section 3.2-3.3): an
ILP maximising ``Σ t_bb · n_bb`` under flow conservation.  On the
VIVU-expanded ACFG that optimum has a closed form: because every loop is
represented by a FIRST instance (executes once per entry) and a REST
instance (executes ``bound - 1`` times per entry), the IPET optimum is a
*maximum-weight source→sink path* through the DAG where each vertex
weighs ``t_w(r) × multiplier(r)`` — the multiplier being the product of
``bound - 1`` factors of the enclosing REST contexts
(:func:`repro.program.vivu.execution_multiplier`).

:func:`solve_wcet_path` computes that optimum by dynamic programming in
``O(|R| + |E|)`` and returns both the bound and the per-vertex execution
counts ``n^w`` (the paper's ``n_bb^w`` at reference granularity:
``multiplier`` on the chosen path, ``0`` elsewhere).

:mod:`repro.analysis.ipet` solves the same problem as an explicit ILP
(scipy/HiGHS) — the test suite asserts both agree, which is the
repository's substitute for validating against a commercial IPET
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.program.acfg import ACFG


@dataclass
class PathSolution:
    """Result of the WCET-path computation.

    Attributes:
        objective: The IPET optimum ``Σ t_w(r) · n^w(r)`` — the memory
            system's contribution to the WCET (``τ^p_w``, Eq. 3).
        n_w: Per-rid execution count in the WCET scenario.
        on_path: Per-rid indicator of membership in the WCET path.
        path: Vertex ids of the WCET path, source to sink.
    """

    objective: float
    n_w: List[int]
    on_path: List[bool]
    path: List[int]

    def count(self, rid: int) -> int:
        """``n^w`` of one vertex."""
        return self.n_w[rid]


def solve_wcet_path(acfg: ACFG, per_exec_time: Sequence[float]) -> PathSolution:
    """Maximum-weight path through the ACFG.

    Args:
        acfg: The program's ACFG (validated DAG).
        per_exec_time: ``t_w(r)`` for every rid — the per-execution
            worst-case memory time of the reference (0 for JOIN/SOURCE/
            SINK vertices).

    Returns:
        The WCET :class:`PathSolution`.
    """
    solution, _, _ = solve_wcet_path_tables(acfg, per_exec_time)
    return solution


def solve_wcet_path_tables(
    acfg: ACFG,
    per_exec_time: Sequence[float],
    warm: "Optional[tuple]" = None,
) -> "Tuple[PathSolution, List[float], List[int]]":
    """:func:`solve_wcet_path` exposing the DP tables for reuse.

    Args:
        warm: Optional ``(boundary, base_best, base_best_pred)`` from a
            previous solve: table entries of every vertex below
            ``boundary`` are copied and the sweep starts at ``boundary``.
            The caller must guarantee the prefix recurrence inputs
            (weights, predecessor lists) are unchanged — the prefix
            entries are copied, not recomputed, so warm results are
            bit-identical to a cold solve when that holds.

    Returns:
        ``(solution, best, best_pred)`` — the solution plus the filled
        DP tables (do not mutate; they may be shared with later warm
        solves).
    """
    n = len(acfg.vertices)
    if len(per_exec_time) != n:
        raise AnalysisError(
            f"per_exec_time has {len(per_exec_time)} entries, ACFG has {n}"
        )
    weight = [per_exec_time[rid] * acfg.multiplier[rid] for rid in range(n)]
    best = [float("-inf")] * n
    best_pred = [-1] * n
    start = 0
    if warm is not None:
        boundary, base_best, base_best_pred = warm
        if 0 < boundary <= n and len(base_best) >= boundary and len(
            base_best_pred
        ) >= boundary:
            best[:boundary] = base_best[:boundary]
            best_pred[:boundary] = base_best_pred[:boundary]
            start = boundary
    if start == 0:
        best[acfg.source] = weight[acfg.source]
    for rid in range(start, n):
        if rid == acfg.source:
            continue
        preds = acfg.predecessors(rid)
        if not preds:
            raise AnalysisError(f"vertex {rid} has no predecessors")
        # Deterministic tie-break: smallest rid among maximal predecessors.
        chosen = max(preds, key=lambda p: (best[p], -p))
        best[rid] = best[chosen] + weight[rid]
        best_pred[rid] = chosen

    path: List[int] = []
    cursor = acfg.sink
    while cursor != -1:
        path.append(cursor)
        cursor = best_pred[cursor]
    path.reverse()
    if path[0] != acfg.source:
        raise AnalysisError("WCET path does not start at the source")

    on_path = [False] * n
    for rid in path:
        on_path[rid] = True
    n_w = [acfg.multiplier[rid] if on_path[rid] else 0 for rid in range(n)]
    solution = PathSolution(
        objective=best[acfg.sink],
        n_w=n_w,
        on_path=on_path,
        path=path,
    )
    return solution, best, best_pred
