"""Split instruction/data cache simulation.

Runs a program through *two* memory machines sharing one clock: every
instruction is fetched through the instruction cache, and instructions
carrying a :class:`~repro.data.model.DataAccess` additionally access the
data cache (serially, after their fetch — the simple in-order timing the
rest of the library assumes).  Strided addresses resolve against the
executor's live loop-iteration counters, so array walks touch real
per-iteration addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.timing import TimingModel
from repro.cache.config import CacheConfig
from repro.data.model import DataKind
from repro.errors import SimulationError
from repro.program.cfg import ControlFlowGraph
from repro.program.layout import AddressLayout
from repro.sim.executor import Executor
from repro.sim.machine import MemorySystem
from repro.sim.trace import SimulationResult


@dataclass
class SplitSimulationResult:
    """Results of one split-cache run.

    Attributes:
        instruction: Instruction-cache side summary.
        data: Data-cache side summary (its ``fetches`` are data
            accesses).
        memory_cycles: Total memory time of the run (both sides).
    """

    instruction: SimulationResult
    data: SimulationResult
    memory_cycles: float

    @property
    def data_miss_rate(self) -> float:
        """Demand miss rate of the data side."""
        return self.data.miss_rate


def simulate_split(
    cfg: ControlFlowGraph,
    icache: CacheConfig,
    dcache: CacheConfig,
    timing: TimingModel,
    data_timing: Optional[TimingModel] = None,
    seed: int = 0,
    base_address: int = 0,
) -> SplitSimulationResult:
    """Execute ``cfg`` against split instruction/data caches.

    Args:
        cfg: Program (may contain instruction and data prefetches).
        icache: Instruction-cache configuration.
        dcache: Data-cache configuration.
        timing: Instruction-side timing model.
        data_timing: Data-side timing (defaults to ``timing``).
        seed: Executor seed.
        base_address: Code base address.

    Returns:
        The :class:`SplitSimulationResult`.
    """
    dtiming = data_timing or timing
    layout = AddressLayout(cfg, base_address)
    data_layout = cfg.data_layout
    imachine = MemorySystem(icache, timing)
    dmachine = MemorySystem(dcache, dtiming)
    imachine.result.program = cfg.name
    dmachine.result.program = cfg.name

    executor = Executor(cfg, seed=seed)
    i_time = 0.0
    d_time = 0.0
    for block in executor.run():
        for instr in block.instructions:
            address = layout.address(instr.uid)
            is_code_prefetch = (
                instr.is_prefetch and instr.prefetch_target is not None
            )
            cycles = imachine.fetch(address, is_prefetch_instr=instr.is_prefetch)
            i_time += cycles
            dmachine.advance(cycles)
            if instr.is_prefetch:
                imachine.result.prefetch_instructions += 1
            if is_code_prefetch:
                target_block = icache.block_of_address(
                    layout.address(instr.prefetch_target)
                )
                imachine.issue_prefetch(target_block)
                continue
            access = instr.data_access
            if access is None:
                continue
            if data_layout is None:
                raise SimulationError(
                    "program performs data accesses but has no data layout"
                )
            iteration = 0
            if access.stride_loop is not None:
                iteration = executor.loop_iteration.get(access.stride_loop, 0)
            data_address = data_layout.address_of(access, iteration)
            if access.kind is DataKind.PREFETCH:
                dmachine.issue_prefetch(dcache.block_of_address(data_address))
            else:
                data_cycles = dmachine.fetch(data_address)
                d_time += data_cycles
                imachine.advance(data_cycles)

    iresult = imachine.result
    dresult = dmachine.result
    iresult.memory_cycles = i_time
    dresult.memory_cycles = d_time
    return SplitSimulationResult(
        instruction=iresult,
        data=dresult,
        memory_cycles=i_time + d_time,
    )
