"""WCET-safe *data* prefetch insertion (the paper's Section-6 program).

A direct generalization of the instruction-side optimizer: find data
accesses that still pay for a miss in the worst case, insert a software
data prefetch far enough upstream to hide the data-cache latency, and
keep the insertion only if the *combined* (instruction + data) memory
contribution to the WCET does not grow while the worst-case data miss
count shrinks — Theorem 1 extended to the split-cache system.

Candidates are restricted to accesses with statically exact addresses
(scalars, and array walks in their FIRST iteration context): an
input-dependent address cannot be prefetched by a static instruction.
Streaming (strided) accesses are prefetched with the same stride, so
the inserted instruction prefetches the *current* iteration's block —
the classic software data-prefetch idiom; its worst-case benefit is
assessed conservatively through the exact-context analysis.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.analysis.slack import min_path_slack
from repro.analysis.timing import TimingModel
from repro.cache.classify import Classification
from repro.cache.config import CacheConfig
from repro.core.relocation import insertion_point_after
from repro.data.analysis import (
    CombinedWCET,
    combined_wcet,
    data_access_of,
    exact_data_block,
)
from repro.data.model import DataAccess, DataKind
from repro.errors import OptimizationError
from repro.program.acfg import build_acfg
from repro.program.cfg import ControlFlowGraph

#: Numerical slack for float comparisons.
_EPS = 1e-6


@dataclass
class DataPrefetchReport:
    """Outcome of :func:`optimize_data`.

    Attributes:
        tau_original: Combined τ_w before optimization.
        tau_final: Combined τ_w after.
        data_misses_original: Worst-case data misses before.
        data_misses_final: Worst-case data misses after.
        inserted: ``(block_name, index, region, offset)`` per accepted
            prefetch.
        candidates_evaluated: Gate evaluations performed.
    """

    tau_original: float
    tau_final: float
    data_misses_original: int
    data_misses_final: int
    inserted: List[Tuple[str, int, str, int]] = field(default_factory=list)
    candidates_evaluated: int = 0

    @property
    def wcet_reduction(self) -> float:
        """Relative combined τ_w reduction."""
        if self.tau_original == 0:
            return 0.0
        return 1.0 - self.tau_final / self.tau_original


def optimize_data(
    cfg: ControlFlowGraph,
    icache: CacheConfig,
    dcache: CacheConfig,
    timing: TimingModel,
    data_timing: Optional[TimingModel] = None,
    max_insertions: int = 64,
    max_evaluations: Optional[int] = 200,
    inplace: bool = False,
) -> Tuple[ControlFlowGraph, DataPrefetchReport]:
    """Insert WCET-safe data prefetches into ``cfg``.

    Args:
        cfg: Program with data accesses (not mutated unless ``inplace``).
        icache: Instruction-cache configuration.
        dcache: Data-cache configuration.
        timing: Instruction-side timing.
        data_timing: Data-side timing (defaults to ``timing``).
        max_insertions: Cap on accepted prefetches.
        max_evaluations: Gate-evaluation budget (``None`` = unlimited).
        inplace: Mutate ``cfg`` instead of a clone.

    Returns:
        ``(optimized_program, report)`` with the combined τ_w provably
        not increased.
    """
    dtiming = data_timing or timing
    work = cfg if inplace else cfg.clone()
    acfg = build_acfg(work, icache.block_size)
    combined = combined_wcet(acfg, icache, dcache, timing, dtiming)
    report = DataPrefetchReport(
        tau_original=combined.tau_w,
        tau_final=combined.tau_w,
        data_misses_original=combined.data_misses,
        data_misses_final=combined.data_misses,
    )
    rejected: Set[Tuple] = set()
    evaluations = 0

    while len(report.inserted) < max_insertions:
        accepted = False
        for rid, access, block in _candidates(acfg, combined, dcache):
            key = (acfg.vertex(rid).instr.uid, acfg.vertex(rid).context)
            if key in rejected:
                continue
            anchor = _anchor_with_slack(
                acfg, combined, rid, float(dtiming.prefetch_latency)
            )
            if anchor is None:
                rejected.add(key)
                continue
            point = insertion_point_after(acfg, anchor)
            if point is None:
                rejected.add(key)
                continue
            if max_evaluations is not None and evaluations >= max_evaluations:
                return work, report
            evaluations += 1
            report.candidates_evaluated = evaluations
            prefetch_access = dataclasses.replace(
                access, kind=DataKind.PREFETCH
            )
            prefetch = work.insert_data_prefetch(
                point.block_name, point.index, prefetch_access
            )
            new_acfg = build_acfg(work, icache.block_size)
            new_combined = combined_wcet(
                new_acfg, icache, dcache, timing, dtiming
            )
            if (
                new_combined.tau_w <= combined.tau_w + _EPS
                and new_combined.data_misses < combined.data_misses
            ):
                report.inserted.append(
                    (point.block_name, point.index, access.region, access.offset)
                )
                acfg, combined = new_acfg, new_combined
                accepted = True
                break
            work.remove_prefetch(prefetch.uid)
            rejected.add(key)
        if not accepted:
            break

    report.tau_final = combined.tau_w
    report.data_misses_final = combined.data_misses
    if report.tau_final > report.tau_original + _EPS:
        raise OptimizationError(
            "data prefetching must not increase the combined WCET"
        )
    return work, report


def _candidates(acfg, combined: CombinedWCET, dcache: CacheConfig):
    """On-path exact-address data accesses still paying for misses."""
    out = []
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        if combined.solution.n_w[rid] == 0:
            continue
        access = data_access_of(acfg, rid)
        if access is None or access.kind is DataKind.PREFETCH:
            continue
        classification = combined.data.classification(rid)
        if classification is None or classification is Classification.ALWAYS_HIT:
            continue
        block = exact_data_block(acfg, rid, dcache.block_size)
        if block is None:
            continue
        out.append((rid, access, block))
    # Heaviest misses first: the greedy order that pays off soonest.
    out.sort(key=lambda item: -combined.solution.n_w[item[0]])
    return out


def _anchor_with_slack(
    acfg, combined: CombinedWCET, use_rid: int, latency: float
) -> Optional[int]:
    """Earliest upstream reference with >= ``latency`` of path slack.

    Walks the combined WCET path backwards from the use; the first
    position whose minimum combined-time distance to the use covers the
    latency becomes the insertion anchor.
    """
    path = combined.solution.path
    try:
        position = path.index(use_rid)
    except ValueError:
        return None
    best: Optional[int] = None
    for back in range(position - 1, -1, -1):
        rid = path[back]
        if not acfg.vertex(rid).is_ref:
            continue
        slack = min_path_slack(acfg, combined.t_total, rid, use_rid)
        if slack >= latency:
            best = rid
            break
    return best
