"""WCET analysis of the unlocked *data* cache.

The generalization the paper's Section 6 announces, using the exact
machinery the instruction side already has: the same abstract domains
(must / may / persistence) run over the ACFG, but with a **data access
plan** instead of the fetch stream:

* a scalar access (stride 0) has an exact block at every vertex;
* an array-walking access is exact in the FIRST context of its striding
  loop (iteration 1) and statically unknown in REST contexts — the
  conservative transfer ages every set (see
  :meth:`repro.cache.abstract.AbstractCacheState.unknown_access`);
* stores behave like loads cache-wise (write-allocate);
* software *data* prefetches update the state at their target when the
  target is exact.

The combined WCET (:func:`combined_wcet`) adds each vertex's data time
to its instruction-fetch time and solves one IPET path over the sum —
memory time is memory time, whichever cache serves it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.structural import PathSolution, solve_wcet_path
from repro.analysis.timing import TimingModel
from repro.analysis.wcet import WCETResult, analyze_wcet
from repro.cache.abstract import MayState, MustState
from repro.cache.classify import (
    Classification,
    DataflowResult,
    UNKNOWN_ACCESS,
    propagate,
)
from repro.cache.config import CacheConfig
from repro.cache.persistence import PersistenceState
from repro.data.model import DataAccess, DataKind
from repro.errors import AnalysisError
from repro.program.acfg import ACFG
from repro.program.vivu import FIRST


def data_access_of(acfg: ACFG, rid: int) -> Optional[DataAccess]:
    """The vertex's data access, or ``None``."""
    vertex = acfg.vertex(rid)
    if vertex.instr is None:
        return None
    return vertex.instr.data_access  # type: ignore[return-value]


def exact_data_block(
    acfg: ACFG, rid: int, block_size: int
) -> Optional[int]:
    """The statically exact data block of a vertex's access, if any.

    Scalar accesses are always exact.  Strided accesses are exact only
    when the vertex's context takes the striding loop's FIRST element
    (iteration 1 — offset contribution 0).
    """
    access = data_access_of(acfg, rid)
    if access is None:
        return None
    layout = acfg.cfg.data_layout
    if layout is None:
        raise AnalysisError("program has data accesses but no data layout")
    if access.stride == 0:
        return layout.region(access.region).address(access.offset) // block_size
    vertex = acfg.vertex(rid)
    for element in vertex.context:
        if element.name == access.stride_loop:
            if element.kind == FIRST:
                return (
                    layout.region(access.region).address(access.offset)
                    // block_size
                )
            return None  # REST: input-dependent address
    return None  # access outside its striding loop's context: be safe


def build_data_plan(
    acfg: ACFG, config: CacheConfig
) -> List[Optional[tuple]]:
    """The per-vertex access plan of the data cache."""
    plan: List[Optional[tuple]] = [None] * len(acfg.vertices)
    for vertex in acfg.ref_vertices():
        access = data_access_of(acfg, vertex.rid)
        if access is None:
            continue
        block = exact_data_block(acfg, vertex.rid, config.block_size)
        if block is None:
            plan[vertex.rid] = (UNKNOWN_ACCESS,)
        else:
            plan[vertex.rid] = (block,)
    return plan


@dataclass
class DataCacheAnalysis:
    """Classification of every data access.

    Attributes:
        config: Data-cache configuration.
        classifications: Per-rid classification (``None`` where the
            vertex performs no data access).
        must: Must-domain results over the data plan.
        may: May-domain results (or ``None``).
        persistence: Persistence results (or ``None``).
    """

    config: CacheConfig
    classifications: List[Optional[Classification]]
    must: DataflowResult
    may: Optional[DataflowResult]
    persistence: Optional[DataflowResult]

    def classification(self, rid: int) -> Optional[Classification]:
        """Data classification of a vertex (``None`` = no data access)."""
        return self.classifications[rid]

    def count(self, kind: Classification) -> int:
        """Number of data accesses with the given classification."""
        return sum(1 for c in self.classifications if c is kind)


def analyze_data_cache(
    acfg: ACFG,
    config: CacheConfig,
    with_may: bool = True,
    with_persistence: bool = True,
) -> DataCacheAnalysis:
    """Classify every data access of ``acfg`` under a data cache.

    Accesses with statically unknown addresses are ``NOT_CLASSIFIED``
    (always charged the miss latency) and conservatively disturb the
    abstract states.
    """
    plan = build_data_plan(acfg, config)
    must = propagate(acfg, config, MustState(config), plan=plan)
    may = (
        propagate(acfg, config, MayState(config), plan=plan)
        if with_may
        else None
    )
    persistence = (
        propagate(acfg, config, PersistenceState(config), plan=plan)
        if with_persistence
        else None
    )
    classifications: List[Optional[Classification]] = [None] * len(acfg.vertices)
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        if plan[rid] is None:
            continue
        op = plan[rid][0]
        if op == UNKNOWN_ACCESS:
            classifications[rid] = Classification.NOT_CLASSIFIED
            continue
        must_in = must.in_states[rid]
        may_in = may.in_states[rid] if may is not None else None
        pers_in = persistence.in_states[rid] if persistence is not None else None
        if must_in is not None and op in must_in:
            classifications[rid] = Classification.ALWAYS_HIT
        elif pers_in is not None and pers_in.is_persistent(op):
            classifications[rid] = Classification.PERSISTENT
        elif may is not None and may_in is not None and op not in may_in:
            classifications[rid] = Classification.ALWAYS_MISS
        else:
            classifications[rid] = Classification.NOT_CLASSIFIED
    return DataCacheAnalysis(config, classifications, must, may, persistence)


def data_ref_times(
    acfg: ACFG,
    analysis: DataCacheAnalysis,
    timing: TimingModel,
) -> List[float]:
    """Per-execution worst-case *data* memory time per vertex.

    A data-prefetch access costs nothing here beyond its issue slot
    (charged on the instruction side); loads/stores cost the data
    cache's hit or miss latency.
    """
    times = [0.0] * len(acfg.vertices)
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        access = data_access_of(acfg, rid)
        if access is None:
            continue
        if access.kind is DataKind.PREFETCH:
            continue  # non-blocking transfer; issue slot charged as code
        classification = analysis.classification(rid)
        assert classification is not None
        if classification.is_hit:
            times[rid] = float(timing.hit_cycles)
        else:
            times[rid] = float(timing.miss_cycles)
    return times


@dataclass
class CombinedWCET:
    """Unified instruction+data WCET of one program.

    Attributes:
        instruction: The instruction-side analysis (its ``tau_w``
            includes only code fetch time).
        data: Data-cache classification.
        t_total: Per-vertex combined time (fetch + data).
        solution: IPET path over the combined weights.
        data_persistent_charged: Persistent data blocks charged one
            first-miss each.
        data_miss_penalty: Data-side miss penalty (cycles) used for the
            persistence charges.
    """

    instruction: WCETResult
    data: DataCacheAnalysis
    t_total: List[float]
    solution: PathSolution
    data_persistent_charged: frozenset
    data_miss_penalty: float

    @property
    def data_persistence_penalty(self) -> float:
        """One-time first-miss charges of persistent data blocks."""
        return len(self.data_persistent_charged) * self.data_miss_penalty

    @property
    def tau_w(self) -> float:
        """Combined memory contribution to the WCET."""
        return (
            self.solution.objective
            + self.instruction.persistence_penalty
            + self.data_persistence_penalty
        )

    @property
    def data_misses(self) -> int:
        """Worst-case data misses along the combined path (including
        one first-miss per charged persistent data block)."""
        total = len(self.data_persistent_charged)
        for vertex in self.instruction.acfg.ref_vertices():
            rid = vertex.rid
            classification = self.data.classification(rid)
            access = data_access_of(self.instruction.acfg, rid)
            if access is None or access.kind is DataKind.PREFETCH:
                continue
            if self.solution.n_w[rid] and not (
                classification is not None and classification.is_hit
            ):
                total += self.solution.n_w[rid]
        return total


def combined_wcet(
    acfg: ACFG,
    icache: CacheConfig,
    dcache: CacheConfig,
    timing: TimingModel,
    data_timing: Optional[TimingModel] = None,
    with_persistence: bool = True,
) -> CombinedWCET:
    """WCET with split instruction/data caches.

    Args:
        acfg: The program's ACFG (built with the *instruction* cache's
            block size).
        icache: Instruction-cache configuration.
        dcache: Data-cache configuration.
        timing: Instruction-side timing.
        data_timing: Data-side timing (defaults to ``timing``).
        with_persistence: Analysis fidelity for both sides.

    Returns:
        The :class:`CombinedWCET`.
    """
    dtiming = data_timing or timing
    instruction = analyze_wcet(
        acfg, icache, timing, with_persistence=with_persistence
    )
    data = analyze_data_cache(
        acfg, dcache, with_persistence=with_persistence
    )
    t_data = data_ref_times(acfg, data, dtiming)
    t_total = [
        instruction.t_w[rid] + t_data[rid]
        for rid in range(len(acfg.vertices))
    ]
    solution = solve_wcet_path(acfg, t_total)
    charged = set()
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        if solution.n_w[rid] == 0:
            continue
        if data.classification(rid) is Classification.PERSISTENT:
            block = exact_data_block(acfg, rid, dcache.block_size)
            if block is not None:
                charged.add(block)
    return CombinedWCET(
        instruction=instruction,
        data=data,
        t_total=t_total,
        solution=solution,
        data_persistent_charged=frozenset(charged),
        data_miss_penalty=float(dtiming.miss_penalty_cycles),
    )