"""Data-access model for the unlocked *data* cache extension.

Section 6 of the paper: "We also intend to generalize our algorithms for
handling unlocked data caches."  This package is that generalization,
built on the same substrate:

* instructions may carry a :class:`DataAccess` — a load/store/prefetch
  against a named :class:`DataRegion`,
* scalar accesses (fixed offset) have an exact address; array-walking
  accesses carry a ``stride`` against their innermost loop, so their
  address is exact in the loop's FIRST context (iteration 1) and
  input-dependent in REST contexts — the standard precision split of
  WCET data-cache analyses,
* the data segment lives at :data:`DATA_SEGMENT_BASE`, far above any
  code, so code and data block ids never collide even though both flow
  through the same abstract domains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ProgramModelError

#: Base byte address of the data segment (code starts near 0).
DATA_SEGMENT_BASE = 1 << 24


class DataKind(enum.Enum):
    """What a data access does."""

    LOAD = "load"
    STORE = "store"
    PREFETCH = "prefetch"


@dataclass(frozen=True)
class DataRegion:
    """A named data object (array, struct, scalar).

    Attributes:
        name: Unique region name.
        size: Byte size.
        base: Byte address (assigned by :class:`DataLayout`).
    """

    name: str
    size: int
    base: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ProgramModelError(
                f"data region {self.name!r} must have positive size"
            )

    def address(self, offset: int) -> int:
        """Byte address of ``offset`` within the region (bounds-checked)."""
        if not 0 <= offset < self.size:
            raise ProgramModelError(
                f"offset {offset} outside region {self.name!r} "
                f"of size {self.size}"
            )
        return self.base + offset


@dataclass(frozen=True)
class DataAccess:
    """One data-memory access attached to an instruction.

    Attributes:
        kind: Load, store, or software data prefetch.
        region: Name of the accessed :class:`DataRegion`.
        offset: Byte offset of the *first* access within the region.
        stride: Bytes advanced per iteration of ``stride_loop`` (0 for
            scalars).
        stride_loop: Name of the loop whose iterations advance the
            address (``None`` for scalars).  The address is statically
            exact whenever the access's VIVU context takes this loop's
            FIRST element; in REST contexts it is input-dependent and
            analysed conservatively.
    """

    kind: DataKind
    region: str
    offset: int = 0
    stride: int = 0
    stride_loop: Optional[str] = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ProgramModelError("data access offset must be >= 0")
        if (self.stride != 0) != (self.stride_loop is not None):
            raise ProgramModelError(
                "stride and stride_loop must be given together"
            )


class DataLayout:
    """Assigns base addresses to data regions in the data segment."""

    def __init__(self, base_address: int = DATA_SEGMENT_BASE):
        self.base_address = base_address
        self._regions: Dict[str, DataRegion] = {}
        self._next = base_address

    def add_region(self, name: str, size: int, align: int = 16) -> DataRegion:
        """Place a new region after the existing ones (aligned)."""
        if name in self._regions:
            raise ProgramModelError(f"duplicate data region {name!r}")
        if align <= 0 or align & (align - 1):
            raise ProgramModelError(f"alignment must be a power of two")
        start = (self._next + align - 1) & ~(align - 1)
        region = DataRegion(name=name, size=size, base=start)
        self._regions[name] = region
        self._next = start + size
        return region

    def region(self, name: str) -> DataRegion:
        """Look up a region by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise ProgramModelError(f"unknown data region {name!r}") from None

    def regions(self) -> Dict[str, DataRegion]:
        """All regions by name (copy)."""
        return dict(self._regions)

    @property
    def segment_size(self) -> int:
        """Bytes of data segment in use."""
        return self._next - self.base_address

    def address_of(self, access: DataAccess, iteration: int = 0) -> int:
        """Concrete address of an access at a given loop iteration."""
        region = self.region(access.region)
        offset = access.offset + access.stride * iteration
        # Streaming accesses wrap within their region (circular buffers),
        # keeping simulated traces well-defined for any trip count.
        if region.size:
            offset %= region.size
        return region.base + offset
