"""Unlocked data-cache extension (the paper's Section-6 future work).

Data accesses on instructions, split-cache WCET analysis, split-cache
simulation, and WCET-safe data prefetch insertion::

    from repro.data import combined_wcet, optimize_data, simulate_split

    b = ProgramBuilder("dsp")
    b.data_region("samples", 4096)
    with b.loop(bound=64):
        b.load("samples", stride=4)
        b.code(6)
    cfg = b.build()

    optimized, report = optimize_data(cfg, icache, dcache, timing)
"""

from repro.data.analysis import (
    CombinedWCET,
    DataCacheAnalysis,
    analyze_data_cache,
    build_data_plan,
    combined_wcet,
    data_access_of,
    data_ref_times,
    exact_data_block,
)
from repro.data.machine import SplitSimulationResult, simulate_split
from repro.data.model import (
    DATA_SEGMENT_BASE,
    DataAccess,
    DataKind,
    DataLayout,
    DataRegion,
)
from repro.data.prefetch import DataPrefetchReport, optimize_data

__all__ = [
    "CombinedWCET",
    "DATA_SEGMENT_BASE",
    "DataAccess",
    "DataCacheAnalysis",
    "DataKind",
    "DataLayout",
    "DataPrefetchReport",
    "DataRegion",
    "SplitSimulationResult",
    "analyze_data_cache",
    "build_data_plan",
    "combined_wcet",
    "data_access_of",
    "data_ref_times",
    "exact_data_block",
    "optimize_data",
    "simulate_split",
]
