"""Lightweight instrumentation of sweep runs.

A sweep over the paper's grid spends hours in the optimizer; without
numbers it is impossible to tell whether a slow run is recomputing
cached work, starving its workers, or stuck on one pathological use
case.  :class:`SweepMetrics` collects, per use case, where the result
came from (computed / disk cache / in-process cache), how long it took,
and how much optimizer work it cost — plus sweep-level cache counters
and the set of worker processes that actually ran, which is how the
tests prove the parallel path really fans out.

The collector is passed into :func:`repro.experiments.sweep.run_sweep`
by the caller (the ``repro sweep`` CLI creates one and prints
:meth:`SweepMetrics.summary`); it is plain data, cheap enough to be on
by default in the CLI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.usecase import UseCase, UseCaseResult

#: Where one use-case result came from.
SOURCE_COMPUTED = "computed"
SOURCE_DISK = "disk"
SOURCE_MEMORY = "memory"

_SOURCES = (SOURCE_COMPUTED, SOURCE_DISK, SOURCE_MEMORY)


@dataclass(frozen=True)
class UseCaseMetrics:
    """Measurements of one use-case evaluation within a sweep.

    Attributes:
        usecase: The evaluation point.
        source: ``"computed"``, ``"disk"`` or ``"memory"``.
        wall_time_s: Wall-clock seconds spent producing the result
            (0.0 for cache hits — the lookup cost is noise).
        evaluations: Optimizer candidate re-analyses the result cost
            when it was (originally) computed.
        prefetches: Accepted prefetch insertions.
        worker_pid: OS pid of the process that produced the result.
        pipeline: Analysis-pipeline cache counters of the run
            (hits/misses/delta runs...; empty for records produced
            before the pipeline existed).
    """

    usecase: UseCase
    source: str
    wall_time_s: float
    evaluations: int
    prefetches: int
    worker_pid: int
    pipeline: Dict[str, int] = field(default_factory=dict)


@dataclass
class SweepMetrics:
    """Accumulates per-use-case metrics over one sweep run.

    Attributes:
        records: One entry per use case, in completion order.
        workers: Resolved worker count of the run (1 = serial).
        parallel: Whether the process-pool path actually ran.
        failures: One :class:`~repro.experiments.sweep.FailureRecord`
            per permanently failed use case (duck-typed to avoid a
            circular import).
        retries: Transient-fault retries performed across the sweep.
        pool_rebuilds: Times a broken process pool was rebuilt.
    """

    records: List[UseCaseMetrics] = field(default_factory=list)
    workers: int = 1
    parallel: bool = False
    failures: List[object] = field(default_factory=list)
    retries: int = 0
    pool_rebuilds: int = 0

    def record(
        self,
        usecase: UseCase,
        result: UseCaseResult,
        source: str,
        wall_time_s: float = 0.0,
        worker_pid: int = 0,
    ) -> UseCaseMetrics:
        """Add one use case's measurements.

        Args:
            usecase: The evaluation point.
            result: Its result (evaluation/prefetch counts come from the
                embedded report).
            source: One of ``"computed"``/``"disk"``/``"memory"``.
            wall_time_s: Wall time spent computing (0.0 for hits).
            worker_pid: Producing process (defaults to this process).
        """
        if source not in _SOURCES:
            raise ValueError(f"unknown metrics source {source!r}")
        entry = UseCaseMetrics(
            usecase=usecase,
            source=source,
            wall_time_s=wall_time_s,
            evaluations=result.report.candidates_evaluated,
            prefetches=result.report.prefetch_count,
            worker_pid=worker_pid or os.getpid(),
            pipeline=dict(getattr(result.report, "pipeline", {}) or {}),
        )
        self.records.append(entry)
        return entry

    def record_failure(self, record) -> None:
        """Add one permanently failed use case's failure record."""
        self.failures.append(record)

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def cases(self) -> int:
        """Use cases accounted for."""
        return len(self.records)

    @property
    def failed(self) -> int:
        """Use cases that failed permanently."""
        return len(self.failures)

    def count(self, source: str) -> int:
        """Number of records with the given source."""
        return sum(1 for r in self.records if r.source == source)

    @property
    def computed(self) -> int:
        """Results computed from scratch."""
        return self.count(SOURCE_COMPUTED)

    @property
    def disk_hits(self) -> int:
        """Results served from the on-disk cache."""
        return self.count(SOURCE_DISK)

    @property
    def memory_hits(self) -> int:
        """Results served from the in-process sweep cache."""
        return self.count(SOURCE_MEMORY)

    @property
    def compute_time_s(self) -> float:
        """Total wall time spent computing (sums worker time)."""
        return sum(r.wall_time_s for r in self.records)

    @property
    def evaluations(self) -> int:
        """Total optimizer candidate evaluations."""
        return sum(r.evaluations for r in self.records)

    @property
    def prefetches(self) -> int:
        """Total accepted prefetch insertions."""
        return sum(r.prefetches for r in self.records)

    def pipeline_totals(self) -> Dict[str, int]:
        """Summed analysis-pipeline counters across all recorded cases."""
        totals: Dict[str, int] = {}
        for record in self.records:
            for name, value in record.pipeline.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def worker_pids(self) -> Tuple[int, ...]:
        """Distinct pids that computed results (cache hits excluded)."""
        return tuple(
            sorted(
                {r.worker_pid for r in self.records if r.source == SOURCE_COMPUTED}
            )
        )

    def slowest(self, limit: int = 5) -> List[UseCaseMetrics]:
        """The ``limit`` most expensive computed use cases."""
        computed = [r for r in self.records if r.source == SOURCE_COMPUTED]
        computed.sort(key=lambda r: r.wall_time_s, reverse=True)
        return computed[:limit]

    def by_source(self) -> Dict[str, int]:
        """Record counts per source, all sources present."""
        return {source: self.count(source) for source in _SOURCES}

    def summary(self) -> str:
        """Human-readable sweep summary (the CLI's footer)."""
        lines = [
            f"sweep: {self.cases} use cases "
            f"({self.computed} computed, {self.disk_hits} from disk cache, "
            f"{self.memory_hits} from memory cache)",
            f"workers: {self.workers}"
            + (" (process pool)" if self.parallel else " (serial)"),
            f"optimizer: {self.evaluations} candidate evaluations, "
            f"{self.prefetches} prefetches inserted",
            f"compute time: {self.compute_time_s:.2f}s across "
            f"{max(len(self.worker_pids()), 1)} process(es)",
        ]
        if self.failed or self.retries or self.pool_rebuilds:
            lines.append(
                f"faults: {self.failed} failed, {self.retries} retries, "
                f"{self.pool_rebuilds} pool rebuild(s)"
            )
            for record in self.failures:
                usecase = record.usecase
                lines.append(
                    f"  FAILED {usecase.program}/{usecase.config_id}/"
                    f"{usecase.tech}: {record.error_type}: "
                    f"{record.message} (attempts={record.attempts})"
                )
        totals = self.pipeline_totals()
        if totals:
            delta = totals.get("delta_runs", 0)
            cold = totals.get("cold_runs", 0)
            lines.append(
                f"pipeline: {delta} delta / {cold} cold analyses, "
                f"{totals.get('delta_fallbacks', 0)} fallbacks, "
                f"{totals.get('transfer_hits', 0)} transfer hits, "
                f"{totals.get('structural_hits', 0)} structural hits, "
                f"{totals.get('invalidations', 0)} invalidations"
            )
        worst = self.slowest(3)
        if worst:
            slowest = ", ".join(
                f"{r.usecase.program}/{r.usecase.config_id}/{r.usecase.tech} "
                f"{r.wall_time_s:.2f}s"
                for r in worst
            )
            lines.append(f"slowest: {slowest}")
        return "\n".join(lines)
