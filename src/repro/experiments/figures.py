"""Data generators for every figure of the paper's evaluation.

Each ``figure*`` function returns plain data structures (rows/series)
matching what the paper plots; :mod:`repro.experiments.report` renders
them as text tables.  The benchmark harness has one module per figure
that calls these and prints the series next to the paper's reference
values (recorded in EXPERIMENTS.md).

* Figure 3 — average improvement in energy, ACET and WCET per cache
  capacity (paper overall averages: energy 11.2 %, ACET 10.2 %, WCET
  17.4 %).
* Figure 4 — miss-rate impact per capacity.
* Figure 5 — energy/ACET/WCET with the optimized program on 1/2 and
  1/4 capacity (paper: savings up to 21 %, WCET never grew).
* Figure 7 — per-use-case WCET ratio at 32 nm (all < 1).
* Figure 8 — executed-instruction ratio (paper max: +1.32 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.sweep import (
    SweepSpec,
    average,
    default_grid,
    group_by_capacity,
    run_sweep,
)
from repro.experiments.usecase import (
    UseCase,
    UseCaseResult,
    run_cross_capacity,
)


@dataclass
class CapacitySeries:
    """One per-capacity series: capacity (bytes) -> value."""

    label: str
    points: Dict[int, float] = field(default_factory=dict)

    def as_rows(self) -> List[Tuple[int, float]]:
        """Sorted (capacity, value) pairs."""
        return sorted(self.points.items())


@dataclass
class Figure3Data:
    """Average improvements (fractions, 0.112 = 11.2 %) per capacity.

    ``energy`` charges software prefetch DRAM transfers (physical
    model); ``energy_paper_mode`` does not (the paper's apparent
    accounting — see EXPERIMENTS.md).
    """

    energy: CapacitySeries
    energy_paper_mode: CapacitySeries
    acet: CapacitySeries
    wcet: CapacitySeries
    overall_energy: float
    overall_energy_paper_mode: float
    overall_acet: float
    overall_wcet: float


def figure3(spec: Optional[SweepSpec] = None) -> Figure3Data:
    """Figure 3: impact on energy efficiency vs cache capacity."""
    results = run_sweep(spec or default_grid())
    buckets = group_by_capacity(results)
    energy = CapacitySeries("energy improvement")
    energy_paper = CapacitySeries("energy (paper mode)")
    acet = CapacitySeries("ACET improvement")
    wcet = CapacitySeries("WCET improvement")
    for capacity, bucket in buckets.items():
        energy.points[capacity] = 1.0 - average(r.energy_ratio for r in bucket)
        energy_paper.points[capacity] = 1.0 - average(
            r.energy_ratio_paper_mode for r in bucket
        )
        acet.points[capacity] = 1.0 - average(r.acet_ratio for r in bucket)
        wcet.points[capacity] = 1.0 - average(r.wcet_ratio for r in bucket)
    return Figure3Data(
        energy=energy,
        energy_paper_mode=energy_paper,
        acet=acet,
        wcet=wcet,
        overall_energy=1.0 - average(r.energy_ratio for r in results),
        overall_energy_paper_mode=1.0
        - average(r.energy_ratio_paper_mode for r in results),
        overall_acet=1.0 - average(r.acet_ratio for r in results),
        overall_wcet=1.0 - average(r.wcet_ratio for r in results),
    )


@dataclass
class Figure4Data:
    """Average ACET miss rates per capacity, before and after."""

    before: CapacitySeries
    after: CapacitySeries

    def reduction(self, capacity: int) -> float:
        """Absolute miss-rate reduction at one capacity (in points)."""
        return self.before.points[capacity] - self.after.points[capacity]


def figure4(spec: Optional[SweepSpec] = None) -> Figure4Data:
    """Figure 4: impact on miss rate vs cache capacity."""
    results = run_sweep(spec or default_grid())
    buckets = group_by_capacity(results)
    before = CapacitySeries("miss rate (original)")
    after = CapacitySeries("miss rate (optimized)")
    for capacity, bucket in buckets.items():
        before.points[capacity] = average(r.original.miss_rate_acet for r in bucket)
        after.points[capacity] = average(r.optimized.miss_rate_acet for r in bucket)
    return Figure4Data(before=before, after=after)


@dataclass
class Figure5Data:
    """Cross-capacity reductions for one shrink factor.

    Values are averages of ``1 - ratio`` (positive = optimized program
    on the smaller cache still beats the original on the big cache).
    ``wcet_grew_anywhere`` reproduces the paper's safety observation
    ("the WCET did not grow for any use case").
    """

    capacity_factor: float
    energy: CapacitySeries
    acet: CapacitySeries
    wcet: CapacitySeries
    best_energy_saving: float
    wcet_grew_anywhere: bool


def figure5(
    capacity_factor: float,
    spec: Optional[SweepSpec] = None,
) -> Figure5Data:
    """Figure 5: optimized program on a 1/2 or 1/4 capacity cache.

    Capacities whose scaled version would undercut one cache set are
    skipped (the paper's shaded feasible region).
    """
    base = spec or default_grid()
    energy = CapacitySeries(f"energy (x{capacity_factor})")
    acet = CapacitySeries(f"ACET (x{capacity_factor})")
    wcet = CapacitySeries(f"WCET (x{capacity_factor})")
    per_capacity: Dict[int, List[UseCaseResult]] = {}
    options = base.optimizer_options()
    for usecase in base.usecases():
        config = usecase.cache_config()
        scaled_capacity = int(config.capacity * capacity_factor)
        if scaled_capacity < config.associativity * config.block_size:
            continue
        result = run_cross_capacity(
            usecase, capacity_factor, seed=base.seed, options=options
        )
        per_capacity.setdefault(config.capacity, []).append(result)
    grew = False
    best = 0.0
    for capacity, bucket in sorted(per_capacity.items()):
        energy.points[capacity] = 1.0 - average(r.energy_ratio for r in bucket)
        acet.points[capacity] = 1.0 - average(r.acet_ratio for r in bucket)
        wcet.points[capacity] = 1.0 - average(r.wcet_ratio for r in bucket)
        best = max(best, *(1.0 - r.energy_ratio for r in bucket))
        grew = grew or any(r.wcet_ratio > 1.0 + 1e-9 for r in bucket)
    return Figure5Data(
        capacity_factor=capacity_factor,
        energy=energy,
        acet=acet,
        wcet=wcet,
        best_energy_saving=best,
        wcet_grew_anywhere=grew,
    )


@dataclass
class Figure7Data:
    """Per-use-case WCET ratios at one technology (paper: 32 nm)."""

    tech: str
    ratios: List[Tuple[str, str, float]]  # (program, config id, ratio)

    @property
    def all_below_one(self) -> bool:
        """Ineq. 12 for every use case (allowing equality for the
        use cases the optimizer left untouched)."""
        return all(ratio <= 1.0 + 1e-9 for _, _, ratio in self.ratios)

    @property
    def worst(self) -> float:
        """Largest (worst) ratio."""
        return max((r for _, _, r in self.ratios), default=1.0)

    @property
    def best(self) -> float:
        """Smallest (best) ratio."""
        return min((r for _, _, r in self.ratios), default=1.0)


def figure7(spec: Optional[SweepSpec] = None, tech: str = "32nm") -> Figure7Data:
    """Figure 7: WCET ratio of every use case at 32 nm."""
    base = spec or default_grid(techs=(tech,))
    results = run_sweep(base)
    ratios = [
        (r.usecase.program, r.usecase.config_id, r.wcet_ratio)
        for r in results
        if r.usecase.tech == tech
    ]
    return Figure7Data(tech=tech, ratios=ratios)


@dataclass
class Figure8Data:
    """Executed-instruction ratios (optimized / original)."""

    per_capacity: CapacitySeries
    max_increase: float  # paper: 0.0132 (+1.32 %)


def figure8(spec: Optional[SweepSpec] = None) -> Figure8Data:
    """Figure 8: instruction-count overhead of the inserted prefetches."""
    results = run_sweep(spec or default_grid())
    buckets = group_by_capacity(results)
    series = CapacitySeries("executed-instruction ratio")
    max_increase = 0.0
    for capacity, bucket in buckets.items():
        series.points[capacity] = average(r.instruction_ratio for r in bucket)
        max_increase = max(
            max_increase, *(r.instruction_ratio - 1.0 for r in bucket)
        )
    return Figure8Data(per_capacity=series, max_increase=max_increase)
