"""Persistent on-disk cache for per-use-case sweep results.

The process-wide ``_SWEEP_CACHE`` in :mod:`repro.experiments.sweep` only
helps within one interpreter; the full 2664-case grid takes hours, so an
interrupted run used to lose everything and every fresh process (each
figure benchmark, each CLI invocation) recomputed the whole sweep.  This
module stores one JSON record per use case under a content-hash key of
everything that determines the result:

    (UseCase, seed, OptimizerOptions, code-version tag)

so repeated runs hit disk, interrupted sweeps resume where they stopped,
and a change to result-affecting code (bump :data:`CODE_VERSION`) or to
any input invalidates exactly the stale records.

Records round-trip bit-exactly: JSON serialises floats via ``repr``,
which is lossless for IEEE doubles, and :func:`result_from_dict`
reconstructs every dataclass field, so a cached
:class:`~repro.experiments.usecase.UseCaseResult` compares equal to the
freshly computed one field by field.

The cache directory is chosen explicitly (``cache_dir=`` /
``--cache-dir``) or through the ``REPRO_SWEEP_CACHE_DIR`` environment
variable (set to ``0``/``off``/empty to disable); the benchmark harness
points it at ``benchmarks/results/sweep-cache`` so all figure benches
share one cache across processes.  A total-size cap
(``REPRO_SWEEP_CACHE_MAX_BYTES`` / :meth:`SweepDiskCache.prune`) evicts
oldest-mtime-first so long-lived sweeps and the analysis service cannot
grow the cache without bound.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.analysis.timing import TimingModel
from repro.cache.config import CacheConfig
from repro.core.optimizer import (
    InsertedPrefetch,
    OptimizationReport,
    OptimizerOptions,
)
from repro.core.profit import ProfitTerms
from repro.energy.metrics import EnergyBreakdown
from repro.errors import ExperimentError
from repro.experiments.usecase import (
    ProgramMeasurement,
    UseCase,
    UseCaseResult,
)

#: Version tag of the result-producing code.  Bump whenever analysis,
#: optimizer, simulator, or energy-model changes alter results — every
#: cached record keyed under the old tag becomes unreachable.
CODE_VERSION = "2026.08-4"

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"

#: Environment variable capping the cache's total size in bytes.
CACHE_MAX_BYTES_ENV = "REPRO_SWEEP_CACHE_MAX_BYTES"

#: Record format version (layout of the JSON files themselves).
_FORMAT = 1


def resolve_cache_dir(
    cache_dir: Union[None, str, Path] = None,
) -> Optional[Path]:
    """The effective cache directory, or ``None`` when caching is off.

    An explicit ``cache_dir`` wins; otherwise :data:`CACHE_DIR_ENV` is
    consulted.  In both places the strings ``""``, ``0``, ``off`` and
    ``none`` mean "disabled" (that is how ``--no-cache`` and ad-hoc
    environment overrides switch the disk layer off).
    """
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV, "")
    value = str(cache_dir).strip()
    if not value or value.lower() in ("0", "off", "none"):
        return None
    return Path(value)


def resolve_cache_max_bytes(
    max_bytes: Union[None, int, str] = None,
) -> Optional[int]:
    """The effective cache size cap in bytes, or ``None`` (unbounded).

    An explicit ``max_bytes`` wins; otherwise :data:`CACHE_MAX_BYTES_ENV`
    is consulted.  ``""``, ``0``, ``off`` and ``none`` mean "no cap";
    anything else must parse as a positive integer byte count.
    """
    from repro.errors import ConfigError

    source = "max_bytes"
    if max_bytes is None:
        max_bytes = os.environ.get(CACHE_MAX_BYTES_ENV, "")
        source = CACHE_MAX_BYTES_ENV
    value = str(max_bytes).strip()
    if not value or value.lower() in ("0", "off", "none"):
        return None
    try:
        parsed = int(value)
    except ValueError:
        raise ConfigError(
            f"{source} must be a positive integer byte count, got {value!r}"
        ) from None
    if parsed <= 0:
        raise ConfigError(
            f"{source} must be a positive integer byte count, got {value!r}"
        )
    return parsed


# ----------------------------------------------------------------------
# content-hash keys
# ----------------------------------------------------------------------
def options_fingerprint(options: OptimizerOptions) -> Dict[str, Any]:
    """All result-affecting optimizer knobs as JSON-able plain data."""
    data = dataclasses.asdict(options)
    # frozensets (locked_blocks) are not JSON-able; sort for stability.
    for name, value in data.items():
        if isinstance(value, (set, frozenset)):
            data[name] = sorted(value)
    # Like the use-case L2 axis, refinement enters the fingerprint only
    # when enabled: keys of pre-refinement records stay unchanged.
    if not data.get("refine"):
        data.pop("refine", None)
    return data


def usecase_key(
    usecase: UseCase,
    seed: int,
    options: OptimizerOptions,
    code_version: str = CODE_VERSION,
) -> str:
    """Content-hash key of one use-case evaluation.

    Two evaluations share a key exactly when they are guaranteed to
    produce the same :class:`UseCaseResult`: same (program, config,
    tech) — plus the L2 spec when the hierarchy has one — same executor
    seed, same optimizer options, same code version.  Single-level use
    cases keep the original three-element identity, so their keys never
    collide with (or depend on) the hierarchy axis.
    """
    identity = [usecase.program, usecase.config_id, usecase.tech]
    if usecase.l2 is not None:
        identity.append(usecase.l2)
    payload = {
        "usecase": identity,
        "seed": seed,
        "options": options_fingerprint(options),
        "code_version": code_version,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# (de)serialisation of the result dataclasses
# ----------------------------------------------------------------------
def _config_to_dict(config: CacheConfig) -> Dict[str, int]:
    return {
        "associativity": config.associativity,
        "block_size": config.block_size,
        "capacity": config.capacity,
    }


def _config_from_dict(data: Dict[str, Any]) -> CacheConfig:
    return CacheConfig(**data)


def _timing_to_dict(timing: TimingModel) -> Dict[str, int]:
    data = {
        "hit_cycles": timing.hit_cycles,
        "miss_penalty_cycles": timing.miss_penalty_cycles,
        "prefetch_issue_cycles": timing.prefetch_issue_cycles,
    }
    # Only multi-level records carry the L2 penalty: single-level
    # records keep their original shape (and stay valid).
    if timing.l2_hit_penalty_cycles is not None:
        data["l2_hit_penalty_cycles"] = timing.l2_hit_penalty_cycles
    return data


def _energy_to_dict(energy: EnergyBreakdown) -> Dict[str, float]:
    data = {
        "cache_dynamic_j": energy.cache_dynamic_j,
        "dram_dynamic_j": energy.dram_dynamic_j,
        "cache_static_j": energy.cache_static_j,
        "dram_static_j": energy.dram_static_j,
    }
    if energy.l2_dynamic_j or energy.l2_static_j:
        data["l2_dynamic_j"] = energy.l2_dynamic_j
        data["l2_static_j"] = energy.l2_static_j
    return data


def _measurement_to_dict(m: ProgramMeasurement) -> Dict[str, Any]:
    data = {
        "tau_w": m.tau_w,
        "tau_a": m.tau_a,
        "energy": _energy_to_dict(m.energy),
        "miss_rate_acet": m.miss_rate_acet,
        "miss_rate_wcet": m.miss_rate_wcet,
        "executed_instructions": m.executed_instructions,
        "static_instructions": m.static_instructions,
        "prefetch_transfer_energy_j": m.prefetch_transfer_energy_j,
    }
    if m.l2_accesses or m.l2_hits or m.l2_fills or m.prefetch_l2_hits:
        data["l2_accesses"] = m.l2_accesses
        data["l2_hits"] = m.l2_hits
        data["l2_fills"] = m.l2_fills
        data["prefetch_l2_hits"] = m.prefetch_l2_hits
    return data


def _measurement_from_dict(data: Dict[str, Any]) -> ProgramMeasurement:
    fields = dict(data)
    fields["energy"] = EnergyBreakdown(**fields["energy"])
    return ProgramMeasurement(**fields)


def _inserted_to_dict(ins: InsertedPrefetch) -> Dict[str, Any]:
    data = dataclasses.asdict(ins)
    data["terms"] = dataclasses.asdict(ins.terms)
    return data


def _inserted_from_dict(data: Dict[str, Any]) -> InsertedPrefetch:
    fields = dict(data)
    fields["terms"] = ProfitTerms(**fields["terms"])
    return InsertedPrefetch(**fields)


def _report_to_dict(report: OptimizationReport) -> Dict[str, Any]:
    return {
        "program": report.program,
        "config": _config_to_dict(report.config),
        "timing": _timing_to_dict(report.timing),
        "tau_original": report.tau_original,
        "tau_final": report.tau_final,
        "misses_original": report.misses_original,
        "misses_final": report.misses_final,
        "static_instructions_original": report.static_instructions_original,
        "static_instructions_final": report.static_instructions_final,
        "inserted": [_inserted_to_dict(i) for i in report.inserted],
        "candidates_evaluated": report.candidates_evaluated,
        "candidates_rejected": report.candidates_rejected,
        "passes": report.passes,
        # Deterministic pipeline cache counters; the wall-clock profile
        # is machine-dependent and intentionally not persisted.
        "pipeline": dict(report.pipeline),
    }


def _report_from_dict(data: Dict[str, Any]) -> OptimizationReport:
    fields = dict(data)
    fields["config"] = _config_from_dict(fields["config"])
    fields["timing"] = TimingModel(**fields["timing"])
    fields["inserted"] = [_inserted_from_dict(i) for i in fields["inserted"]]
    return OptimizationReport(**fields)


def result_to_dict(result: UseCaseResult) -> Dict[str, Any]:
    """Serialise a :class:`UseCaseResult` to plain JSON-able data."""
    identity = [
        result.usecase.program,
        result.usecase.config_id,
        result.usecase.tech,
    ]
    if result.usecase.l2 is not None:
        identity.append(result.usecase.l2)
    return {
        "usecase": identity,
        "original": _measurement_to_dict(result.original),
        "optimized": _measurement_to_dict(result.optimized),
        "report": _report_to_dict(result.report),
    }


def result_from_dict(data: Dict[str, Any]) -> UseCaseResult:
    """Reconstruct a :class:`UseCaseResult` from :func:`result_to_dict`."""
    return UseCaseResult(
        usecase=UseCase(*data["usecase"]),
        original=_measurement_from_dict(data["original"]),
        optimized=_measurement_from_dict(data["optimized"]),
        report=_report_from_dict(data["report"]),
    )


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------
class SweepDiskCache:
    """One JSON file per use-case result, sharded by key prefix.

    Writes are atomic (temp file + rename) so concurrent sweeps and
    interrupted runs can never leave a torn record; unreadable or
    stale-format records are treated as misses *and deleted on sight*,
    so a corrupted file costs one failed parse ever, not one per run.

    When constructed with ``max_bytes``, the cap is also enforced
    opportunistically: every ``prune_every``-th :meth:`put` triggers a
    :meth:`prune`, so a long sweep cannot blow far past the budget
    before its final end-of-run prune.

    Multiple *nodes* may share one cache directory (the fabric's
    result store points every worker at the same root): the atomic
    rename makes concurrent same-key writers safe (last replace wins,
    and deterministic results make the copies identical), and
    :meth:`prune` tolerates records deleted underneath it by a peer's
    concurrent prune — counted in ``prune_races``, never a crash.

    Attributes:
        root: The cache directory (created on first use).
        hits: Records served from disk so far.
        misses: Lookups that found no (valid) record.
        discarded: Corrupted/stale records deleted by :meth:`get`.
        pruned: Records evicted by :meth:`prune` over this instance's
            lifetime.
        prune_races: Records that vanished mid-prune because a peer
            (another node pruning the shared directory) got there
            first.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
        prune_every: int = 32,
    ):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.prune_every = max(1, prune_every)
        self.hits = 0
        self.misses = 0
        self.discarded = 0
        self.pruned = 0
        self.prune_races = 0
        self._puts_since_prune = 0

    def path_for(self, key: str) -> Path:
        """The record file of a key (two-level sharding keeps dirs small)."""
        if len(key) < 3:
            raise ExperimentError(f"cache key too short: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[UseCaseResult]:
        """The cached result of a key, or ``None``.

        A record that exists but cannot be parsed (truncated write from
        a crashed pre-atomic-rename version, stale format, hand-edited
        junk) is deleted, not just skipped: left in place it would be a
        guaranteed re-parse failure on every future run, and — worse —
        it would never be rewritten if the recompute that follows this
        miss crashes too.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("format") != _FORMAT:
                raise ValueError("stale record format")
            result = result_from_dict(data["result"])
        except OSError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            # The file is there but unreadable — evict the corpse so
            # the slot is cleanly recomputed and rewritten.
            try:
                os.unlink(path)
                self.discarded += 1
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: UseCaseResult) -> Path:
        """Persist a result atomically; returns the record path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": _FORMAT, "key": key, "result": result_to_dict(result)}
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".json"
            )
        except FileNotFoundError:
            # A peer node removed the (empty) shard directory between
            # our mkdir and mkstemp; recreate and try once more.
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".json"
            )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._puts_since_prune += 1
            if self._puts_since_prune >= self.prune_every:
                self._puts_since_prune = 0
                self.prune(self.max_bytes)
        return path

    def __len__(self) -> int:
        """Number of records currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for record in self.root.glob("*/*.json"):
            try:
                record.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def total_bytes(self) -> int:
        """Total size of all records on disk, in bytes."""
        total = 0
        if not self.root.exists():
            return 0
        for record in self.root.glob("*/*.json"):
            try:
                total += record.stat().st_size
            except OSError:
                pass
        return total

    def prune(self, max_bytes: int) -> int:
        """Evict oldest-mtime-first until the cache fits ``max_bytes``.

        Long-lived sweeps and the analysis service would otherwise grow
        the cache without bound; eviction by modification time keeps the
        most recently written (and rewritten) records.  Concurrent
        writers — including *other nodes* pruning the same shared
        directory — are safe: a record vanishing between the scan and
        the unlink is treated as already evicted (its size still comes
        off the running total, since it is gone either way) and counted
        in ``prune_races``.

        Returns:
            How many records this call removed itself.
        """
        if not self.root.exists():
            return 0
        records = []
        total = 0
        for record in self.root.glob("*/*.json"):
            try:
                stat = record.stat()
            except FileNotFoundError:
                self.prune_races += 1
                continue
            except OSError:
                continue
            records.append((stat.st_mtime, stat.st_size, record))
            total += stat.st_size
        records.sort()  # oldest mtime first
        removed = 0
        for mtime, size, record in records:
            if total <= max_bytes:
                break
            try:
                record.unlink()
            except FileNotFoundError:
                # A peer evicted (or rewrote then evicted) it first.
                self.prune_races += 1
                total -= size
                continue
            except OSError:
                continue
            total -= size
            removed += 1
        self.pruned += removed
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SweepDiskCache {self.root} hits={self.hits} "
            f"misses={self.misses}>"
        )
