"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports —
these helpers keep the formatting in one place so benches and examples
render identically, always with the paper's reference value next to the
measured one where a reference exists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.figures import (
    CapacitySeries,
    Figure3Data,
    Figure4Data,
    Figure5Data,
    Figure7Data,
    Figure8Data,
)

#: Headline numbers from the paper, used in report footers.
PAPER_HEADLINE = {
    "energy_improvement": 0.112,
    "acet_improvement": 0.102,
    "wcet_improvement": 0.174,
    "max_instruction_increase": 0.0132,
    "max_energy_saving_small_caches": 0.21,
}


def format_percent(value: float) -> str:
    """Render a fraction as a percentage with one decimal."""
    return f"{100.0 * value:5.1f}%"


def render_bar_chart(
    series: Sequence[CapacitySeries],
    title: str,
    width: int = 40,
    symbols: str = "#*o+x",
) -> str:
    """ASCII bar chart of per-capacity series (the paper's figures are
    grouped bar charts over the capacity axis).

    Bars are scaled to the largest absolute value across all series;
    negative values grow leftward from the axis.
    """
    capacities = sorted({c for s in series for c in s.points})
    peak = max(
        (abs(s.points.get(c, 0.0)) for s in series for c in capacities),
        default=0.0,
    )
    lines = [title]
    for idx, s in enumerate(series):
        lines.append(f"  [{symbols[idx % len(symbols)]}] {s.label}")
    for capacity in capacities:
        lines.append(f"{capacity:>7d} B")
        for idx, s in enumerate(series):
            value = s.points.get(capacity, 0.0)
            length = 0 if peak == 0 else round(abs(value) / peak * width)
            bar = symbols[idx % len(symbols)] * length
            sign = "-" if value < 0 else " "
            lines.append(f"        {sign}|{bar:<{width}}| {format_percent(value)}")
    return "\n".join(lines)


def render_series_table(
    series: Sequence[CapacitySeries], title: str
) -> str:
    """Tabulate several per-capacity series side by side."""
    capacities = sorted({c for s in series for c in s.points})
    header = "capacity(B) " + " ".join(f"{s.label:>24s}" for s in series)
    lines = [title, header, "-" * len(header)]
    for capacity in capacities:
        row = f"{capacity:>10d}  "
        row += " ".join(
            f"{format_percent(s.points.get(capacity, 0.0)):>24s}" for s in series
        )
        lines.append(row)
    return "\n".join(lines)


def render_figure3(data: Figure3Data) -> str:
    """Figure 3 text rendering with the paper's averages as reference."""
    body = render_series_table(
        [data.energy, data.energy_paper_mode, data.acet, data.wcet],
        "Figure 3 — average improvement vs cache capacity",
    )
    body += "\n\n" + render_bar_chart(
        [data.energy_paper_mode, data.acet, data.wcet],
        "Figure 3 (chart)",
    )
    footer = (
        f"overall: energy {format_percent(data.overall_energy)} / "
        f"paper-mode {format_percent(data.overall_energy_paper_mode)} "
        f"(paper 11.2%), ACET {format_percent(data.overall_acet)} "
        f"(paper 10.2%), WCET {format_percent(data.overall_wcet)} "
        f"(paper 17.4%)"
    )
    return body + "\n" + footer


def render_figure4(data: Figure4Data) -> str:
    """Figure 4 text rendering (miss rates before/after)."""
    body = render_series_table(
        [data.before, data.after],
        "Figure 4 — average miss rate vs cache capacity",
    )
    return body + "\n\n" + render_bar_chart(
        [data.before, data.after], "Figure 4 (chart)"
    )


def render_figure5(data: Figure5Data) -> str:
    """Figure 5 text rendering (optimized program on a smaller cache)."""
    body = render_series_table(
        [data.energy, data.acet, data.wcet],
        f"Figure 5 — optimized program on {data.capacity_factor:g}x capacity",
    )
    footer = (
        f"best energy saving {format_percent(data.best_energy_saving)} "
        f"(paper: up to 21.0%); WCET grew anywhere: "
        f"{data.wcet_grew_anywhere} (paper: never)"
    )
    return body + "\n" + footer


def render_figure7(data: Figure7Data, limit: Optional[int] = 20) -> str:
    """Figure 7 text rendering (per-use-case WCET ratios)."""
    lines = [
        f"Figure 7 — WCET ratio per use case at {data.tech} "
        f"(paper: < 1 for every use case)",
        f"use cases: {len(data.ratios)}, best {data.best:.3f}, "
        f"worst {data.worst:.3f}, all <= 1: {data.all_below_one}",
    ]
    shown = data.ratios if limit is None else data.ratios[:limit]
    for program, config_id, ratio in shown:
        lines.append(f"  {program:<14s} {config_id:<4s} {ratio:6.3f}")
    if limit is not None and len(data.ratios) > limit:
        lines.append(f"  ... ({len(data.ratios) - limit} more)")
    return "\n".join(lines)


def render_figure8(data: Figure8Data) -> str:
    """Figure 8 text rendering (executed-instruction ratio)."""
    capacities = sorted(data.per_capacity.points)
    lines = [
        "Figure 8 — executed-instruction ratio (optimized / original)",
        "capacity(B)   ratio",
    ]
    for capacity in capacities:
        lines.append(
            f"{capacity:>10d}   {data.per_capacity.points[capacity]:.4f}"
        )
    lines.append(
        f"max increase {format_percent(data.max_increase)} (paper max: +1.32%)"
    )
    return "\n".join(lines)
