"""Plain-text and JSON rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports —
these helpers keep the formatting in one place so benches and examples
render identically, always with the paper's reference value next to the
measured one where a reference exists.

The ``*_to_json`` helpers are the machine-readable counterpart: the
``--json`` CLI modes and the analysis service (:mod:`repro.service`)
both serialise results through them, so a job fetched over HTTP and a
``repro sweep --json`` run emit identical documents.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.figures import (
    CapacitySeries,
    Figure3Data,
    Figure4Data,
    Figure5Data,
    Figure7Data,
    Figure8Data,
)

#: Headline numbers from the paper, used in report footers.
PAPER_HEADLINE = {
    "energy_improvement": 0.112,
    "acet_improvement": 0.102,
    "wcet_improvement": 0.174,
    "max_instruction_increase": 0.0132,
    "max_energy_saving_small_caches": 0.21,
}


def format_percent(value: float) -> str:
    """Render a fraction as a percentage with one decimal."""
    return f"{100.0 * value:5.1f}%"


def render_bar_chart(
    series: Sequence[CapacitySeries],
    title: str,
    width: int = 40,
    symbols: str = "#*o+x",
) -> str:
    """ASCII bar chart of per-capacity series (the paper's figures are
    grouped bar charts over the capacity axis).

    Bars are scaled to the largest absolute value across all series;
    negative values grow leftward from the axis.
    """
    capacities = sorted({c for s in series for c in s.points})
    peak = max(
        (abs(s.points.get(c, 0.0)) for s in series for c in capacities),
        default=0.0,
    )
    lines = [title]
    for idx, s in enumerate(series):
        lines.append(f"  [{symbols[idx % len(symbols)]}] {s.label}")
    for capacity in capacities:
        lines.append(f"{capacity:>7d} B")
        for idx, s in enumerate(series):
            value = s.points.get(capacity, 0.0)
            length = 0 if peak == 0 else round(abs(value) / peak * width)
            bar = symbols[idx % len(symbols)] * length
            sign = "-" if value < 0 else " "
            lines.append(f"        {sign}|{bar:<{width}}| {format_percent(value)}")
    return "\n".join(lines)


def render_series_table(
    series: Sequence[CapacitySeries], title: str
) -> str:
    """Tabulate several per-capacity series side by side."""
    capacities = sorted({c for s in series for c in s.points})
    header = "capacity(B) " + " ".join(f"{s.label:>24s}" for s in series)
    lines = [title, header, "-" * len(header)]
    for capacity in capacities:
        row = f"{capacity:>10d}  "
        row += " ".join(
            f"{format_percent(s.points.get(capacity, 0.0)):>24s}" for s in series
        )
        lines.append(row)
    return "\n".join(lines)


def render_figure3(data: Figure3Data) -> str:
    """Figure 3 text rendering with the paper's averages as reference."""
    body = render_series_table(
        [data.energy, data.energy_paper_mode, data.acet, data.wcet],
        "Figure 3 — average improvement vs cache capacity",
    )
    body += "\n\n" + render_bar_chart(
        [data.energy_paper_mode, data.acet, data.wcet],
        "Figure 3 (chart)",
    )
    footer = (
        f"overall: energy {format_percent(data.overall_energy)} / "
        f"paper-mode {format_percent(data.overall_energy_paper_mode)} "
        f"(paper 11.2%), ACET {format_percent(data.overall_acet)} "
        f"(paper 10.2%), WCET {format_percent(data.overall_wcet)} "
        f"(paper 17.4%)"
    )
    return body + "\n" + footer


def render_figure4(data: Figure4Data) -> str:
    """Figure 4 text rendering (miss rates before/after)."""
    body = render_series_table(
        [data.before, data.after],
        "Figure 4 — average miss rate vs cache capacity",
    )
    return body + "\n\n" + render_bar_chart(
        [data.before, data.after], "Figure 4 (chart)"
    )


def render_figure5(data: Figure5Data) -> str:
    """Figure 5 text rendering (optimized program on a smaller cache)."""
    body = render_series_table(
        [data.energy, data.acet, data.wcet],
        f"Figure 5 — optimized program on {data.capacity_factor:g}x capacity",
    )
    footer = (
        f"best energy saving {format_percent(data.best_energy_saving)} "
        f"(paper: up to 21.0%); WCET grew anywhere: "
        f"{data.wcet_grew_anywhere} (paper: never)"
    )
    return body + "\n" + footer


def render_figure7(data: Figure7Data, limit: Optional[int] = 20) -> str:
    """Figure 7 text rendering (per-use-case WCET ratios)."""
    lines = [
        f"Figure 7 — WCET ratio per use case at {data.tech} "
        f"(paper: < 1 for every use case)",
        f"use cases: {len(data.ratios)}, best {data.best:.3f}, "
        f"worst {data.worst:.3f}, all <= 1: {data.all_below_one}",
    ]
    shown = data.ratios if limit is None else data.ratios[:limit]
    for program, config_id, ratio in shown:
        lines.append(f"  {program:<14s} {config_id:<4s} {ratio:6.3f}")
    if limit is not None and len(data.ratios) > limit:
        lines.append(f"  ... ({len(data.ratios) - limit} more)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# machine-readable (JSON) serialisation — shared by the --json CLI modes
# and the analysis service, so both emit identical documents
# ----------------------------------------------------------------------
def report_to_json(report) -> Dict[str, Any]:
    """An :class:`~repro.core.optimizer.OptimizationReport` as plain data."""
    data: Dict[str, Any] = {
        "program": report.program,
        "config": {
            "associativity": report.config.associativity,
            "block_size": report.config.block_size,
            "capacity": report.config.capacity,
        },
        "prefetches": report.prefetch_count,
        "candidates_evaluated": report.candidates_evaluated,
        "candidates_rejected": report.candidates_rejected,
        "passes": report.passes,
        "tau_original": report.tau_original,
        "tau_final": report.tau_final,
        "wcet_reduction": report.wcet_reduction,
        "misses_original": report.misses_original,
        "misses_final": report.misses_final,
        "static_instructions_original": report.static_instructions_original,
        "static_instructions_final": report.static_instructions_final,
        "pipeline": dict(getattr(report, "pipeline", {}) or {}),
    }
    l2_penalty = getattr(report.timing, "l2_hit_penalty_cycles", None)
    if l2_penalty is not None:
        data["l2_hit_penalty_cycles"] = l2_penalty
    return data


def guarantee_to_json(check) -> Dict[str, Any]:
    """A :class:`~repro.core.guarantees.GuaranteeCheck` as plain data."""
    return {
        "theorem1": check.theorem1_holds,
        "condition2": check.condition2_holds,
        "latency_sound": check.all_effective,
        "tau_original": check.tau_original,
        "tau_optimized": check.tau_optimized,
        "misses_original": check.misses_original,
        "misses_optimized": check.misses_optimized,
    }


def optimize_to_json(report, check=None, profile=None) -> Dict[str, Any]:
    """One ``optimize`` outcome as plain data.

    With an independent :class:`GuaranteeCheck` (the CLI re-verifies),
    its full record is embedded; without one (the service derives the
    guarantee from the report's own τ/miss accounting) the boolean
    summary is computed from the report.  ``profile`` optionally embeds
    the per-stage wall-clock breakdown (``repro optimize --profile``) —
    machine-dependent, so only present on explicit request.
    """
    data = report_to_json(report)
    if check is not None:
        data["guarantee"] = guarantee_to_json(check)
    else:
        data["guarantee"] = {
            "theorem1": report.tau_final <= report.tau_original + 1e-6,
            "condition2": report.misses_final <= report.misses_original,
        }
    if profile is not None:
        data["profile"] = dict(profile)
    return data


def usecase_to_json(result) -> Dict[str, Any]:
    """One use case's paired measurements + the paper's ratios."""
    from repro.experiments.cache import result_to_dict

    data = result_to_dict(result)
    data["ratios"] = {
        "wcet": result.wcet_ratio,
        "acet": result.acet_ratio,
        "energy": result.energy_ratio,
        "energy_paper_mode": result.energy_ratio_paper_mode,
        "instructions": result.instruction_ratio,
    }
    return data


def _l2_measurement_json(m) -> Dict[str, Any]:
    """Per-level counters + energy of one measurement (multi-level only)."""
    return {
        "accesses": m.l2_accesses,
        "hits": m.l2_hits,
        "misses": m.l2_accesses - m.l2_hits,
        "fills": m.l2_fills,
        "prefetch_hits": m.prefetch_l2_hits,
        "dynamic_j": m.energy.l2_dynamic_j,
        "static_j": m.energy.l2_static_j,
    }


def sweep_case_to_json(result) -> Dict[str, Any]:
    """One sweep row: identification + ratios, without the full report.

    Multi-level rows additionally carry the L2 spec, the L2 hit penalty,
    and per-level hit/miss/energy numbers for both builds — so hierarchy
    records can never be mistaken for (or collide with) single-level
    rows in a merged report.
    """
    data: Dict[str, Any] = {
        "program": result.usecase.program,
        "config": result.usecase.config_id,
        "tech": result.usecase.tech,
        "wcet_ratio": result.wcet_ratio,
        "acet_ratio": result.acet_ratio,
        "energy_ratio": result.energy_ratio,
        "energy_ratio_paper_mode": result.energy_ratio_paper_mode,
        "instruction_ratio": result.instruction_ratio,
        "miss_rate_original": result.original.miss_rate_acet,
        "miss_rate_optimized": result.optimized.miss_rate_acet,
        "prefetches": result.report.prefetch_count,
    }
    if result.usecase.l2 is not None:
        data["l2"] = result.usecase.l2
        l2_penalty = getattr(
            result.report.timing, "l2_hit_penalty_cycles", None
        )
        if l2_penalty is not None:
            data["l2_hit_penalty_cycles"] = l2_penalty
        data["l2_original"] = _l2_measurement_json(result.original)
        data["l2_optimized"] = _l2_measurement_json(result.optimized)
    return data


def failure_to_json(record) -> Dict[str, Any]:
    """A :class:`~repro.experiments.sweep.FailureRecord` as plain data."""
    data = {
        "program": record.usecase.program,
        "config": record.usecase.config_id,
        "tech": record.usecase.tech,
        "error_type": record.error_type,
        "message": record.message,
        "attempts": record.attempts,
        "worker_pid": record.worker_pid,
        "transient": record.transient,
    }
    if record.usecase.l2 is not None:
        data["l2"] = record.usecase.l2
    return data


def metrics_to_json(metrics) -> Dict[str, Any]:
    """A :class:`~repro.experiments.metrics.SweepMetrics` summary."""
    return {
        "cases": metrics.cases,
        "computed": metrics.computed,
        "disk_hits": metrics.disk_hits,
        "memory_hits": metrics.memory_hits,
        "workers": metrics.workers,
        "parallel": metrics.parallel,
        "compute_time_s": metrics.compute_time_s,
        "evaluations": metrics.evaluations,
        "prefetches": metrics.prefetches,
        "pipeline": metrics.pipeline_totals(),
        "failed": metrics.failed,
        "retries": metrics.retries,
        "pool_rebuilds": metrics.pool_rebuilds,
        "failures": [failure_to_json(r) for r in metrics.failures],
    }


def sweep_to_json(results: Sequence, metrics=None,
                  failures: Sequence = ()) -> Dict[str, Any]:
    """A whole sweep: per-case rows + aggregate summary (+ metrics).

    ``failures`` carries the permanently failed cases of a partial
    sweep; the summary's averages are over the successes only, so a
    consumer must check ``summary.failed`` before trusting them as
    grid-wide numbers.
    """
    from repro.experiments.sweep import average

    cases = [sweep_case_to_json(r) for r in results]
    data: Dict[str, Any] = {
        "cases": cases,
        "summary": {
            "cases": len(cases),
            "failed": len(failures),
            "average_improvement": {
                "wcet": 1.0 - average([r.wcet_ratio for r in results]),
                "acet": 1.0 - average([r.acet_ratio for r in results]),
                "energy": 1.0 - average([r.energy_ratio for r in results]),
            },
        },
    }
    if failures:
        data["failures"] = [failure_to_json(r) for r in failures]
    if metrics is not None:
        data["metrics"] = metrics_to_json(metrics)
    return data


def render_figure8(data: Figure8Data) -> str:
    """Figure 8 text rendering (executed-instruction ratio)."""
    capacities = sorted(data.per_capacity.points)
    lines = [
        "Figure 8 — executed-instruction ratio (optimized / original)",
        "capacity(B)   ratio",
    ]
    for capacity in capacities:
        lines.append(
            f"{capacity:>10d}   {data.per_capacity.points[capacity]:.4f}"
        )
    lines.append(
        f"max increase {format_percent(data.max_increase)} (paper max: +1.32%)"
    )
    return "\n".join(lines)
