"""Sweep driver over (program × configuration × technology) grids.

The paper's full grid is 37 programs × 36 configurations × 2 nodes =
2664 use cases.  A pure-Python reproduction cannot afford that per
benchmark run, so the sweep is specified explicitly and two standard
grids are provided:

* :func:`default_grid` — the documented representative subset used by
  the benchmark harness: every program appears, capacities span the
  full 256 B – 8 KiB range, one (associativity, block size) pair per
  capacity, both technologies;
* :func:`full_grid` — the paper's complete 2664-case grid, for offline
  runs (see EXPERIMENTS.md).

Use cases are independent, so :func:`run_sweep` fans them out over a
``concurrent.futures.ProcessPoolExecutor`` (``workers=``), assembling
results in deterministic grid order regardless of completion order, and
falls back to the serial path when ``workers=1`` or the platform cannot
run a process pool.  Three cache layers keep repeated work cheap:

* per-spec, in-process (``_SWEEP_CACHE``) — the per-figure benchmarks
  of one pytest session share one sweep; callers always receive a
  fresh list so mutating a result list cannot poison later readers;
* per-use-case, on disk (:mod:`repro.experiments.cache`) — interrupted
  sweeps resume, and fresh processes (each figure benchmark, each CLI
  run) reuse earlier results;
* optional :class:`~repro.experiments.metrics.SweepMetrics` collection
  reports where every result came from and what it cost.

Execution is fault-tolerant: one failing use case becomes a structured
:class:`FailureRecord` instead of killing the sweep, transient faults
(``BrokenProcessPool``, ``OSError``, timeouts) are retried with
exponential backoff, and a broken pool is rebuilt — requeueing only the
cases that were in flight when it died — rather than degrading the rest
of the grid to serial.  The ``max_failures`` policy decides whether a
partially failed sweep raises :class:`~repro.errors.SweepFailure` (the
default, protecting callers that need the full grid) or returns the
partial results.  Failure scenarios are testable deterministically via
:mod:`repro.experiments.faults` (``REPRO_FAULT_PLAN``).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.bench.registry import program_names
from repro.cache.config import CAPACITIES, TABLE2, config_id
from repro.errors import ExperimentError, SweepFailure
from repro.experiments.usecase import (
    UseCase,
    UseCaseResult,
    pipeline_for_usecase,
    run_usecase,
)

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Attempts per use case before a transient fault becomes permanent.
DEFAULT_MAX_ATTEMPTS = 3

#: First retry delay; doubles per attempt (0.25 s, 0.5 s, 1 s, ...).
DEFAULT_BACKOFF_BASE_S = 0.25

#: Exceptions a use case may raise that are worth retrying — the
#: machine hiccuped, not the computation (which is deterministic).
_TRANSIENT_CASE_ERRORS = (OSError, TimeoutError)


@dataclass(frozen=True)
class SweepSpec:
    """A grid of use cases.

    Attributes:
        programs: Benchmark names.
        config_ids: Table 2 ids.
        techs: Technology names.
        seed: Executor seed for the ACET simulations.
        max_evaluations: Per-use-case optimization budget (see
            :class:`repro.core.OptimizerOptions.max_evaluations`);
            ``None`` = unlimited.
        baseline: Analysis fidelity: ``"classic"`` (must/may, the
            baseline of the paper's era — reproduces the paper's
            improvement magnitudes) or ``"persistence"`` (adds the
            first-miss domain; the tighter baseline leaves less for
            prefetching to win — see EXPERIMENTS.md).
        kernel: Abstract-domain kernel (``"python"``/``"vectorized"``);
            ``None`` keeps the optimizer's default.  Part of the
            result fingerprint, so cached records of the two kernels
            never alias (the differential CI job keeps them
            bit-identical anyway).
        l2_specs: Memory-hierarchy axis, swept like any other grid
            dimension.  Each entry is an ``assoc:block:capacity:latency``
            L2 spec or ``None`` (the paper's single-level system); the
            default ``(None,)`` keeps the classic three-axis grid.
        refine: Model-check NOT_CLASSIFIED references via bounded
            concrete-state exploration (see
            :mod:`repro.analysis.refine`).  Off by default; like
            ``l2``, the flag enters the result fingerprint only when
            enabled, so pre-refinement disk-cache records stay valid.
    """

    programs: Tuple[str, ...]
    config_ids: Tuple[str, ...]
    techs: Tuple[str, ...]
    seed: int = 1
    max_evaluations: Optional[int] = None
    baseline: str = "classic"
    kernel: Optional[str] = None
    l2_specs: Tuple[Optional[str], ...] = (None,)
    refine: bool = False

    def __post_init__(self) -> None:
        if self.baseline not in ("classic", "persistence"):
            raise ExperimentError(
                f"baseline must be 'classic' or 'persistence', got "
                f"{self.baseline!r}"
            )
        if self.kernel not in (None, "python", "vectorized"):
            raise ExperimentError(
                f"kernel must be 'python', 'vectorized' or None, got "
                f"{self.kernel!r}"
            )
        if not self.l2_specs:
            raise ExperimentError(
                "l2_specs must contain at least one entry (use None for "
                "the single-level system)"
            )
        from repro.cache.config import parse_l2_spec

        for spec in self.l2_specs:
            if spec is not None:
                parse_l2_spec(spec)  # fail fast on a malformed axis

    def optimizer_options(self):
        """The options every use case of this sweep runs with."""
        from repro.core.optimizer import OptimizerOptions

        return OptimizerOptions(
            max_evaluations=self.max_evaluations,
            with_persistence=self.baseline == "persistence",
            kernel=self.kernel,
            refine=self.refine,
        )

    def usecases(self) -> List[UseCase]:
        """Expand the grid in (program, config, tech, l2) order."""
        return [
            UseCase(p, k, t, l2)
            for p in self.programs
            for k in self.config_ids
            for t in self.techs
            for l2 in self.l2_specs
        ]

    @property
    def size(self) -> int:
        """Number of use cases in the grid."""
        return (
            len(self.programs)
            * len(self.config_ids)
            * len(self.techs)
            * len(self.l2_specs)
        )


def default_grid(
    programs: Optional[Sequence[str]] = None,
    techs: Sequence[str] = ("45nm", "32nm"),
    seed: int = 1,
    max_evaluations: Optional[int] = 120,
) -> SweepSpec:
    """The representative subset the benchmark harness runs.

    One direct-mapped 16 B-block configuration per capacity (k1, k7,
    k13, k19, k25, k31) — the 6-point capacity axis of Figures 3-5 —
    across all programs and both technologies.
    """
    config_ids = []
    for capacity in CAPACITIES:
        for kid, cfg in TABLE2.items():
            if (
                cfg.capacity == capacity
                and cfg.associativity == 1
                and cfg.block_size == 16
            ):
                config_ids.append(kid)
                break
    return SweepSpec(
        programs=tuple(programs if programs is not None else program_names()),
        config_ids=tuple(config_ids),
        techs=tuple(techs),
        seed=seed,
        max_evaluations=max_evaluations,
    )


def full_grid(seed: int = 1, max_evaluations: Optional[int] = 120) -> SweepSpec:
    """The paper's complete 37 × 36 × 2 grid (2664 use cases)."""
    return SweepSpec(
        programs=tuple(program_names()),
        config_ids=tuple(TABLE2.keys()),
        techs=("45nm", "32nm"),
        seed=seed,
        max_evaluations=max_evaluations,
    )


#: Process-wide cache: spec -> results (sweeps are deterministic).
#: Holds immutable tuples; :func:`run_sweep` hands out fresh lists so a
#: caller mutating its copy cannot poison later readers.
_SWEEP_CACHE: Dict[SweepSpec, Tuple[UseCaseResult, ...]] = {}


def resolve_workers(workers: Optional[int], pending: int) -> int:
    """The effective worker count for ``pending`` runnable use cases.

    ``None`` means auto: the :data:`WORKERS_ENV` environment variable if
    set, else ``os.cpu_count()``.  The result is clamped to the number
    of runnable cases (never below 1) — a sweep served entirely from
    cache should not spin up a pool.

    Raises:
        ConfigError: If ``workers`` (or the environment override) is not
            a positive integer — diagnosed here, with the knob named,
            rather than surfacing as a raw ``ValueError`` from deep
            inside :func:`run_sweep`.
    """
    from repro.errors import ConfigError

    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ConfigError(
                    f"{WORKERS_ENV} must be a positive integer, got {env!r}"
                ) from None
            if workers < 1:
                raise ConfigError(
                    f"{WORKERS_ENV} must be a positive integer, got {env!r}"
                )
        else:
            workers = os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(
            f"workers must be a positive integer, got {workers!r}"
        )
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return max(1, min(workers, pending))


@dataclass(frozen=True)
class FailureRecord:
    """One use case that failed permanently within a sweep.

    Attributes:
        usecase: The evaluation point that failed.
        index: Its position in grid order.
        error_type: Exception class name of the final failure.
        message: Its message.
        attempts: How many attempts were made (> 1 means transient
            faults were retried before giving up).
        worker_pid: Pid of the worker that reported the final failure
            (0 when the worker died before it could report, e.g. a
            broken pool).
        transient: Whether the final failure was of the retriable
            family — ``True`` means the retry budget was exhausted,
            ``False`` means the case failed deterministically.
    """

    usecase: UseCase
    index: int
    error_type: str
    message: str
    attempts: int
    worker_pid: int
    transient: bool


def _sleep(seconds: float) -> None:
    """Backoff sleep — a seam so tests can observe the schedule."""
    time.sleep(seconds)


def _evaluate_usecase(payload) -> Tuple:
    """Worker entry point: run one use case, timed and failure-encoded.

    Module-level so it pickles under every multiprocessing start
    method.  ``payload`` is ``(usecase, seed, options[, attempt])``.
    Returns ``("ok", result, wall_seconds, worker_pid)`` on success and
    ``("err", error_type, message, worker_pid, transient)`` when the
    use case raised — failures are encoded rather than propagated so
    the parent can tell a failed *case* (isolated, maybe retried) from
    a failed *pool* (rebuilt), and so the worker pid survives the trip
    even for exceptions.
    """
    from repro.experiments import faults

    usecase, seed, options = payload[0], payload[1], payload[2]
    attempt = payload[3] if len(payload) > 3 else 1
    start = time.perf_counter()
    try:
        faults.inject_before(usecase, attempt)
        # One analysis pipeline per use case: all phases of the use case
        # share cached artifacts, while use cases stay independent (and
        # the pipeline never crosses a process boundary).
        pipeline = pipeline_for_usecase(usecase, options)
        result = run_usecase(
            usecase, seed=seed, options=options, pipeline=pipeline
        )
        result = faults.inject_after(usecase, attempt, result)
    except Exception as exc:
        return (
            "err",
            type(exc).__name__,
            str(exc),
            os.getpid(),
            isinstance(exc, _TRANSIENT_CASE_ERRORS),
        )
    return ("ok", result, time.perf_counter() - start, os.getpid())


class _FanOut:
    """``submit`` + ``wait`` pool driver with per-case failure isolation.

    Replaces the old ``pool.map`` fan-out: every case is its own future,
    so one exception cannot abort the batch; transient failures are
    requeued with exponential backoff; a broken pool is rebuilt exactly
    once per break and only the cases lost in flight are resubmitted.

    Raises pool-*setup* errors (the platform cannot start a process
    pool at all) so :func:`run_sweep` can fall back to serial; per-case
    failures never escape — they go through ``deliver``/``fail``.
    """

    def __init__(
        self,
        cases: Sequence[UseCase],
        seed: int,
        options,
        workers: int,
        deliver: Callable[[int, UseCaseResult, float, int], None],
        fail: Callable[[FailureRecord], None],
        metrics=None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        case_timeout_s: Optional[float] = None,
    ):
        self.cases = cases
        self.seed = seed
        self.options = options
        self.workers = workers
        self.deliver = deliver
        self.fail = fail
        self.metrics = metrics
        self.max_attempts = max(1, max_attempts)
        self.backoff_base_s = backoff_base_s
        self.case_timeout_s = case_timeout_s
        self.queue: "deque[int]" = deque()
        self.attempts: Dict[int, int] = {}
        self.eligible_at: Dict[int, float] = {}
        self.inflight: Dict[object, int] = {}
        self.deadline: Dict[object, float] = {}
        self.pool = None

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _make_pool(self):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            # Cheapest start method where available: workers inherit the
            # loaded benchmark registry instead of re-importing it.
            context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        )

    def _rebuild_pool(self) -> None:
        old, self.pool = self.pool, None
        if old is not None:
            old.shutdown(wait=False)
        self.pool = self._make_pool()
        if self.metrics is not None:
            self.metrics.pool_rebuilds += 1

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _handle_error(
        self, idx: int, error_type: str, message: str, pid: int,
        transient: bool,
    ) -> None:
        if transient and self.attempts[idx] < self.max_attempts:
            if self.metrics is not None:
                self.metrics.retries += 1
            delay = self.backoff_base_s * (2 ** (self.attempts[idx] - 1))
            self.eligible_at[idx] = time.monotonic() + delay
            self.queue.append(idx)
            return
        self.fail(FailureRecord(
            usecase=self.cases[idx],
            index=idx,
            error_type=error_type,
            message=message,
            attempts=self.attempts[idx],
            worker_pid=pid,
            transient=transient,
        ))

    def _dispatch_outcome(self, idx: int, outcome: Tuple) -> None:
        if outcome[0] == "ok":
            self.deliver(idx, outcome[1], outcome[2], outcome[3])
        else:
            _, error_type, message, pid, transient = outcome
            self._handle_error(idx, error_type, message, pid, transient)

    # ------------------------------------------------------------------
    # the drive loop
    # ------------------------------------------------------------------
    def run(self, pending: Sequence[int]) -> None:
        from concurrent.futures import FIRST_COMPLETED
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures import wait
        from concurrent.futures.process import BrokenProcessPool

        self.queue = deque(pending)
        self.attempts = {idx: 0 for idx in pending}
        self.pool = self._make_pool()  # setup errors propagate (serial)
        try:
            while self.queue or self.inflight:
                now = time.monotonic()
                self._submit_eligible(now)
                timeout = self._wait_timeout(now)
                if not self.inflight:
                    # Everything queued is backing off; sleep it out.
                    if timeout:
                        _sleep(timeout)
                    continue
                done, _ = wait(
                    set(self.inflight),
                    timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    idx = self.inflight.pop(future)
                    self.deadline.pop(future, None)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        self._handle_error(
                            idx, type(exc).__name__,
                            str(exc) or "worker process died", 0, True,
                        )
                    except _TRANSIENT_CASE_ERRORS as exc:
                        self._handle_error(
                            idx, type(exc).__name__, str(exc), 0, True
                        )
                    except Exception as exc:
                        self._handle_error(
                            idx, type(exc).__name__, str(exc), 0, False
                        )
                    else:
                        self._dispatch_outcome(idx, outcome)
                if broken:
                    # The pool died: every other in-flight case is lost
                    # with it.  Requeue exactly those, then rebuild the
                    # pool once — completed cases are never re-run.
                    for future, idx in list(self.inflight.items()):
                        try:
                            exc = future.exception(timeout=60)
                        except (FuturesTimeout, Exception):
                            exc = None
                        message = (
                            str(exc) if exc else "lost with broken pool"
                        )
                        self._handle_error(
                            idx, "BrokenProcessPool", message, 0, True
                        )
                    self.inflight.clear()
                    self.deadline.clear()
                    self._rebuild_pool()
                    continue
                self._reap_overdue()
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=False)

    def _submit_eligible(self, now: float) -> None:
        waiting: "deque[int]" = deque()
        while self.queue:
            idx = self.queue.popleft()
            if self.eligible_at.get(idx, 0.0) > now:
                waiting.append(idx)
                continue
            self.attempts[idx] += 1
            future = self.pool.submit(
                _evaluate_usecase,
                (self.cases[idx], self.seed, self.options,
                 self.attempts[idx]),
            )
            self.inflight[future] = idx
            if self.case_timeout_s is not None:
                self.deadline[future] = now + self.case_timeout_s
        self.queue = waiting

    def _wait_timeout(self, now: float) -> Optional[float]:
        bounds = []
        if self.queue:
            bounds.append(
                min(self.eligible_at.get(i, now) for i in self.queue) - now
            )
        if self.deadline:
            bounds.append(min(self.deadline.values()) - now)
        if not bounds:
            return None
        return max(0.0, min(bounds))

    def _reap_overdue(self) -> None:
        """Abandon futures past their deadline and retry their cases.

        A ``ProcessPoolExecutor`` cannot cancel a *running* task, so a
        hung worker keeps its slot until it finishes — but the case
        itself is requeued (transient) immediately, and a late result
        from the abandoned future is simply dropped.
        """
        if self.case_timeout_s is None or not self.deadline:
            return
        now = time.monotonic()
        overdue = [f for f, dl in self.deadline.items() if dl <= now]
        for future in overdue:
            idx = self.inflight.pop(future)
            self.deadline.pop(future, None)
            future.cancel()
            self._handle_error(
                idx, "TimeoutError",
                f"no result within {self.case_timeout_s:g}s", 0, True,
            )


def _run_serial(
    cases: Sequence[UseCase],
    pending: Sequence[int],
    seed: int,
    options,
    deliver: Callable[[int, UseCaseResult, float, int], None],
    fail: Callable[[FailureRecord], None],
    metrics=None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
) -> None:
    """The serial path, with the same isolation/retry semantics."""
    for idx in pending:
        attempt = 0
        while True:
            attempt += 1
            outcome = _evaluate_usecase((cases[idx], seed, options, attempt))
            if outcome[0] == "ok":
                deliver(idx, outcome[1], outcome[2], outcome[3])
                break
            _, error_type, message, pid, transient = outcome
            if transient and attempt < max_attempts:
                if metrics is not None:
                    metrics.retries += 1
                _sleep(backoff_base_s * (2 ** (attempt - 1)))
                continue
            fail(FailureRecord(
                usecase=cases[idx],
                index=idx,
                error_type=error_type,
                message=message,
                attempts=attempt,
                worker_pid=pid,
                transient=transient,
            ))
            break


def run_sweep(
    spec: SweepSpec,
    progress: Optional[Callable[[UseCase, UseCaseResult], None]] = None,
    use_cache: bool = True,
    workers: Optional[int] = None,
    cache_dir: Union[None, str, Path] = None,
    metrics=None,
    max_failures: Optional[int] = 0,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
    case_timeout_s: Optional[float] = None,
) -> List[UseCaseResult]:
    """Run every use case of a spec.

    Args:
        spec: The grid.
        progress: Optional callback invoked per use case, always in
            grid order (parallel completions are re-sequenced).
        use_cache: Reuse results of an identical earlier sweep in this
            process (sweeps are deterministic).
        workers: Process count for the fan-out; ``None`` = auto
            (:data:`WORKERS_ENV`, else ``os.cpu_count()``), ``1`` =
            serial.  The serial path is also the automatic fallback
            when the platform cannot start a process pool.
        cache_dir: Directory of the persistent per-use-case cache;
            ``None`` consults ``REPRO_SWEEP_CACHE_DIR`` (unset =
            disabled).  See :mod:`repro.experiments.cache`.
        metrics: Optional :class:`~repro.experiments.metrics.SweepMetrics`
            collector to fill.
        max_failures: Failure policy.  The grid always runs to
            completion (successes are disk-cached either way); this
            only decides what happens *afterwards* when cases failed
            permanently: ``0`` (the default) raises
            :class:`~repro.errors.SweepFailure` on any failure, ``N``
            tolerates up to N, ``None`` never raises — callers then
            read ``metrics.failures`` for the partial-result story.
        max_attempts: Attempts per use case before a transient fault
            (``OSError``, timeout, broken pool) becomes permanent.
        backoff_base_s: First retry delay; doubles per attempt.
        case_timeout_s: Per-case wall-clock budget in the parallel
            path; an overdue case is abandoned and retried.  ``None``
            (the default) = no timeout.

    Returns:
        A fresh list of the *successful* results in grid order (safe
        to mutate).  Without failures — the overwhelmingly common case
        — that is the full grid.

    Raises:
        SweepFailure: When more than ``max_failures`` cases failed
            permanently.  The exception carries the failure records
            and the partial results.
    """
    from repro.experiments.metrics import (
        SOURCE_COMPUTED,
        SOURCE_DISK,
        SOURCE_MEMORY,
    )

    cases = spec.usecases()
    if use_cache and spec in _SWEEP_CACHE:
        cached = _SWEEP_CACHE[spec]
        if metrics is not None:
            for usecase, result in zip(cases, cached):
                metrics.record(usecase, result, SOURCE_MEMORY)
        return list(cached)

    options = spec.optimizer_options()
    from repro.experiments.cache import (
        SweepDiskCache,
        resolve_cache_dir,
        resolve_cache_max_bytes,
        usecase_key,
    )

    disk_root = resolve_cache_dir(cache_dir)
    cap = resolve_cache_max_bytes()
    # The cache enforces its cap opportunistically during the sweep,
    # not just at the end — a long grid must not blow past the budget
    # for hours before the final prune.
    disk = (
        SweepDiskCache(disk_root, max_bytes=cap)
        if disk_root is not None
        else None
    )

    n = len(cases)
    results: List[Optional[UseCaseResult]] = [None] * n
    #: A case is settled once it has a result *or* a failure record —
    #: the grid-order re-sequencer must not stall behind failed cases.
    settled: List[bool] = [False] * n
    sources: List[str] = [SOURCE_COMPUTED] * n
    timings: List[float] = [0.0] * n
    pids: List[int] = [0] * n
    keys: List[Optional[str]] = [None] * n
    failures: List[FailureRecord] = []
    pending: List[int] = []
    for idx, usecase in enumerate(cases):
        if disk is not None:
            keys[idx] = usecase_key(usecase, spec.seed, options)
            hit = disk.get(keys[idx])
            if hit is not None:
                results[idx] = hit
                settled[idx] = True
                sources[idx] = SOURCE_DISK
                continue
        pending.append(idx)

    nworkers = resolve_workers(workers, len(pending))
    if metrics is not None:
        metrics.workers = nworkers

    emitted = 0

    def deliver(idx: int, result: UseCaseResult, elapsed: float,
                pid: int) -> None:
        results[idx] = result
        settled[idx] = True
        timings[idx] = elapsed
        pids[idx] = pid
        if disk is not None:
            disk.put(keys[idx], result)

    def fail(record: FailureRecord) -> None:
        settled[record.index] = True
        failures.append(record)
        if metrics is not None:
            metrics.record_failure(record)

    def emit_ready() -> None:
        # Re-sequence: progress/metrics fire in grid order as soon as
        # the prefix up to the first still-running case is settled.
        nonlocal emitted
        while emitted < n and settled[emitted]:
            idx = emitted
            if results[idx] is not None:
                if metrics is not None:
                    metrics.record(
                        cases[idx],
                        results[idx],
                        sources[idx],
                        wall_time_s=timings[idx],
                        worker_pid=pids[idx],
                    )
                if progress is not None:
                    progress(cases[idx], results[idx])
            emitted += 1

    def deliver_and_emit(idx: int, result: UseCaseResult, elapsed: float,
                         pid: int) -> None:
        deliver(idx, result, elapsed, pid)
        emit_ready()

    def fail_and_emit(record: FailureRecord) -> None:
        fail(record)
        emit_ready()

    remaining = pending
    if remaining and nworkers > 1:
        try:
            _FanOut(
                cases,
                spec.seed,
                options,
                nworkers,
                deliver_and_emit,
                fail_and_emit,
                metrics=metrics,
                max_attempts=max_attempts,
                backoff_base_s=backoff_base_s,
                case_timeout_s=case_timeout_s,
            ).run(remaining)
            remaining = []
            if metrics is not None:
                metrics.parallel = True
        except _POOL_FAILURES:
            # The pool could not be *started* (sandboxed platform,
            # missing fork...) — finish whatever is left serially.
            # Per-case failures never reach here; they are records.
            remaining = [idx for idx in remaining if not settled[idx]]
            if metrics is not None:
                metrics.workers = 1
    if remaining:
        _run_serial(
            cases,
            remaining,
            spec.seed,
            options,
            deliver_and_emit,
            fail_and_emit,
            metrics=metrics,
            max_attempts=max_attempts,
            backoff_base_s=backoff_base_s,
        )
    emit_ready()

    if disk is not None and cap is not None:
        disk.prune(cap)

    final: List[UseCaseResult] = [r for r in results if r is not None]
    if failures and max_failures is not None and len(failures) > max_failures:
        raise SweepFailure(
            f"{len(failures)} of {n} use cases failed permanently "
            f"(first: {failures[0].usecase.program}/"
            f"{failures[0].usecase.config_id}/{failures[0].usecase.tech}: "
            f"{failures[0].error_type}: {failures[0].message})",
            failures=failures,
            results=final,
        )
    if use_cache and not failures:
        # Never memoize a partial grid: a rerun must recompute the
        # failed cases (the successes come back from disk).
        _SWEEP_CACHE[spec] = tuple(final)
    return final


def _pool_failure_types() -> Tuple[type, ...]:
    """Errors meaning "the pool itself broke", not "a use case failed"."""
    import pickle
    from concurrent.futures.process import BrokenProcessPool

    return (
        BrokenProcessPool,
        OSError,
        PermissionError,
        NotImplementedError,
        ImportError,
        pickle.PicklingError,
    )


_POOL_FAILURES = _pool_failure_types()


def group_by_capacity(
    results: Sequence[UseCaseResult],
) -> Dict[int, List[UseCaseResult]]:
    """Bucket results by cache capacity (the x-axis of Figs 3-5)."""
    buckets: Dict[int, List[UseCaseResult]] = {}
    for result in results:
        capacity = result.usecase.cache_config().capacity
        buckets.setdefault(capacity, []).append(result)
    return dict(sorted(buckets.items()))


def average(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    seq = list(values)
    if not seq:
        return 0.0
    return sum(seq) / len(seq)
