"""Sweep driver over (program × configuration × technology) grids.

The paper's full grid is 37 programs × 36 configurations × 2 nodes =
2664 use cases.  A pure-Python reproduction cannot afford that per
benchmark run, so the sweep is specified explicitly and two standard
grids are provided:

* :func:`default_grid` — the documented representative subset used by
  the benchmark harness: every program appears, capacities span the
  full 256 B – 8 KiB range, one (associativity, block size) pair per
  capacity, both technologies;
* :func:`full_grid` — the paper's complete 2664-case grid, for offline
  runs (see EXPERIMENTS.md).

Results are cached per spec within a process so the per-figure
benchmarks share one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.registry import program_names
from repro.cache.config import CAPACITIES, TABLE2, config_id
from repro.errors import ExperimentError
from repro.experiments.usecase import UseCase, UseCaseResult, run_usecase


@dataclass(frozen=True)
class SweepSpec:
    """A grid of use cases.

    Attributes:
        programs: Benchmark names.
        config_ids: Table 2 ids.
        techs: Technology names.
        seed: Executor seed for the ACET simulations.
        max_evaluations: Per-use-case optimization budget (see
            :class:`repro.core.OptimizerOptions.max_evaluations`);
            ``None`` = unlimited.
        baseline: Analysis fidelity: ``"classic"`` (must/may, the
            baseline of the paper's era — reproduces the paper's
            improvement magnitudes) or ``"persistence"`` (adds the
            first-miss domain; the tighter baseline leaves less for
            prefetching to win — see EXPERIMENTS.md).
    """

    programs: Tuple[str, ...]
    config_ids: Tuple[str, ...]
    techs: Tuple[str, ...]
    seed: int = 1
    max_evaluations: Optional[int] = None
    baseline: str = "classic"

    def __post_init__(self) -> None:
        if self.baseline not in ("classic", "persistence"):
            raise ExperimentError(
                f"baseline must be 'classic' or 'persistence', got "
                f"{self.baseline!r}"
            )

    def optimizer_options(self):
        """The options every use case of this sweep runs with."""
        from repro.core.optimizer import OptimizerOptions

        return OptimizerOptions(
            max_evaluations=self.max_evaluations,
            with_persistence=self.baseline == "persistence",
        )

    def usecases(self) -> List[UseCase]:
        """Expand the grid in (program, config, tech) order."""
        return [
            UseCase(p, k, t)
            for p in self.programs
            for k in self.config_ids
            for t in self.techs
        ]

    @property
    def size(self) -> int:
        """Number of use cases in the grid."""
        return len(self.programs) * len(self.config_ids) * len(self.techs)


def default_grid(
    programs: Optional[Sequence[str]] = None,
    techs: Sequence[str] = ("45nm", "32nm"),
    seed: int = 1,
    max_evaluations: Optional[int] = 120,
) -> SweepSpec:
    """The representative subset the benchmark harness runs.

    One direct-mapped 16 B-block configuration per capacity (k1, k7,
    k13, k19, k25, k31) — the 6-point capacity axis of Figures 3-5 —
    across all programs and both technologies.
    """
    config_ids = []
    for capacity in CAPACITIES:
        for kid, cfg in TABLE2.items():
            if (
                cfg.capacity == capacity
                and cfg.associativity == 1
                and cfg.block_size == 16
            ):
                config_ids.append(kid)
                break
    return SweepSpec(
        programs=tuple(programs if programs is not None else program_names()),
        config_ids=tuple(config_ids),
        techs=tuple(techs),
        seed=seed,
        max_evaluations=max_evaluations,
    )


def full_grid(seed: int = 1, max_evaluations: Optional[int] = 120) -> SweepSpec:
    """The paper's complete 37 × 36 × 2 grid (2664 use cases)."""
    return SweepSpec(
        programs=tuple(program_names()),
        config_ids=tuple(TABLE2.keys()),
        techs=("45nm", "32nm"),
        seed=seed,
        max_evaluations=max_evaluations,
    )


#: Process-wide cache: spec -> results (sweeps are deterministic).
_SWEEP_CACHE: Dict[SweepSpec, List[UseCaseResult]] = {}


def run_sweep(
    spec: SweepSpec,
    progress: Optional[Callable[[UseCase, UseCaseResult], None]] = None,
    use_cache: bool = True,
) -> List[UseCaseResult]:
    """Run every use case of a spec.

    Args:
        spec: The grid.
        progress: Optional callback invoked after each use case.
        use_cache: Reuse results of an identical earlier sweep in this
            process (sweeps are deterministic).

    Returns:
        Results in grid order.
    """
    if use_cache and spec in _SWEEP_CACHE:
        return _SWEEP_CACHE[spec]
    options = spec.optimizer_options()
    results: List[UseCaseResult] = []
    for usecase in spec.usecases():
        result = run_usecase(usecase, seed=spec.seed, options=options)
        results.append(result)
        if progress is not None:
            progress(usecase, result)
    if use_cache:
        _SWEEP_CACHE[spec] = results
    return results


def group_by_capacity(
    results: Sequence[UseCaseResult],
) -> Dict[int, List[UseCaseResult]]:
    """Bucket results by cache capacity (the x-axis of Figs 3-5)."""
    buckets: Dict[int, List[UseCaseResult]] = {}
    for result in results:
        capacity = result.usecase.cache_config().capacity
        buckets.setdefault(capacity, []).append(result)
    return dict(sorted(buckets.items()))


def average(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    seq = list(values)
    if not seq:
        return 0.0
    return sum(seq) / len(seq)
