"""Sweep driver over (program × configuration × technology) grids.

The paper's full grid is 37 programs × 36 configurations × 2 nodes =
2664 use cases.  A pure-Python reproduction cannot afford that per
benchmark run, so the sweep is specified explicitly and two standard
grids are provided:

* :func:`default_grid` — the documented representative subset used by
  the benchmark harness: every program appears, capacities span the
  full 256 B – 8 KiB range, one (associativity, block size) pair per
  capacity, both technologies;
* :func:`full_grid` — the paper's complete 2664-case grid, for offline
  runs (see EXPERIMENTS.md).

Use cases are independent, so :func:`run_sweep` fans them out over a
``concurrent.futures.ProcessPoolExecutor`` (``workers=``), assembling
results in deterministic grid order regardless of completion order, and
falls back to the serial path when ``workers=1`` or the platform cannot
run a process pool.  Three cache layers keep repeated work cheap:

* per-spec, in-process (``_SWEEP_CACHE``) — the per-figure benchmarks
  of one pytest session share one sweep; callers always receive a
  fresh list so mutating a result list cannot poison later readers;
* per-use-case, on disk (:mod:`repro.experiments.cache`) — interrupted
  sweeps resume, and fresh processes (each figure benchmark, each CLI
  run) reuse earlier results;
* optional :class:`~repro.experiments.metrics.SweepMetrics` collection
  reports where every result came from and what it cost.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.bench.registry import program_names
from repro.cache.config import CAPACITIES, TABLE2, config_id
from repro.errors import ExperimentError
from repro.experiments.usecase import (
    UseCase,
    UseCaseResult,
    pipeline_for_usecase,
    run_usecase,
)

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


@dataclass(frozen=True)
class SweepSpec:
    """A grid of use cases.

    Attributes:
        programs: Benchmark names.
        config_ids: Table 2 ids.
        techs: Technology names.
        seed: Executor seed for the ACET simulations.
        max_evaluations: Per-use-case optimization budget (see
            :class:`repro.core.OptimizerOptions.max_evaluations`);
            ``None`` = unlimited.
        baseline: Analysis fidelity: ``"classic"`` (must/may, the
            baseline of the paper's era — reproduces the paper's
            improvement magnitudes) or ``"persistence"`` (adds the
            first-miss domain; the tighter baseline leaves less for
            prefetching to win — see EXPERIMENTS.md).
    """

    programs: Tuple[str, ...]
    config_ids: Tuple[str, ...]
    techs: Tuple[str, ...]
    seed: int = 1
    max_evaluations: Optional[int] = None
    baseline: str = "classic"

    def __post_init__(self) -> None:
        if self.baseline not in ("classic", "persistence"):
            raise ExperimentError(
                f"baseline must be 'classic' or 'persistence', got "
                f"{self.baseline!r}"
            )

    def optimizer_options(self):
        """The options every use case of this sweep runs with."""
        from repro.core.optimizer import OptimizerOptions

        return OptimizerOptions(
            max_evaluations=self.max_evaluations,
            with_persistence=self.baseline == "persistence",
        )

    def usecases(self) -> List[UseCase]:
        """Expand the grid in (program, config, tech) order."""
        return [
            UseCase(p, k, t)
            for p in self.programs
            for k in self.config_ids
            for t in self.techs
        ]

    @property
    def size(self) -> int:
        """Number of use cases in the grid."""
        return len(self.programs) * len(self.config_ids) * len(self.techs)


def default_grid(
    programs: Optional[Sequence[str]] = None,
    techs: Sequence[str] = ("45nm", "32nm"),
    seed: int = 1,
    max_evaluations: Optional[int] = 120,
) -> SweepSpec:
    """The representative subset the benchmark harness runs.

    One direct-mapped 16 B-block configuration per capacity (k1, k7,
    k13, k19, k25, k31) — the 6-point capacity axis of Figures 3-5 —
    across all programs and both technologies.
    """
    config_ids = []
    for capacity in CAPACITIES:
        for kid, cfg in TABLE2.items():
            if (
                cfg.capacity == capacity
                and cfg.associativity == 1
                and cfg.block_size == 16
            ):
                config_ids.append(kid)
                break
    return SweepSpec(
        programs=tuple(programs if programs is not None else program_names()),
        config_ids=tuple(config_ids),
        techs=tuple(techs),
        seed=seed,
        max_evaluations=max_evaluations,
    )


def full_grid(seed: int = 1, max_evaluations: Optional[int] = 120) -> SweepSpec:
    """The paper's complete 37 × 36 × 2 grid (2664 use cases)."""
    return SweepSpec(
        programs=tuple(program_names()),
        config_ids=tuple(TABLE2.keys()),
        techs=("45nm", "32nm"),
        seed=seed,
        max_evaluations=max_evaluations,
    )


#: Process-wide cache: spec -> results (sweeps are deterministic).
#: Holds immutable tuples; :func:`run_sweep` hands out fresh lists so a
#: caller mutating its copy cannot poison later readers.
_SWEEP_CACHE: Dict[SweepSpec, Tuple[UseCaseResult, ...]] = {}


def resolve_workers(workers: Optional[int], pending: int) -> int:
    """The effective worker count for ``pending`` runnable use cases.

    ``None`` means auto: the :data:`WORKERS_ENV` environment variable if
    set, else ``os.cpu_count()``.  The result is clamped to the number
    of runnable cases (never below 1) — a sweep served entirely from
    cache should not spin up a pool.

    Raises:
        ConfigError: If ``workers`` (or the environment override) is not
            a positive integer — diagnosed here, with the knob named,
            rather than surfacing as a raw ``ValueError`` from deep
            inside :func:`run_sweep`.
    """
    from repro.errors import ConfigError

    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ConfigError(
                    f"{WORKERS_ENV} must be a positive integer, got {env!r}"
                ) from None
            if workers < 1:
                raise ConfigError(
                    f"{WORKERS_ENV} must be a positive integer, got {env!r}"
                )
        else:
            workers = os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(
            f"workers must be a positive integer, got {workers!r}"
        )
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return max(1, min(workers, pending))


def _evaluate_usecase(payload) -> Tuple[UseCaseResult, float, int]:
    """Worker entry point: run one use case, timed.

    Module-level so it pickles under every multiprocessing start
    method.  Returns (result, wall seconds, worker pid).
    """
    usecase, seed, options = payload
    start = time.perf_counter()
    # One analysis pipeline per use case: all phases of the use case
    # share cached artifacts, while use cases stay independent (and the
    # pipeline never crosses a process boundary).
    pipeline = pipeline_for_usecase(usecase, options)
    result = run_usecase(usecase, seed=seed, options=options, pipeline=pipeline)
    return result, time.perf_counter() - start, os.getpid()


def _pool_results(
    cases: Sequence[UseCase],
    pending: Sequence[int],
    seed: int,
    options,
    workers: int,
) -> Iterator[Tuple[int, Tuple[UseCaseResult, float, int]]]:
    """Chunked process-pool evaluation, yielding in ``pending`` order.

    Raises whatever pool-infrastructure error occurs so the caller can
    fall back to the serial path; use-case exceptions propagate as-is.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        # Cheapest start method where available: workers inherit the
        # loaded benchmark registry instead of re-importing it.
        context = multiprocessing.get_context("fork")
    payloads = [(cases[idx], seed, options) for idx in pending]
    chunksize = max(1, len(pending) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        yield from zip(pending, pool.map(_evaluate_usecase, payloads,
                                         chunksize=chunksize))


def run_sweep(
    spec: SweepSpec,
    progress: Optional[Callable[[UseCase, UseCaseResult], None]] = None,
    use_cache: bool = True,
    workers: Optional[int] = None,
    cache_dir: Union[None, str, Path] = None,
    metrics=None,
) -> List[UseCaseResult]:
    """Run every use case of a spec.

    Args:
        spec: The grid.
        progress: Optional callback invoked per use case, always in
            grid order (parallel completions are re-sequenced).
        use_cache: Reuse results of an identical earlier sweep in this
            process (sweeps are deterministic).
        workers: Process count for the fan-out; ``None`` = auto
            (:data:`WORKERS_ENV`, else ``os.cpu_count()``), ``1`` =
            serial.  The serial path is also the automatic fallback
            when the platform cannot start a process pool.
        cache_dir: Directory of the persistent per-use-case cache;
            ``None`` consults ``REPRO_SWEEP_CACHE_DIR`` (unset =
            disabled).  See :mod:`repro.experiments.cache`.
        metrics: Optional :class:`~repro.experiments.metrics.SweepMetrics`
            collector to fill.

    Returns:
        A fresh list of results in grid order (safe to mutate).
    """
    from repro.experiments.metrics import (
        SOURCE_COMPUTED,
        SOURCE_DISK,
        SOURCE_MEMORY,
    )

    cases = spec.usecases()
    if use_cache and spec in _SWEEP_CACHE:
        cached = _SWEEP_CACHE[spec]
        if metrics is not None:
            for usecase, result in zip(cases, cached):
                metrics.record(usecase, result, SOURCE_MEMORY)
        return list(cached)

    options = spec.optimizer_options()
    from repro.experiments.cache import (
        SweepDiskCache,
        resolve_cache_dir,
        usecase_key,
    )

    disk_root = resolve_cache_dir(cache_dir)
    disk = SweepDiskCache(disk_root) if disk_root is not None else None

    n = len(cases)
    results: List[Optional[UseCaseResult]] = [None] * n
    sources: List[str] = [SOURCE_COMPUTED] * n
    timings: List[float] = [0.0] * n
    pids: List[int] = [0] * n
    keys: List[Optional[str]] = [None] * n
    pending: List[int] = []
    for idx, usecase in enumerate(cases):
        if disk is not None:
            keys[idx] = usecase_key(usecase, spec.seed, options)
            hit = disk.get(keys[idx])
            if hit is not None:
                results[idx] = hit
                sources[idx] = SOURCE_DISK
                continue
        pending.append(idx)

    nworkers = resolve_workers(workers, len(pending))
    if metrics is not None:
        metrics.workers = nworkers

    emitted = 0

    def take(idx: int, outcome: Tuple[UseCaseResult, float, int]) -> None:
        result, elapsed, pid = outcome
        results[idx] = result
        timings[idx] = elapsed
        pids[idx] = pid
        if disk is not None:
            disk.put(keys[idx], result)

    def emit_ready() -> None:
        # Re-sequence: progress/metrics fire in grid order as soon as
        # the prefix up to the first still-running case is complete.
        nonlocal emitted
        while emitted < n and results[emitted] is not None:
            idx = emitted
            if metrics is not None:
                metrics.record(
                    cases[idx],
                    results[idx],
                    sources[idx],
                    wall_time_s=timings[idx],
                    worker_pid=pids[idx],
                )
            if progress is not None:
                progress(cases[idx], results[idx])
            emitted += 1

    remaining = pending
    if remaining and nworkers > 1:
        try:
            for idx, outcome in _pool_results(
                cases, remaining, spec.seed, options, nworkers
            ):
                take(idx, outcome)
                emit_ready()
            remaining = []
            if metrics is not None:
                metrics.parallel = True
        except _POOL_FAILURES:
            # The pool could not run (sandboxed platform, missing fork,
            # dead worker...) — finish whatever is left serially.
            remaining = [idx for idx in remaining if results[idx] is None]
            if metrics is not None:
                metrics.workers = 1
    for idx in remaining:
        take(idx, _evaluate_usecase((cases[idx], spec.seed, options)))
        emit_ready()
    emit_ready()

    if disk is not None:
        from repro.experiments.cache import resolve_cache_max_bytes

        cap = resolve_cache_max_bytes()
        if cap is not None:
            disk.prune(cap)

    final: List[UseCaseResult] = list(results)  # type: ignore[arg-type]
    if use_cache:
        _SWEEP_CACHE[spec] = tuple(final)
    return final


def _pool_failure_types() -> Tuple[type, ...]:
    """Errors meaning "the pool itself broke", not "a use case failed"."""
    import pickle
    from concurrent.futures.process import BrokenProcessPool

    return (
        BrokenProcessPool,
        OSError,
        PermissionError,
        NotImplementedError,
        ImportError,
        pickle.PicklingError,
    )


_POOL_FAILURES = _pool_failure_types()


def group_by_capacity(
    results: Sequence[UseCaseResult],
) -> Dict[int, List[UseCaseResult]]:
    """Bucket results by cache capacity (the x-axis of Figs 3-5)."""
    buckets: Dict[int, List[UseCaseResult]] = {}
    for result in results:
        capacity = result.usecase.cache_config().capacity
        buckets.setdefault(capacity, []).append(result)
    return dict(sorted(buckets.items()))


def average(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    seq = list(values)
    if not seq:
        return 0.0
    return sum(seq) / len(seq)
