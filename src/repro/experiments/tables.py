"""Data for the paper's Tables 1 and 2.

These tables are setup inventories rather than measurements; the
generators reproduce them from the registries so the benchmark harness
can assert the evaluation matrix matches the paper's (37 programs, 36
configurations, 2 technologies, 2664 use cases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.bench.registry import TABLE1
from repro.cache.config import TABLE2
from repro.energy.technology import TECHNOLOGIES


@dataclass(frozen=True)
class Table1Row:
    """One program of Table 1."""

    program_id: str
    name: str


@dataclass(frozen=True)
class Table2Row:
    """One cache configuration of Table 2."""

    config_id: str
    associativity: int
    block_size: int
    capacity: int


def table1() -> List[Table1Row]:
    """The 37 benchmark programs with their ids."""
    return [Table1Row(pid, name) for pid, name in TABLE1.items()]


def table2() -> List[Table2Row]:
    """The 36 cache configurations with their ids."""
    return [
        Table2Row(kid, cfg.associativity, cfg.block_size, cfg.capacity)
        for kid, cfg in TABLE2.items()
    ]


def evaluation_matrix() -> Tuple[int, int, int, int]:
    """(programs, configurations, technologies, total use cases).

    The paper reports 37 x 36 x 2 = 2664 use cases.
    """
    programs = len(TABLE1)
    configs = len(TABLE2)
    techs = len(TECHNOLOGIES)
    return programs, configs, techs, programs * configs * techs
