"""One use case = (program, cache configuration, technology).

The paper's evaluation unit (Section 5 / S.4): for each use case it
compares the original executable ``e_p`` against the optimized
``e_{p,k,t}`` on three measures —

* ``τ_w`` — memory contribution to the WCET (conventional analysis),
* ``τ_a`` — memory contribution to the ACET (trace simulation),
* ``e_a`` — memory energy in the ACET scenario (trace + CACTI model) —

plus the executed-instruction count (Fig. 8) and miss rates (Fig. 4).
:func:`run_usecase` produces all of it; Figure 5's cross-capacity
variant (optimized program on a 1/2 or 1/4 capacity cache vs. the
original on the full cache) is :func:`run_cross_capacity`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.analysis.pipeline import AnalysisPipeline
from repro.analysis.wcet import analyze_wcet
from repro.bench.registry import load
from repro.cache.config import (
    CacheConfig,
    HierarchyConfig,
    TABLE2,
    hierarchy_for,
)
from repro.core.optimizer import OptimizationReport, OptimizerOptions, optimize
from repro.energy.cacti import hierarchy_model
from repro.energy.dram import DRAMModel
from repro.energy.metrics import EnergyBreakdown, account_energy
from repro.energy.technology import technology
from repro.errors import ExperimentError
from repro.obs.trace import active_tracer
from repro.program.acfg import build_acfg
from repro.program.cfg import ControlFlowGraph
from repro.sim.machine import simulate


@dataclass(frozen=True)
class UseCase:
    """Identifies one evaluation point of the sweep.

    Attributes:
        program: Benchmark name (Table 1).
        config_id: Cache configuration id (Table 2, ``"k1"``..``"k36"``).
        tech: Technology name (``"45nm"``/``"32nm"``).
        l2: Optional second-level cache spec
            (``assoc:block:capacity:latency``); ``None`` is the paper's
            single-level memory system.
    """

    program: str
    config_id: str
    tech: str
    l2: Optional[str] = None

    def cache_config(self) -> CacheConfig:
        """Resolve the Table 2 configuration."""
        try:
            return TABLE2[self.config_id]
        except KeyError:
            raise ExperimentError(
                f"unknown cache configuration id {self.config_id!r}"
            ) from None

    def hierarchy_config(self) -> HierarchyConfig:
        """The full memory hierarchy (single-level when ``l2`` unset)."""
        return hierarchy_for(self.cache_config(), self.l2)


@dataclass
class ProgramMeasurement:
    """All measures of one executable on one cache/technology.

    Attributes:
        tau_w: Memory contribution to the WCET (cycles).
        tau_a: Memory contribution to the ACET (cycles).
        energy: Memory energy breakdown over the ACET run.
        miss_rate_acet: Demand miss rate of the trace run.
        miss_rate_wcet: Miss rate along the WCET scenario.
        executed_instructions: Dynamic instruction count of the run.
        static_instructions: Static instruction count of the binary.
        prefetch_transfer_energy_j: The DRAM energy spent on software
            prefetch transfers, separated out so the harness can also
            report the paper-comparable energy view (the paper's energy
            improvement exceeds its ACET improvement, which implies its
            trace-based estimation did not charge prefetch transfers;
            ours does by default — see EXPERIMENTS.md).
        l2_accesses: Second-level probes in the trace run (0 when the
            hierarchy is single-level).
        l2_hits: Second-level probes served without a DRAM transfer.
        l2_fills: Blocks installed into the second level.
        prefetch_l2_hits: Prefetch transfers the second level served.
    """

    tau_w: float
    tau_a: float
    energy: EnergyBreakdown
    miss_rate_acet: float
    miss_rate_wcet: float
    executed_instructions: int
    static_instructions: int
    prefetch_transfer_energy_j: float = 0.0
    l2_accesses: int = 0
    l2_hits: int = 0
    l2_fills: int = 0
    prefetch_l2_hits: int = 0

    @property
    def energy_paper_mode_j(self) -> float:
        """Total energy without the prefetch DRAM transfer charge."""
        return self.energy.total_j - self.prefetch_transfer_energy_j


@dataclass
class UseCaseResult:
    """Paired original/optimized measurements of one use case."""

    usecase: UseCase
    original: ProgramMeasurement
    optimized: ProgramMeasurement
    report: OptimizationReport

    # ------------------------------------------------------------------
    # the paper's three ratios (Inequations 10-12) + Fig. 8's
    # ------------------------------------------------------------------
    @property
    def energy_ratio(self) -> float:
        """``e_a(opt) / e_a(orig)`` (Ineq. 10; < 1 means savings)."""
        return _ratio(self.optimized.energy.total_j, self.original.energy.total_j)

    @property
    def acet_ratio(self) -> float:
        """``τ_a(opt) / τ_a(orig)`` (Ineq. 11)."""
        return _ratio(self.optimized.tau_a, self.original.tau_a)

    @property
    def wcet_ratio(self) -> float:
        """``τ_w(opt) / τ_w(orig)`` (Ineq. 12)."""
        return _ratio(self.optimized.tau_w, self.original.tau_w)

    @property
    def energy_ratio_paper_mode(self) -> float:
        """Energy ratio without charging prefetch DRAM transfers.

        The closest match to the paper's trace-based estimation (its
        energy improvement of 11.2 % exceeds its ACET improvement of
        10.2 %, which rules out a per-transfer prefetch charge).
        """
        return _ratio(
            self.optimized.energy_paper_mode_j,
            self.original.energy_paper_mode_j,
        )

    @property
    def instruction_ratio(self) -> float:
        """Executed instructions, optimized over original (Fig. 8)."""
        return _ratio(
            float(self.optimized.executed_instructions),
            float(self.original.executed_instructions),
        )

    @property
    def miss_rate_delta(self) -> float:
        """ACET miss-rate change (optimized - original), in points."""
        return self.optimized.miss_rate_acet - self.original.miss_rate_acet


def _ratio(num: float, den: float) -> float:
    # 0/0 is a genuine no-op (neither build consumed the quantity), so
    # 1.0 is the honest ratio; anything/0 means the optimized build
    # consumes something the original did not — an unbounded regression
    # that must not masquerade as "unchanged".
    if den == 0:
        return 1.0 if num == 0 else float("inf")
    return num / den


def measure_program(
    cfg: ControlFlowGraph,
    config: CacheConfig,
    tech_name: str,
    seed: int = 1,
    base_address: int = 0,
    with_persistence: bool = True,
    pipeline: Optional[AnalysisPipeline] = None,
    l2: Optional[str] = None,
) -> ProgramMeasurement:
    """Analyse + simulate one executable on one hierarchy/technology.

    When ``pipeline`` is given the WCET analysis runs through it —
    sharing artifacts with the optimization phase of the same use case —
    and the pipeline's own persistence/base-address/hierarchy settings
    apply (pass an ``l2`` that matches the pipeline's).
    """
    tech = technology(tech_name)
    hierarchy = hierarchy_for(config, l2)
    models = hierarchy_model(hierarchy, tech)
    model, l2_model, timing = models.l1, models.l2, models.timing
    if pipeline is not None:
        base_address = pipeline.base_address
        wcet = pipeline.analyze(cfg).wcet
    else:
        acfg = build_acfg(cfg, config.block_size, base_address)
        wcet = analyze_wcet(
            acfg, config, timing, with_persistence=with_persistence,
            hierarchy=hierarchy if hierarchy.multi_level else None,
        )
    level2 = hierarchy.l2_level
    sim = simulate(
        cfg, config, timing, seed=seed, base_address=base_address,
        l2_config=level2.config if level2 is not None else None,
    )
    dram = DRAMModel(tech)
    energy = account_energy(sim.event_counts(), model, dram, l2_model=l2_model)
    return ProgramMeasurement(
        tau_w=wcet.tau_w,
        tau_a=sim.memory_cycles,
        energy=energy,
        miss_rate_acet=sim.miss_rate,
        miss_rate_wcet=wcet.wcet_miss_rate,
        executed_instructions=sim.fetches,
        static_instructions=cfg.instruction_count,
        prefetch_transfer_energy_j=(
            (sim.prefetch_transfers - sim.prefetch_l2_hits)
            * dram.access_energy_j(config.block_size)
        ),
        l2_accesses=sim.l2_accesses,
        l2_hits=sim.l2_hits,
        l2_fills=sim.l2_fills,
        prefetch_l2_hits=sim.prefetch_l2_hits,
    )


def _effective_options(
    usecase: UseCase,
    options: Optional[OptimizerOptions],
) -> Tuple[OptimizerOptions, Optional[str]]:
    """Reconcile the use case's L2 axis with the optimizer options.

    The use case is the authority on the hierarchy; options may carry
    the same spec (or none), but never a conflicting one.
    """
    opts = options or OptimizerOptions()
    if (
        usecase.l2 is not None
        and opts.l2 is not None
        and usecase.l2 != opts.l2
    ):
        raise ExperimentError(
            f"use case L2 spec {usecase.l2!r} conflicts with optimizer "
            f"options L2 spec {opts.l2!r}"
        )
    l2 = usecase.l2 or opts.l2
    if opts.l2 != l2:
        opts = replace(opts, l2=l2)
    return opts, l2


def pipeline_for_usecase(
    usecase: UseCase,
    options: Optional[OptimizerOptions] = None,
) -> AnalysisPipeline:
    """One shared analysis pipeline for all phases of one use case.

    Honors the optimizer options' analysis-relevant knobs (persistence
    domain, locked blocks, base address, hierarchy) so the same pipeline
    serves the measure → optimize → measure sequence of
    :func:`run_usecase`.
    """
    config = usecase.cache_config()
    opts, l2 = _effective_options(usecase, options)
    tech = technology(usecase.tech)
    timing = hierarchy_model(hierarchy_for(config, l2), tech).timing
    return AnalysisPipeline.for_options(config, timing, opts)


def run_usecase(
    usecase: UseCase,
    seed: int = 1,
    options: Optional[OptimizerOptions] = None,
    pipeline: Optional[AnalysisPipeline] = None,
) -> UseCaseResult:
    """Run the paper's per-use-case experiment.

    Builds the program, measures the original, optimizes for the use
    case's cache/technology, and measures the optimized executable on
    the same cache/technology.  All three phases share one analysis
    pipeline (``pipeline`` or a fresh :func:`pipeline_for_usecase`), so
    the optimizer starts from the original measurement's analysis and
    the final measurement reuses the last accepted candidate's
    artifacts.
    """
    config = usecase.cache_config()
    tech = technology(usecase.tech)
    opts, l2 = _effective_options(usecase, options)
    timing = hierarchy_model(hierarchy_for(config, l2), tech).timing
    if pipeline is None:
        pipeline = pipeline_for_usecase(usecase, opts)
    tracer = active_tracer()
    with tracer.start_span(
        "usecase",
        attributes={
            "program": usecase.program,
            "config": usecase.config_id,
            "tech": usecase.tech,
        },
    ):
        original_cfg = load(usecase.program)
        with tracer.start_span("usecase.measure_original"):
            original = measure_program(
                original_cfg, config, usecase.tech, seed=seed,
                pipeline=pipeline, l2=l2,
            )
        with tracer.start_span("usecase.optimize") as opt_span:
            optimized_cfg, report = optimize(
                original_cfg, config, timing, options=opts, pipeline=pipeline
            )
            if opt_span.recording:
                opt_span.set_attributes(
                    {
                        "passes": report.passes,
                        "inserted": len(report.inserted),
                        "evaluations": report.candidates_evaluated,
                    }
                )
        with tracer.start_span("usecase.measure_optimized"):
            optimized = measure_program(
                optimized_cfg, config, usecase.tech, seed=seed,
                pipeline=pipeline, l2=l2,
            )
    return UseCaseResult(
        usecase=usecase, original=original, optimized=optimized, report=report
    )


def run_cross_capacity(
    usecase: UseCase,
    capacity_factor: float,
    seed: int = 1,
    options: Optional[OptimizerOptions] = None,
) -> UseCaseResult:
    """Figure 5's experiment: optimized program on a shrunken cache.

    The original program runs on the use case's full-capacity cache; the
    program is optimized *for the scaled-down configuration* and runs on
    it.  The energy comparison thus includes the smaller cache's lower
    leakage and per-access energy — the mechanism behind the paper's
    "up to 21% with 2-4x smaller caches" headline.

    Args:
        usecase: The base use case (full-size cache).
        capacity_factor: 0.5 or 0.25 in the paper.
        seed: Executor seed.
        options: Optimizer options.
    """
    if not 0 < capacity_factor <= 1:
        raise ExperimentError(
            f"capacity factor must be in (0, 1], got {capacity_factor}"
        )
    big = usecase.cache_config()
    small = big.scaled_capacity(capacity_factor)
    tech = technology(usecase.tech)
    opts, l2 = _effective_options(usecase, options)
    timing_small = hierarchy_model(hierarchy_for(small, l2), tech).timing
    persistence = opts.with_persistence
    # One pipeline for the small-cache phases; the original's big-cache
    # measurement is a different configuration and stays standalone.
    small_pipeline = AnalysisPipeline.for_options(small, timing_small, opts)
    original_cfg = load(usecase.program)
    # Same base address as the optimized build (the pipeline's): both
    # executables must be laid out identically or the big-cache side
    # measures a different memory image than the comparison assumes.
    original = measure_program(
        original_cfg, big, usecase.tech, seed=seed,
        base_address=opts.base_address,
        with_persistence=persistence, l2=l2,
    )
    optimized_cfg, report = optimize(
        original_cfg, small, timing_small, options=opts,
        pipeline=small_pipeline,
    )
    optimized = measure_program(
        optimized_cfg, small, usecase.tech, seed=seed,
        pipeline=small_pipeline, l2=l2,
    )
    return UseCaseResult(
        usecase=usecase, original=original, optimized=optimized, report=report
    )
