"""Deterministic fault injection for the sweep/service execution layer.

A production-scale sweep must survive a worker crashing mid-case, a
wedged worker, or a corrupted record — but none of those happen on
demand, so the failure-isolation machinery of
:func:`repro.experiments.sweep.run_sweep` would be untestable without a
way to *make* them happen deterministically.  This module is that way:

* the :data:`FAULT_PLAN_ENV` environment variable (``REPRO_FAULT_PLAN``)
  carries a JSON plan that survives the trip into pool workers (the
  environment is inherited under both ``fork`` and ``spawn``), so
  multi-process scenarios — a worker calling ``os._exit`` and breaking
  the pool — are reproducible in CI;
* :func:`set_fault_hook` installs an in-process callable for tests that
  stay single-process (the serial path, thread pools).

A plan maps ``"program/config_id/tech"`` keys (or ``"*"``) to specs::

    REPRO_FAULT_PLAN='{"bs/k1/45nm": {"kind": "crash", "attempts": [1]}}'

Fault kinds:

``crash``
    Raise :class:`SimulatedFault` — a deterministic use-case failure;
    the sweep records it, never retries it.
``transient``
    Raise ``OSError`` — the retriable family; the sweep backs off and
    retries up to its attempt budget.
``exit``
    ``os._exit(13)`` — kills the worker process outright, breaking the
    process pool (the pool-rebuild + requeue path).
``hang``
    Sleep ``seconds`` — exercises the case-timeout/wedged-pool path.
``corrupt``
    Let the computation finish, then clobber the optimized ``tau_w``
    with :data:`CORRUPT_MARKER` — a result that is *wrong* without
    being an exception, for downstream-validation tests.

``attempts`` lists the 1-based attempt numbers the fault fires on
(default ``[1]``), so "fail twice then succeed" needs no shared state:
the attempt number travels inside the worker payload.
"""

from __future__ import annotations

import functools
import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError, ReproError

#: Environment variable carrying the JSON fault plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The value a ``corrupt`` fault writes into the optimized ``tau_w``.
CORRUPT_MARKER = -1.0

FAULT_KINDS = ("crash", "transient", "exit", "hang", "corrupt")


class SimulatedFault(ReproError):
    """The deterministic failure a ``crash`` fault raises."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        attempts: 1-based attempt numbers the fault fires on.
        seconds: Sleep duration of a ``hang`` fault.
    """

    kind: str
    attempts: Tuple[int, ...] = (1,)
    seconds: float = 0.0

    def fires_on(self, attempt: int) -> bool:
        """Whether this fault is active on the given attempt."""
        return attempt in self.attempts


#: In-process hook: ``(usecase, attempt) -> Optional[FaultSpec]``.
_HOOK: Optional[Callable[[object, int], Optional[FaultSpec]]] = None


def set_fault_hook(
    hook: Optional[Callable[[object, int], Optional[FaultSpec]]]
) -> None:
    """Install (or clear, with ``None``) the in-process fault hook.

    The hook only reaches code running in *this* process — the serial
    sweep path and thread pools.  Process-pool scenarios must use the
    :data:`FAULT_PLAN_ENV` plan instead.
    """
    global _HOOK
    _HOOK = hook


def parse_fault_plan(text: str) -> Dict[str, FaultSpec]:
    """Parse a JSON fault plan into ``key -> FaultSpec``.

    Raises:
        ConfigError: On malformed JSON, unknown fault kinds, or bad
            ``attempts``/``seconds`` values — named after the knob so a
            typo in ``REPRO_FAULT_PLAN`` fails loudly, not silently.
    """
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ConfigError(
            f"{FAULT_PLAN_ENV} is not valid JSON: {exc}"
        ) from None
    if not isinstance(data, dict):
        raise ConfigError(
            f"{FAULT_PLAN_ENV} must be a JSON object, got "
            f"{type(data).__name__}"
        )
    plan: Dict[str, FaultSpec] = {}
    for key, raw in data.items():
        if not isinstance(raw, dict):
            raise ConfigError(
                f"{FAULT_PLAN_ENV}[{key!r}] must be an object"
            )
        kind = raw.get("kind")
        if kind not in FAULT_KINDS:
            raise ConfigError(
                f"{FAULT_PLAN_ENV}[{key!r}].kind must be one of "
                f"{FAULT_KINDS}, got {kind!r}"
            )
        attempts = raw.get("attempts", [1])
        if (not isinstance(attempts, list) or not attempts
                or not all(isinstance(a, int) and a >= 1 for a in attempts)):
            raise ConfigError(
                f"{FAULT_PLAN_ENV}[{key!r}].attempts must be a non-empty "
                f"list of attempt numbers >= 1, got {attempts!r}"
            )
        seconds = raw.get("seconds", 0.0)
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise ConfigError(
                f"{FAULT_PLAN_ENV}[{key!r}].seconds must be a "
                f"non-negative number, got {seconds!r}"
            )
        plan[key] = FaultSpec(
            kind=kind, attempts=tuple(attempts), seconds=float(seconds)
        )
    return plan


@functools.lru_cache(maxsize=8)
def _cached_plan(text: str) -> Dict[str, FaultSpec]:
    return parse_fault_plan(text)


def _env_fault(usecase, attempt: int) -> Optional[FaultSpec]:
    text = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not text:
        return None
    plan = _cached_plan(text)
    key = f"{usecase.program}/{usecase.config_id}/{usecase.tech}"
    spec = plan.get(key) or plan.get("*")
    if spec is not None and spec.fires_on(attempt):
        return spec
    return None


def active_fault(usecase, attempt: int) -> Optional[FaultSpec]:
    """The fault to inject for this (use case, attempt), if any.

    The in-process hook wins over the environment plan; both absent —
    the overwhelmingly common case — costs one ``os.environ`` lookup.
    """
    if _HOOK is not None:
        spec = _HOOK(usecase, attempt)
        if spec is not None and spec.fires_on(attempt):
            return spec
        return None
    return _env_fault(usecase, attempt)


def inject_before(usecase, attempt: int) -> None:
    """Fire any pre-computation fault (crash/transient/exit/hang)."""
    spec = active_fault(usecase, attempt)
    if spec is None:
        return
    label = f"{usecase.program}/{usecase.config_id}/{usecase.tech}"
    if spec.kind == "crash":
        raise SimulatedFault(
            f"injected crash for {label} (attempt {attempt})"
        )
    if spec.kind == "transient":
        raise OSError(
            f"injected transient fault for {label} (attempt {attempt})"
        )
    if spec.kind == "exit":
        os._exit(13)
    if spec.kind == "hang":
        time.sleep(spec.seconds)


def inject_after(usecase, attempt: int, result):
    """Apply any post-computation fault (``corrupt``) to ``result``."""
    spec = active_fault(usecase, attempt)
    if spec is not None and spec.kind == "corrupt":
        result.optimized.tau_w = CORRUPT_MARKER
    return result
