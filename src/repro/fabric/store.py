"""Fleet-shared content-addressed result store.

The coordinator and every worker key results by
:func:`repro.experiments.cache.usecase_key` — a machine-independent
content hash over (use case, seed, optimizer options, code version) —
so one store serves the whole fleet: a worker that computes a case any
other node already finished is deduplicated by key, not by luck.

The store is an in-memory overlay over an optional
:class:`~repro.experiments.cache.SweepDiskCache`.  The overlay makes
the coordinator's hot path (merging shard results, replaying the
stream to late subscribers) free of disk reads and JSON parses; the
disk layer is what actually crosses node boundaries when workers share
a filesystem, and what makes a coordinator restart cheap.

Duplicate puts are the *normal* outcome of work-stealing — a stolen
shard races its straggling origin, and whichever finishes second hits
an already-present key.  Results are deterministic, so the duplicate
is simply dropped and counted (``duplicates``); nothing ever
overwrites a result with a different one.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.experiments.cache import SweepDiskCache, resolve_cache_max_bytes
from repro.experiments.usecase import UseCaseResult


class ResultStore:
    """Keyed result map with an optional shared disk layer.

    Thread-safe: the coordinator's asyncio loop and the service's
    worker threads may touch it concurrently.

    Attributes:
        puts: Results accepted into the overlay.
        duplicates: Puts dropped because the key was already present
            (speculative clones finishing after their origin).
        disk_hits: Lookups served from the shared disk cache.
    """

    def __init__(
        self,
        cache_dir: Union[None, str, Path] = None,
        max_bytes: Optional[int] = None,
    ):
        self._memory: Dict[str, UseCaseResult] = {}
        self._lock = threading.Lock()
        self.disk: Optional[SweepDiskCache] = None
        if cache_dir is not None:
            cap = (
                max_bytes
                if max_bytes is not None
                else resolve_cache_max_bytes()
            )
            self.disk = SweepDiskCache(Path(cache_dir), max_bytes=cap)
        self.puts = 0
        self.duplicates = 0
        self.disk_hits = 0

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._memory

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def get(self, key: str) -> Optional[UseCaseResult]:
        """The result under a key: overlay first, then shared disk.

        A disk hit is promoted into the overlay so the parse happens
        once per coordinator lifetime, not once per reader.
        """
        with self._lock:
            hit = self._memory.get(key)
        if hit is not None:
            return hit
        if self.disk is None:
            return None
        result = self.disk.get(key)
        if result is None:
            return None
        with self._lock:
            if key not in self._memory:
                self._memory[key] = result
                self.disk_hits += 1
            return self._memory[key]

    def put(self, key: str, result: UseCaseResult) -> bool:
        """Accept a result; returns ``False`` for a duplicate key.

        First writer wins — results are deterministic, so the losing
        duplicate (a steal racing its origin, a worker double-report)
        carries the same payload and is dropped, not compared.
        """
        with self._lock:
            if key in self._memory:
                self.duplicates += 1
                return False
            self._memory[key] = result
            self.puts += 1
        if self.disk is not None:
            self.disk.put(key, result)
        return True

    def missing(self, keys: Iterable[str]) -> List[str]:
        """The subset of ``keys`` not yet resolvable (overlay or disk)."""
        return [key for key in keys if self.get(key) is None]

    def stats(self) -> Dict[str, int]:
        """Counters for telemetry and ``/healthz``."""
        with self._lock:
            size = len(self._memory)
        data = {
            "results": size,
            "puts": self.puts,
            "duplicates": self.duplicates,
            "disk_hits": self.disk_hits,
        }
        if self.disk is not None:
            data["disk_discarded"] = self.disk.discarded
        return data
