"""Shard execution inside a worker node, and coordinator registration.

A fabric worker is a plain ``repro serve`` node: shards arrive as
ordinary jobs (``kind: "shard"``) through the same bounded queue,
process pool, retry and telemetry machinery every other job kind uses.
:func:`execute_shard` is the pool entry point — it reuses the sweep
engine's :func:`~repro.experiments.sweep._run_serial` driver, so a
shard case gets exactly the per-case fault injection, transient-retry
and backoff semantics of a local ``run_sweep`` (bit-identical results
are a consequence, not a goal to re-verify per worker).

Results travel back as full :func:`~repro.experiments.cache.
result_to_dict` records keyed by the fleet-wide content hash, so the
coordinator can merge them into its store and rebuild
:class:`~repro.experiments.usecase.UseCaseResult` objects losslessly.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.experiments.cache import (
    SweepDiskCache,
    result_to_dict,
    usecase_key,
)
from repro.experiments.report import failure_to_json
from repro.experiments.sweep import (
    DEFAULT_BACKOFF_BASE_S,
    DEFAULT_MAX_ATTEMPTS,
    _run_serial,
)
from repro.experiments.usecase import UseCase
from repro.obs.trace import active_tracer


def options_from_params(params: Dict[str, Any]):
    """The :class:`OptimizerOptions` a shard's params pin down."""
    from repro.core.optimizer import OptimizerOptions

    return OptimizerOptions(
        max_evaluations=params["budget"],
        with_persistence=params["baseline"] == "persistence",
        kernel=params.get("kernel"),
        refine=bool(params.get("refine", False)),
    )


def execute_shard(
    params: Dict[str, Any],
    cache_dir: Optional[str],
) -> Dict[str, Any]:
    """Run one shard's explicit case list; returns the shard document.

    The document carries, per case, the fleet content-hash ``key`` and
    the full serialized result — plus structured failure records for
    cases that failed permanently after the worker's own retry budget.
    The coordinator maps both back to grid indices; the worker never
    needs to know where in the grid its cases came from.
    """
    cases = [UseCase(*triple) for triple in params["cases"]]
    seed = params["seed"]
    options = options_from_params(params)
    disk = SweepDiskCache(cache_dir) if cache_dir else None
    keys = [usecase_key(usecase, seed, options) for usecase in cases]

    rows: List[Optional[Dict[str, Any]]] = [None] * len(cases)
    failures: List[Dict[str, Any]] = []
    counters = {"computed": 0, "disk_hits": 0, "retries": 0}

    # The ambient tracer is the pool-side one execute_job activated
    # when the dispatch carried a sampled traceparent; otherwise every
    # span call here is a no-op.
    span = active_tracer().start_span(
        "shard.execute", attributes={"cases": len(cases)}
    )

    pending: List[int] = []
    for idx, key in enumerate(keys):
        hit = disk.get(key) if disk is not None else None
        if hit is not None:
            rows[idx] = _case_row(key, hit, 0.0, 0, "disk")
            counters["disk_hits"] += 1
        else:
            pending.append(idx)

    class _RetryTally:
        # _run_serial only needs a ``retries`` attribute of its
        # metrics hook; a full SweepMetrics would drag in per-case
        # recording this document doesn't carry.  The property setter
        # observes the driver's ``metrics.retries += 1`` so transient
        # faults surface as span events without touching the driver.
        _retries = 0

        @property
        def retries(self):
            return self._retries

        @retries.setter
        def retries(self, value):
            if value > self._retries:
                span.add_event("retry", total=value)
            self._retries = value

    tally = _RetryTally()

    def deliver(idx, result, elapsed, pid):
        if disk is not None:
            disk.put(keys[idx], result)
        rows[idx] = _case_row(keys[idx], result, elapsed, pid, "computed")
        counters["computed"] += 1

    def fail(record):
        failures.append(failure_to_json(record))
        span.add_event(
            "case_failed",
            program=record.usecase.program,
            error=record.error_type,
        )

    with span:
        if pending:
            _run_serial(
                cases,
                pending,
                seed,
                options,
                deliver,
                fail,
                metrics=tally,
                max_attempts=DEFAULT_MAX_ATTEMPTS,
                backoff_base_s=DEFAULT_BACKOFF_BASE_S,
            )
        counters["retries"] = tally.retries
        span.set_attributes({
            "computed": counters["computed"],
            "disk_hits": counters["disk_hits"],
            "retries": counters["retries"],
        })
        if failures:
            span.set_status("error", f"{len(failures)} case(s) failed")

    return {
        "shard": {"cases": len(cases), **counters},
        "cases": [row for row in rows if row is not None],
        "failures": failures,
    }


def _case_row(
    key: str, result, elapsed: float, pid: int, source: str
) -> Dict[str, Any]:
    case = [
        result.usecase.program,
        result.usecase.config_id,
        result.usecase.tech,
    ]
    if result.usecase.l2 is not None:
        case.append(result.usecase.l2)
    return {
        "key": key,
        "case": case,
        "result": result_to_dict(result),
        "wall_s": elapsed,
        "pid": pid,
        "source": source,
    }


def register_with_coordinator(
    coordinator_url: str,
    worker_url: str,
    capacity: int = 1,
    max_retries: int = 10,
    sleep=time.sleep,
) -> Dict[str, Any]:
    """Self-register a worker node with a coordinator (blocking).

    Retries with the client's jittered backoff — a fleet booting
    together must not hammer a coordinator that is still binding its
    socket.  Returns the coordinator's worker record.
    """
    from repro.fabric.transport import split_base_url
    from repro.service.client import ServiceClient

    host, port = split_base_url(coordinator_url)
    client = ServiceClient(host, port, max_retries=max_retries, sleep=sleep)
    return client.register_worker(worker_url, capacity=capacity)
