"""One-shot asyncio HTTP client the coordinator drives workers with.

The blocking :class:`~repro.service.client.ServiceClient` would stall
the coordinator's event loop, and ``http.client`` cannot share a loop
at all — so dispatching shards needs a minimal async HTTP/1.1 client.
One request per connection (``Connection: close``), JSON in, JSON out,
mirroring exactly what the service's own :class:`_Response` emits.

Failures surface as :class:`WorkerUnreachable` — the caller (the
lease scheduler) treats an unreachable worker like an expired lease:
requeue the shard, mark the worker suspect.  No retries happen here;
retry policy lives in the scheduler where it can count against the
shard's attempt budget.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ServiceError

#: Response body ceiling — a sweep-result document for a large shard
#: is a few MiB; anything past this is a protocol violation.
MAX_BODY_BYTES = 64 * 1024 * 1024


class WorkerUnreachable(ServiceError):
    """A worker node could not be reached or answered garbage."""

    def __init__(self, url: str, detail: str):
        super().__init__(f"worker {url} unreachable: {detail}", status=503)
        self.url = url
        self.detail = detail


def split_base_url(base_url: str) -> Tuple[str, int]:
    """``http://host:port`` -> ``(host, port)``; validates the scheme."""
    parts = urlsplit(base_url)
    if parts.scheme != "http" or not parts.hostname:
        raise ServiceError(
            f"worker url must be http://host:port, got {base_url!r}",
            status=400,
        )
    return parts.hostname, parts.port or 80


async def http_json(
    base_url: str,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    timeout_s: float = 10.0,
    traceparent: Optional[str] = None,
) -> Tuple[int, Any]:
    """One JSON request against a node; returns ``(status, decoded)``.

    Network errors, timeouts and undecodable bodies all raise
    :class:`WorkerUnreachable`; HTTP error *statuses* do not — the
    scheduler distinguishes "node said no" (e.g. 429 backpressure)
    from "node is gone".  ``traceparent`` propagates a trace context to
    the node (the coordinator sets it on shard dispatch only).
    """
    host, port = split_base_url(base_url)
    payload = b""
    headers = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}:{port}",
        "Connection: close",
        "Accept: application/json",
    ]
    if traceparent:
        headers.append(f"traceparent: {traceparent}")
    if body is not None:
        payload = json.dumps(body).encode("utf-8")
        headers.append("Content-Type: application/json")
    headers.append(f"Content-Length: {len(payload)}")
    request = "\r\n".join(headers).encode("ascii") + b"\r\n\r\n" + payload

    writer = None
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout_s
        )
        writer.write(request)
        await asyncio.wait_for(writer.drain(), timeout=timeout_s)
        raw = await asyncio.wait_for(
            reader.read(MAX_BODY_BYTES), timeout=timeout_s
        )
    except asyncio.TimeoutError:
        raise WorkerUnreachable(base_url, f"timeout after {timeout_s:g}s")
    except OSError as exc:
        raise WorkerUnreachable(base_url, str(exc))
    finally:
        if writer is not None:
            try:
                writer.close()
            except Exception:
                pass
    return parse_response(base_url, raw)


def parse_response(base_url: str, raw: bytes) -> Tuple[int, Any]:
    """Split a full HTTP/1.1 response into ``(status, decoded body)``."""
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        raise WorkerUnreachable(base_url, "truncated response")
    try:
        status_line = head.split(b"\r\n", 1)[0].decode("ascii")
        status = int(status_line.split(" ", 2)[1])
    except (IndexError, ValueError, UnicodeDecodeError):
        raise WorkerUnreachable(base_url, "malformed status line")
    if not body.strip():
        return status, None
    try:
        return status, json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        # Text bodies (e.g. /metrics expositions) pass through raw.
        try:
            return status, body.decode("utf-8")
        except UnicodeDecodeError:
            raise WorkerUnreachable(base_url, "undecodable response body")
