"""Distributed sweep fabric: coordinator/worker sharding over HTTP.

The single-node sweep engine (:mod:`repro.experiments.sweep`) already
decomposes a grid into content-hashed, independently cacheable use
cases with structured failure records — exactly the unit a distributed
queue needs.  This package is that queue:

* :mod:`repro.fabric.shards` — grid partitioning into content-hash-
  keyed shards, plus the split operation work-stealing relies on;
* :mod:`repro.fabric.store` — the fleet-shared content-addressed
  result store (an in-memory overlay over
  :class:`~repro.experiments.cache.SweepDiskCache`'s machine-
  independent keys, so workers dedupe across the fleet);
* :mod:`repro.fabric.coordinator` — lease-based shard scheduling with
  work-stealing for stragglers, per-tenant deficit-round-robin
  fairness, and fleet-merged metrics;
* :mod:`repro.fabric.worker` — shard execution inside a worker node's
  pool (the ``shard`` job kind) and coordinator registration;
* :mod:`repro.fabric.stream` — SSE event + chunked transfer framing
  shared by the server's live result feed and the client's parser;
* :mod:`repro.fabric.transport` — the one-shot asyncio HTTP client the
  coordinator drives worker nodes with.

Topology: ``repro serve --coordinator`` owns the grid; each worker is a
plain ``repro serve`` node that either self-registers
(``--coordinator-url``) or is named up front (``--worker-url``).  The
coordinator dispatches shards over the existing job protocol, so a
worker needs no fabric-specific state at all — worker death is just a
lease that expired.
"""

from repro.fabric.coordinator import Coordinator, FabricSweep, WorkerNode
from repro.fabric.shards import Shard, partition, split
from repro.fabric.store import ResultStore

__all__ = [
    "Coordinator",
    "FabricSweep",
    "ResultStore",
    "Shard",
    "WorkerNode",
    "partition",
    "split",
]
