"""Grid partitioning into content-hash-keyed shards.

A shard is the fabric's distribution unit: an ordered slice of a
sweep's use-case indices, identified by a content hash over the
per-case cache keys it covers (so a shard id is machine-independent
and stable across coordinator restarts for the same grid + options).

Two operations matter:

* :func:`partition` — cut the pending indices of a fresh sweep into
  shards sized for the fleet (enough shards that every worker stays
  busy and the tail is short, but not so many that per-shard dispatch
  overhead dominates);
* :func:`split` — halve a shard for work-stealing: when a lease
  expires or a straggler is speculated against, re-dispatching two
  half shards lets two workers finish what one was slow to.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

#: Hard cap on the cases one shard may carry (mirrors the protocol's
#: ``MAX_SHARD_CASES`` so an auto-sized shard is always submittable).
MAX_SHARD_CASES = 256

#: How many shards per unit of fleet capacity :func:`partition` aims
#: for — >1 so the scheduler has slack for stealing and fairness.
SHARDS_PER_SLOT = 4


def shard_id(sweep_id: str, case_keys: Sequence[str],
             speculative: bool = False) -> str:
    """Content-hash id of a shard.

    Hashes the sweep id plus the covered per-case cache keys — two
    shards over the same cases of the same sweep share an id, and a
    speculative clone is distinguishable from its origin.
    """
    digest = hashlib.sha256()
    digest.update(sweep_id.encode("utf-8"))
    if speculative:
        digest.update(b"#steal")
    for key in case_keys:
        digest.update(b"\0")
        digest.update(key.encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass
class Shard:
    """One dispatchable slice of a sweep.

    Attributes:
        id: Content-hash id (:func:`shard_id`).
        sweep_id: Owning sweep.
        tenant: Tenant the owning sweep belongs to (fairness key).
        indices: Grid-order case indices this shard covers.
        keys: The per-case cache keys (parallel to ``indices``).
        attempts: Dispatch attempts so far (a requeue increments).
        speculative: Whether this is a work-stealing clone of a shard
            that is still leased elsewhere (its results merge
            idempotently; its failures are ignored).
    """

    id: str
    sweep_id: str
    tenant: str
    indices: Tuple[int, ...]
    keys: Tuple[str, ...]
    attempts: int = 0
    speculative: bool = field(default=False)

    @property
    def size(self) -> int:
        """Number of cases in the shard (the DRR cost unit)."""
        return len(self.indices)


def auto_shard_size(pending: int, fleet_capacity: int) -> int:
    """The shard size :func:`partition` uses when none is forced.

    Aims for :data:`SHARDS_PER_SLOT` shards per fleet slot so the
    scheduler can keep every worker busy and still has tail shards to
    steal; clamps to ``[1, MAX_SHARD_CASES]``.
    """
    slots = max(1, fleet_capacity)
    target = max(1, slots * SHARDS_PER_SLOT)
    size = max(1, -(-pending // target))  # ceil division
    return min(size, MAX_SHARD_CASES)


def partition(
    sweep_id: str,
    tenant: str,
    indices: Sequence[int],
    keys: Sequence[str],
    shard_size: int,
) -> List[Shard]:
    """Cut pending case indices into shards of ``shard_size``.

    ``keys`` is the full per-case key list of the sweep (indexed by
    case index), so callers pass pending indices without re-deriving
    the key subset themselves.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    shards: List[Shard] = []
    for start in range(0, len(indices), shard_size):
        chunk = tuple(indices[start:start + shard_size])
        chunk_keys = tuple(keys[i] for i in chunk)
        shards.append(Shard(
            id=shard_id(sweep_id, chunk_keys),
            sweep_id=sweep_id,
            tenant=tenant,
            indices=chunk,
            keys=chunk_keys,
        ))
    return shards


def split(shard: Shard) -> List[Shard]:
    """Halve a shard (work-stealing / requeue-after-expiry).

    Attempt counts carry over — splitting is not a fresh start, so a
    flapping worker cannot reset the retry budget by repeatedly
    splitting the same cases.  A single-case shard returns itself.
    """
    if shard.size <= 1:
        return [shard]
    mid = shard.size // 2
    halves = []
    for indices, keys in (
        (shard.indices[:mid], shard.keys[:mid]),
        (shard.indices[mid:], shard.keys[mid:]),
    ):
        halves.append(Shard(
            id=shard_id(shard.sweep_id, keys,
                        speculative=shard.speculative),
            sweep_id=shard.sweep_id,
            tenant=shard.tenant,
            indices=indices,
            keys=keys,
            attempts=shard.attempts,
            speculative=shard.speculative,
        ))
    return halves


def clone_for_steal(shard: Shard, remaining_indices: Sequence[int],
                    keys: Sequence[str]) -> Shard:
    """A speculative clone covering a leased shard's unfinished cases.

    The clone gets a distinct content id (salted) so leases and
    telemetry can tell origin from steal, and ``speculative=True`` so
    its failure never burns the origin's retry budget.
    """
    chunk = tuple(remaining_indices)
    chunk_keys = tuple(keys[i] for i in chunk)
    return Shard(
        id=shard_id(shard.sweep_id, chunk_keys, speculative=True),
        sweep_id=shard.sweep_id,
        tenant=shard.tenant,
        indices=chunk,
        keys=chunk_keys,
        attempts=shard.attempts,
        speculative=True,
    )


def shard_to_json(shard: Shard) -> dict:
    """A shard as plain data (job payloads, records, tests)."""
    return {
        "id": shard.id,
        "sweep_id": shard.sweep_id,
        "tenant": shard.tenant,
        "indices": list(shard.indices),
        "cases": len(shard.indices),
        "attempts": shard.attempts,
        "speculative": shard.speculative,
    }
