"""Lease-based shard scheduling with work-stealing and tenant fairness.

The coordinator owns a sweep's grid; workers own nothing.  Every shard
round-trip is guarded by a *lease* — a coordinator-side deadline on the
dispatch → result cycle — so a worker that dies, hangs or partitions
away is indistinguishable from (and handled exactly like) an expired
lease: the shard's unfinished cases are split and requeued, up to a
retry budget, after which they become the same transient
:class:`~repro.experiments.sweep.FailureRecord` a dead pool worker
produces in a local sweep.

Three scheduling layers stack on the single tick loop:

* **deficit round-robin across tenants** — each tenant has its own
  shard queue and a deficit counter topped up by a fixed quantum per
  scheduling visit; a tenant spends deficit to dispatch shards (cost =
  case count), so many small sweeps and one huge sweep interleave
  fairly instead of FIFO-starving each other;
* **leases** — dispatch creates an asyncio task that drives the worker
  over the HTTP job protocol (submit, poll, fetch); the tick loop
  expires overdue leases, cancels the task (best-effort DELETE on the
  worker) and requeues;
* **work-stealing** — when the queues are dry, idle capacity exists
  and a lease has been running past ``steal_after_s``, the unfinished
  cases of the straggling shard are cloned as a *speculative* shard
  and dispatched elsewhere (MapReduce backup-task style).  Results are
  content-addressed and deterministic, so whichever copy finishes
  second deduplicates in the :class:`~repro.fabric.store.ResultStore`.

Every merged case is emitted to the sweep's event feed the moment its
shard lands; the HTTP layer streams that feed as SSE.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from collections import deque

from repro.errors import QueueFullError, ServiceError
from repro.experiments.cache import result_from_dict, usecase_key
from repro.experiments.report import (
    failure_to_json,
    sweep_case_to_json,
    sweep_to_json,
)
from repro.experiments.sweep import FailureRecord
from repro.experiments.usecase import UseCase, UseCaseResult
from repro.fabric.shards import (
    Shard,
    auto_shard_size,
    clone_for_steal,
    partition,
    split,
)
from repro.fabric.store import ResultStore
from repro.fabric.transport import WorkerUnreachable, http_json
from repro.obs.log import get_logger
from repro.obs.trace import NOOP_SPAN, Tracer, format_traceparent

_log = get_logger("repro.fabric.coordinator")

#: Dispatch attempts per shard before its cases fail permanently —
#: mirrors the sweep layer's per-case transient budget.
SHARD_MAX_ATTEMPTS = 3

#: DRR quantum in cases: deficit added per tenant per scheduling visit.
DRR_QUANTUM = 4

#: Scheduler tick (lease expiry / dispatch / steal cadence).
TICK_S = 0.05

_SWEEP_RUNNING = "running"
_SWEEP_DONE = "done"


@dataclass
class WorkerNode:
    """One registered worker and its live dispatch accounting.

    Attributes:
        url: Base URL of the worker's job API.
        capacity: Shards the coordinator keeps in flight on it at once.
        healthy: Cleared when the node stops answering; an unhealthy
            node gets no dispatches until it re-registers.
        inflight: Shard ids currently leased to this node.
    """

    url: str
    capacity: int = 1
    healthy: bool = True
    inflight: Set[str] = field(default_factory=set)
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    last_error: Optional[str] = None

    @property
    def free_slots(self) -> int:
        if not self.healthy:
            return 0
        return max(0, self.capacity - len(self.inflight))

    def to_json(self) -> Dict[str, Any]:
        return {
            "url": self.url,
            "capacity": self.capacity,
            "healthy": self.healthy,
            "inflight": len(self.inflight),
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failed": self.failed,
            "last_error": self.last_error,
        }


@dataclass
class _Lease:
    """One shard round-trip in flight on one worker."""

    shard: Shard
    worker: WorkerNode
    started_at: float  # monotonic
    deadline: float  # monotonic
    task: "asyncio.Task"
    job_id: Optional[str] = None
    stolen: bool = False  # a speculative clone was already launched
    span: Any = NOOP_SPAN  # the fabric.dispatch span of this round-trip


class FabricSweep:
    """One distributed sweep: grid, merge state, and the event feed."""

    def __init__(
        self,
        sweep_id: str,
        tenant: str,
        params: Dict[str, Any],
        cases: List[UseCase],
        keys: List[str],
    ):
        self.id = sweep_id
        self.tenant = tenant
        self.params = params
        self.cases = cases
        self.keys = keys
        self.key_to_index = {key: idx for idx, key in enumerate(keys)}
        self.case_to_index = {
            (c.program, c.config_id, c.tech, c.l2): idx
            for idx, c in enumerate(cases)
        }
        n = len(cases)
        self.results: List[Optional[UseCaseResult]] = [None] * n
        self.settled: List[bool] = [False] * n
        self.failures: List[FailureRecord] = []
        self.remaining = n
        self.state = _SWEEP_RUNNING
        self.created_at = time.time()
        self.finished_at: Optional[float] = None
        self.shards_total = 0
        self.shards_completed = 0
        self.shards_requeued = 0
        self.steals = 0
        self.duplicates = 0
        #: Replay buffer + live fan-out: a subscriber attaching late
        #: first replays ``events``, then drains its queue — no merged
        #: case is ever missed or double-delivered.
        self.events: List[Tuple[str, Dict[str, Any]]] = []
        self.subscribers: List["asyncio.Queue"] = []
        self.done_event = asyncio.Event()
        #: The fabric.sweep span — open from submit to :meth:`_finish`;
        #: dispatch spans parent on it so one trace covers the sweep.
        self.span = NOOP_SPAN

    # ------------------------------------------------------------------
    # event feed
    # ------------------------------------------------------------------
    def emit(self, event: str, data: Dict[str, Any]) -> None:
        self.events.append((event, data))
        for queue in list(self.subscribers):
            queue.put_nowait((event, data))

    def subscribe(self) -> Tuple[List[Tuple[str, Dict[str, Any]]],
                                 "asyncio.Queue"]:
        """Replay snapshot + live queue, atomically consistent."""
        queue: "asyncio.Queue" = asyncio.Queue()
        snapshot = list(self.events)
        self.subscribers.append(queue)
        return snapshot, queue

    def unsubscribe(self, queue: "asyncio.Queue") -> None:
        try:
            self.subscribers.remove(queue)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # merge state
    # ------------------------------------------------------------------
    def settle_result(self, index: int, result: UseCaseResult,
                      worker: str) -> bool:
        if self.settled[index]:
            self.duplicates += 1
            return False
        self.settled[index] = True
        self.results[index] = result
        self.remaining -= 1
        row = sweep_case_to_json(result)
        row["index"] = index
        row["key"] = self.keys[index]
        row["worker"] = worker
        self.emit("case", row)
        return True

    def settle_failure(self, record: FailureRecord) -> bool:
        if self.settled[record.index]:
            return False
        self.settled[record.index] = True
        self.remaining -= 1
        self.failures.append(record)
        row = failure_to_json(record)
        row["index"] = record.index
        self.emit("failure", row)
        return True

    def unsettled_of(self, shard: Shard) -> List[int]:
        return [idx for idx in shard.indices if not self.settled[idx]]

    @property
    def done(self) -> bool:
        return self.remaining == 0

    def result_document(self) -> Dict[str, Any]:
        """The final merged document — same shape as ``repro sweep
        --json`` (``cases``/``summary``/``failures``), plus a
        ``fabric`` section with the distribution story."""
        ordered = [r for r in self.results if r is not None]
        failures = sorted(self.failures, key=lambda r: r.index)
        data = sweep_to_json(ordered, failures=failures)
        data["fabric"] = {
            "sweep_id": self.id,
            "tenant": self.tenant,
            "shards": self.shards_total,
            "shards_completed": self.shards_completed,
            "shards_requeued": self.shards_requeued,
            "steals": self.steals,
            "duplicates": self.duplicates,
        }
        return data

    def to_json(self) -> Dict[str, Any]:
        """The sweep record (``GET /v1/fabric/sweeps/<id>``)."""
        total = len(self.cases)
        return {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "params": dict(self.params),
            "cases": total,
            "completed": total - self.remaining - len(self.failures),
            "failed": len(self.failures),
            "remaining": self.remaining,
            "shards": self.shards_total,
            "shards_completed": self.shards_completed,
            "steals": self.steals,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
        }


class Coordinator:
    """Shard scheduler over a fleet of worker nodes.

    Args:
        store: The fleet-shared result store (a bare in-memory one is
            built when omitted).
        telemetry: Optional :class:`ServiceTelemetry` carrying the
            ``fabric_*`` vocabulary.
        lease_timeout_s: Deadline on one shard round-trip; an overdue
            lease is cancelled and its cases requeued (split).
        steal_after_s: Age past which a still-running lease becomes a
            steal candidate once the queues are dry.
        shard_size: Forced cases-per-shard; ``None`` sizes shards to
            the fleet (:func:`~repro.fabric.shards.auto_shard_size`).
        max_queued_shards: Backpressure bound across all tenants.
        rpc_timeout_s: Per-HTTP-call timeout against workers.
        poll_interval_s: Worker job-status poll cadence.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        telemetry=None,
        lease_timeout_s: float = 120.0,
        steal_after_s: float = 5.0,
        shard_size: Optional[int] = None,
        max_queued_shards: int = 1024,
        rpc_timeout_s: float = 10.0,
        poll_interval_s: float = 0.1,
        shard_max_attempts: int = SHARD_MAX_ATTEMPTS,
        drr_quantum: int = DRR_QUANTUM,
        tracer: Optional[Tracer] = None,
    ):
        self.store = store if store is not None else ResultStore()
        self.telemetry = telemetry
        self.tracer = (
            tracer if tracer is not None else Tracer(service="coordinator")
        )
        self.lease_timeout_s = lease_timeout_s
        self.steal_after_s = steal_after_s
        self.shard_size = shard_size
        self.max_queued_shards = max_queued_shards
        self.rpc_timeout_s = rpc_timeout_s
        self.poll_interval_s = poll_interval_s
        self.shard_max_attempts = max(1, shard_max_attempts)
        self.drr_quantum = max(1, drr_quantum)

        self.workers: Dict[str, WorkerNode] = {}
        self.sweeps: Dict[str, FabricSweep] = {}
        self._queues: Dict[str, Deque[Shard]] = {}
        self._deficit: Dict[str, float] = {}
        self._ring: List[str] = []  # tenant visit order (DRR)
        self._ring_idx = 0
        self._leases: Dict[str, _Lease] = {}
        self._queued = 0
        self._tick_task: Optional["asyncio.Task"] = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._tick_task is None:
            self._tick_task = asyncio.get_running_loop().create_task(
                self._tick_loop(), name="repro-fabric-tick"
            )

    async def close(self) -> None:
        self._closed = True
        tasks = [lease.task for lease in self._leases.values()]
        if self._tick_task is not None:
            tasks.append(self._tick_task)
            self._tick_task = None
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._leases.clear()

    # ------------------------------------------------------------------
    # fleet membership
    # ------------------------------------------------------------------
    def register_worker(self, url: str, capacity: int = 1) -> WorkerNode:
        """Add (or refresh) a worker node; idempotent on the URL.

        Re-registration marks a previously unreachable node healthy
        again — a restarted worker announces itself and immediately
        rejoins the dispatch rotation.
        """
        url = url.rstrip("/")
        node = self.workers.get(url)
        if node is None:
            node = WorkerNode(url=url, capacity=max(1, capacity))
            self.workers[url] = node
        else:
            node.capacity = max(1, capacity)
            node.healthy = True
            node.last_error = None
        if self.telemetry is not None:
            self.telemetry.fabric_workers.set(
                sum(1 for w in self.workers.values() if w.healthy)
            )
        return node

    def fleet_capacity(self) -> int:
        return sum(w.capacity for w in self.workers.values() if w.healthy)

    # ------------------------------------------------------------------
    # sweep submission
    # ------------------------------------------------------------------
    def submit_sweep(self, tenant: str,
                     params: Dict[str, Any]) -> FabricSweep:
        """Accept one sweep: pre-resolve from the store, shard, queue.

        ``params`` is the canonical sweep-parameter dict (programs /
        configs / techs / baseline / budget / seed / kernel) the
        protocol layer validated.  Raises :class:`QueueFullError` when
        the shard backlog is at capacity.
        """
        if not self.workers:
            raise ServiceError(
                "no workers registered with this coordinator", status=503
            )
        cases = [
            UseCase(p, k, t, l2)
            for p in params["programs"]
            for k in params["configs"]
            for t in params["techs"]
            # Innermost, like SweepSpec.usecases(): the merged document
            # keeps the exact case order of a local `repro sweep`.
            for l2 in (params.get("l2") or (None,))
        ]
        from repro.fabric.worker import options_from_params

        options = options_from_params(params)
        keys = [
            usecase_key(usecase, params["seed"], options)
            for usecase in cases
        ]
        sweep = FabricSweep(
            sweep_id=uuid.uuid4().hex[:12],
            tenant=tenant,
            params=params,
            cases=cases,
            keys=keys,
        )
        # Parented on the ambient request span (when the submit was
        # traced); held open until _finish so dispatch/steal/requeue
        # decisions land under one sweep span.
        sweep.span = self.tracer.start_span("fabric.sweep", attributes={
            "sweep_id": sweep.id,
            "tenant": tenant,
            "cases": len(cases),
        })

        # Pre-resolve: anything the fleet (or an earlier sweep) already
        # computed settles immediately and appears in the replay buffer.
        pending: List[int] = []
        for idx, key in enumerate(keys):
            hit = self.store.get(key)
            if hit is not None:
                sweep.settle_result(idx, hit, worker="store")
            else:
                pending.append(idx)
        if len(pending) < len(cases):
            sweep.span.add_event(
                "store_hits", resolved=len(cases) - len(pending)
            )

        if pending:
            size = (
                self.shard_size
                if self.shard_size is not None
                else auto_shard_size(len(pending), self.fleet_capacity())
            )
            shards = partition(sweep.id, tenant, pending, keys, size)
            if self._queued + len(shards) > self.max_queued_shards:
                sweep.span.set_status("error", "fabric backlog full")
                sweep.span.end()
                raise QueueFullError(
                    f"fabric backlog is full ({self._queued} shards "
                    f"queued, cap {self.max_queued_shards})",
                    status=429,
                    retry_after=5,
                )
            sweep.shards_total = len(shards)
            self.sweeps[sweep.id] = sweep
            for shard in shards:
                self._enqueue(shard)
        else:
            self.sweeps[sweep.id] = sweep

        if self.telemetry is not None:
            self.telemetry.fabric_sweeps.inc()
        _log.info(
            "sweep accepted", sweep_id=sweep.id, tenant=tenant,
            cases=len(cases), shards=sweep.shards_total,
            store_hits=len(cases) - len(pending),
        )
        sweep.emit("progress", self._progress_of(sweep))
        if sweep.done:
            self._finish(sweep)
        return sweep

    def get_sweep(self, sweep_id: str) -> Optional[FabricSweep]:
        return self.sweeps.get(sweep_id)

    # ------------------------------------------------------------------
    # tenant queues + DRR
    # ------------------------------------------------------------------
    def _enqueue(self, shard: Shard, front: bool = False) -> None:
        queue = self._queues.get(shard.tenant)
        if queue is None:
            queue = deque()
            self._queues[shard.tenant] = queue
            self._deficit.setdefault(shard.tenant, 0.0)
            self._ring.append(shard.tenant)
        if front:
            queue.appendleft(shard)
        else:
            queue.append(shard)
        self._queued += 1
        if self.telemetry is not None:
            self.telemetry.fabric_queue_depth.set(self._queued)

    def _next_shard(self) -> Optional[Shard]:
        """Deficit-round-robin pick across tenant queues.

        Each visit tops the tenant's deficit up by the quantum; a
        shard dispatches when the deficit covers its case count.  An
        emptied tenant queue forfeits its remaining deficit (classic
        DRR — credit must not accumulate while idle).
        """
        active = [t for t in self._ring if self._queues.get(t)]
        if not active:
            return None
        # Bounded: each full pass adds quantum to some tenant whose
        # head shard costs at most MAX_SHARD_CASES, so a pick happens
        # within ceil(max_size / quantum) passes.
        max_passes = 2 + max(
            self._queues[t][0].size for t in active
        ) // self.drr_quantum
        for _ in range(max_passes * len(active)):
            self._ring_idx %= len(self._ring)
            tenant = self._ring[self._ring_idx]
            queue = self._queues.get(tenant)
            if not queue:
                self._deficit[tenant] = 0.0
                self._ring_idx += 1
                continue
            self._deficit[tenant] += self.drr_quantum
            if queue[0].size <= self._deficit[tenant]:
                shard = queue.popleft()
                self._deficit[tenant] -= shard.size
                if not queue:
                    self._deficit[tenant] = 0.0
                self._queued -= 1
                if self.telemetry is not None:
                    self.telemetry.fabric_queue_depth.set(self._queued)
                return shard
            self._ring_idx += 1
        return None  # pragma: no cover - bound is generous

    # ------------------------------------------------------------------
    # the tick loop: expiry, dispatch, steal
    # ------------------------------------------------------------------
    async def _tick_loop(self) -> None:
        while not self._closed:
            try:
                self._expire_leases()
                self._dispatch()
                self._maybe_steal()
            except Exception:  # defensive: the scheduler must not die
                pass
            await asyncio.sleep(TICK_S)

    def _pick_worker(self) -> Optional[WorkerNode]:
        best = None
        for node in self.workers.values():
            if node.free_slots <= 0:
                continue
            if best is None or node.free_slots > best.free_slots:
                best = node
        return best

    def _pick_unhealthy_worker(self) -> Optional[WorkerNode]:
        """Last resort when the whole fleet is marked down.

        Queued shards must keep burning their retry budget against
        *some* node — otherwise a fleet-wide outage parks the sweep
        forever instead of failing its cases after
        ``shard_max_attempts``.  A node that answers flips back to
        healthy on the spot.
        """
        for node in self.workers.values():
            if node.capacity - len(node.inflight) > 0:
                return node
        return None

    def _dispatch(self) -> None:
        while True:
            worker = self._pick_worker() or self._pick_unhealthy_worker()
            if worker is None:
                return
            shard = self._next_shard()
            if shard is None:
                return
            self._lease(shard, worker)

    def _lease(self, shard: Shard, worker: WorkerNode) -> None:
        shard.attempts += 1
        now = time.monotonic()
        sweep = self.sweeps.get(shard.sweep_id)
        span = self.tracer.start_span(
            "fabric.dispatch",
            parent=sweep.span.context if sweep is not None else None,
            attributes={
                "shard": shard.id,
                "worker": worker.url,
                "attempt": shard.attempts,
                "cases": shard.size,
                "speculative": shard.speculative,
            },
        )
        task = asyncio.get_running_loop().create_task(
            self._run_on_worker(shard, worker, span),
            name=f"repro-fabric-shard-{shard.id}",
        )
        self._leases[shard.id] = _Lease(
            shard=shard,
            worker=worker,
            started_at=now,
            deadline=now + self.lease_timeout_s,
            task=task,
            span=span,
        )
        worker.inflight.add(shard.id)
        worker.dispatched += 1
        if self.telemetry is not None:
            self.telemetry.fabric_shards_dispatched.inc()
        _log.debug(
            "shard dispatched", shard=shard.id, worker=worker.url,
            attempt=shard.attempts, cases=shard.size,
            speculative=shard.speculative,
        )

    def _expire_leases(self) -> None:
        now = time.monotonic()
        for lease in [
            l for l in self._leases.values() if l.deadline <= now
        ]:
            self._release(lease)
            lease.task.cancel()
            lease.span.add_event("lease_expired", worker=lease.worker.url)
            lease.span.set_status(
                "error", f"lease expired after {self.lease_timeout_s:g}s"
            )
            lease.span.end()
            if lease.job_id is not None:
                # Best-effort cancel on the worker; its fate no longer
                # matters — a late result deduplicates in the store.
                asyncio.get_running_loop().create_task(
                    self._cancel_remote(lease.worker, lease.job_id)
                )
            if self.telemetry is not None:
                self.telemetry.fabric_lease_expiries.inc()
            _log.warning(
                "lease expired", shard=lease.shard.id,
                worker=lease.worker.url,
                timeout_s=self.lease_timeout_s,
            )
            self._requeue(
                lease.shard,
                f"lease expired after {self.lease_timeout_s:g}s "
                f"on {lease.worker.url}",
            )

    async def _cancel_remote(self, worker: WorkerNode, job_id: str) -> None:
        try:
            await http_json(
                worker.url, "DELETE", f"/v1/jobs/{job_id}",
                timeout_s=self.rpc_timeout_s,
            )
        except WorkerUnreachable:
            pass

    def _maybe_steal(self) -> None:
        """Clone stragglers' unfinished cases onto idle capacity."""
        if self._queued or not self._leases:
            return
        if self._pick_worker() is None:
            return
        now = time.monotonic()
        for lease in list(self._leases.values()):
            if lease.stolen or lease.shard.speculative:
                continue
            if now - lease.started_at < self.steal_after_s:
                continue
            sweep = self.sweeps.get(lease.shard.sweep_id)
            if sweep is None or sweep.done:
                continue
            remaining = sweep.unsettled_of(lease.shard)
            if not remaining:
                continue
            lease.stolen = True
            clone = clone_for_steal(lease.shard, remaining, sweep.keys)
            sweep.steals += 1
            sweep.span.add_event(
                "steal", shard=lease.shard.id,
                straggler=lease.worker.url, cases=len(remaining),
            )
            if self.telemetry is not None:
                self.telemetry.fabric_steals.inc()
            _log.info(
                "shard stolen", shard=lease.shard.id,
                straggler=lease.worker.url, cases=len(remaining),
            )
            self._enqueue(clone, front=True)
            worker = self._pick_worker()
            if worker is None:
                return

    # ------------------------------------------------------------------
    # one shard round-trip
    # ------------------------------------------------------------------
    def _shard_params(self, shard: Shard) -> Dict[str, Any]:
        sweep = self.sweeps[shard.sweep_id]
        return {
            "cases": [
                [c.program, c.config_id, c.tech] if c.l2 is None
                else [c.program, c.config_id, c.tech, c.l2]
                for c in (sweep.cases[i] for i in shard.indices)
            ],
            "seed": sweep.params["seed"],
            "budget": sweep.params["budget"],
            "baseline": sweep.params["baseline"],
            "kernel": sweep.params.get("kernel"),
            # Omitted (not false) when off, so shard fingerprints of
            # pre-refinement sweeps are unchanged.
            **({"refine": True} if sweep.params.get("refine") else {}),
        }

    async def _run_on_worker(self, shard: Shard, worker: WorkerNode,
                             span: Any = NOOP_SPAN) -> None:
        lease = None
        try:
            status, body = await http_json(
                worker.url, "POST", "/v1/jobs",
                {"kind": "shard", "params": self._shard_params(shard)},
                timeout_s=self.rpc_timeout_s,
                traceparent=(
                    format_traceparent(span.context)
                    if span.recording else None
                ),
            )
            if status == 429:
                # The worker's own queue is full — not a death; back
                # off by requeueing without burning the retry budget.
                span.add_event("backpressure", worker=worker.url)
                span.end()
                shard.attempts -= 1
                self._release(self._leases.get(shard.id))
                self._enqueue(shard)
                return
            if status != 202:
                raise WorkerUnreachable(
                    worker.url, f"job submit returned {status}: {body!r}"
                )
            job_id = body["job"]["id"]
            lease = self._leases.get(shard.id)
            if lease is not None:
                lease.job_id = job_id

            while True:
                await asyncio.sleep(self.poll_interval_s)
                status, body = await http_json(
                    worker.url, "GET", f"/v1/jobs/{job_id}",
                    timeout_s=self.rpc_timeout_s,
                )
                if status != 200:
                    raise WorkerUnreachable(
                        worker.url,
                        f"job poll returned {status}: {body!r}",
                    )
                state = body["job"]["state"]
                if state in ("done", "failed", "cancelled"):
                    break

            if state != "done":
                failure = body["job"].get("failure") or {}
                raise WorkerUnreachable(
                    worker.url,
                    f"shard job {state}: "
                    f"{failure.get('message', 'no detail')}",
                )
            status, body = await http_json(
                worker.url, "GET", f"/v1/results/{job_id}",
                timeout_s=self.rpc_timeout_s,
            )
            if status != 200:
                raise WorkerUnreachable(
                    worker.url, f"result fetch returned {status}"
                )
            self._release(self._leases.get(shard.id))
            span.end()
            worker.completed += 1
            if not worker.healthy:
                # The node answered a full round-trip: it is back.
                worker.healthy = True
                worker.last_error = None
                if self.telemetry is not None:
                    self.telemetry.fabric_workers.set(sum(
                        1 for w in self.workers.values() if w.healthy
                    ))
            self._ingest(shard, worker, body["result"])
        except asyncio.CancelledError:
            # Lease expiry or shutdown; the expirer already released us.
            raise
        except (WorkerUnreachable, KeyError, TypeError) as exc:
            # KeyError/TypeError: the node answered something that is
            # not the job protocol — treat like a dead node.
            self._release(self._leases.get(shard.id))
            span.set_status("error", str(exc))
            span.end()
            worker.failed += 1
            worker.healthy = False
            worker.last_error = str(exc)
            if self.telemetry is not None:
                self.telemetry.fabric_workers.set(
                    sum(1 for w in self.workers.values() if w.healthy)
                )
            self._requeue(shard, str(exc))

    def _release(self, lease: Optional[_Lease]) -> None:
        if lease is None:
            return
        self._leases.pop(lease.shard.id, None)
        lease.worker.inflight.discard(lease.shard.id)

    def _requeue(self, shard: Shard, reason: str) -> None:
        """Requeue an unfinished shard, split; or fail it permanently."""
        sweep = self.sweeps.get(shard.sweep_id)
        if sweep is None or sweep.done:
            return
        remaining = sweep.unsettled_of(shard)
        if not remaining:
            self._check_done(sweep)
            return
        if shard.speculative:
            # The origin lease still covers these cases; losing the
            # speculative copy costs nothing.
            return
        if shard.attempts >= self.shard_max_attempts:
            sweep.span.add_event(
                "shard_failed", shard=shard.id,
                attempts=shard.attempts, reason=reason,
            )
            _log.warning(
                "shard failed permanently", shard=shard.id,
                attempts=shard.attempts, reason=reason,
            )
            for idx in remaining:
                sweep.settle_failure(FailureRecord(
                    usecase=sweep.cases[idx],
                    index=idx,
                    error_type="ShardDispatchError",
                    message=reason,
                    attempts=shard.attempts,
                    worker_pid=0,
                    transient=True,
                ))
            sweep.emit("progress", self._progress_of(sweep))
            self._check_done(sweep)
            return
        sweep.shards_requeued += 1
        sweep.span.add_event(
            "shard_requeued", shard=shard.id,
            attempt=shard.attempts, reason=reason,
        )
        if self.telemetry is not None:
            self.telemetry.fabric_shards_requeued.inc()
        _log.warning(
            "shard requeued", shard=shard.id,
            attempt=shard.attempts, reason=reason,
        )
        rebuilt = Shard(
            id=shard.id,
            sweep_id=shard.sweep_id,
            tenant=shard.tenant,
            indices=tuple(remaining),
            keys=tuple(sweep.keys[i] for i in remaining),
            attempts=shard.attempts,
        )
        for half in split(rebuilt):
            self._enqueue(half, front=True)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def _ingest(self, shard: Shard, worker: WorkerNode,
                doc: Dict[str, Any]) -> None:
        sweep = self.sweeps.get(shard.sweep_id)
        if sweep is None:
            return
        merged = 0
        for row in doc.get("cases", ()):
            key = row.get("key")
            idx = sweep.key_to_index.get(key)
            if idx is None:
                continue
            result = result_from_dict(row["result"])
            self.store.put(key, result)
            if sweep.settle_result(idx, result, worker=worker.url):
                merged += 1
        for failure in doc.get("failures", ()):
            if shard.speculative:
                # A steal's failure never outranks the origin lease.
                continue
            triple = (
                failure.get("program"),
                failure.get("config"),
                failure.get("tech"),
                failure.get("l2"),
            )
            idx = sweep.case_to_index.get(triple)
            if idx is None:
                continue
            sweep.settle_failure(FailureRecord(
                usecase=sweep.cases[idx],
                index=idx,
                error_type=failure.get("error_type", "UnknownError"),
                message=failure.get("message", ""),
                attempts=failure.get("attempts", 1),
                worker_pid=failure.get("worker_pid", 0),
                transient=bool(failure.get("transient", False)),
            ))
        sweep.shards_completed += 1
        if self.telemetry is not None:
            self.telemetry.fabric_shards_completed.inc()
            if merged:
                self.telemetry.fabric_results_merged.inc(merged)
        sweep.emit("progress", self._progress_of(sweep))
        self._check_done(sweep)

    def _progress_of(self, sweep: FabricSweep) -> Dict[str, Any]:
        total = len(sweep.cases)
        return {
            "sweep_id": sweep.id,
            "total": total,
            "completed": total - sweep.remaining - len(sweep.failures),
            "failed": len(sweep.failures),
            "inflight_shards": sum(
                1 for l in self._leases.values()
                if l.shard.sweep_id == sweep.id
            ),
            "queued_shards": self._queued,
        }

    def _check_done(self, sweep: FabricSweep) -> None:
        if sweep.done and sweep.state == _SWEEP_RUNNING:
            self._finish(sweep)

    def _finish(self, sweep: FabricSweep) -> None:
        sweep.state = _SWEEP_DONE
        sweep.finished_at = time.time()
        sweep.span.set_attributes({
            "shards": sweep.shards_total,
            "shards_requeued": sweep.shards_requeued,
            "steals": sweep.steals,
            "duplicates": sweep.duplicates,
            "failed": len(sweep.failures),
        })
        if sweep.failures:
            sweep.span.set_status(
                "error", f"{len(sweep.failures)} case(s) failed"
            )
        sweep.span.end()
        _log.info(
            "sweep done", sweep_id=sweep.id,
            shards=sweep.shards_total, steals=sweep.steals,
            requeued=sweep.shards_requeued, failed=len(sweep.failures),
        )
        summary = sweep.result_document()["summary"]
        sweep.emit("done", {
            "sweep_id": sweep.id,
            "summary": summary,
            "fabric": {
                "shards": sweep.shards_total,
                "shards_completed": sweep.shards_completed,
                "shards_requeued": sweep.shards_requeued,
                "steals": sweep.steals,
            },
        })
        sweep.done_event.set()

    # ------------------------------------------------------------------
    # fleet metrics + introspection
    # ------------------------------------------------------------------
    async def fleet_expositions(self) -> List[Tuple[str, str]]:
        """``(worker_url, raw /metrics text)`` per reachable worker.

        The URL lets the merge layer label each worker's series, so a
        straggling node is identifiable from the fleet ``/metrics``.
        """
        async def fetch(node: WorkerNode) -> Optional[Tuple[str, str]]:
            try:
                status, body = await http_json(
                    node.url, "GET", "/metrics",
                    timeout_s=self.rpc_timeout_s,
                )
            except WorkerUnreachable:
                return None
            if status == 200 and isinstance(body, str):
                return node.url, body
            return None

        pairs = await asyncio.gather(
            *(fetch(node) for node in self.workers.values())
        )
        return [pair for pair in pairs if pair]

    async def fleet_traces(self, trace_id: str) -> List[List[Dict[str, Any]]]:
        """Every worker's span documents for one trace id.

        Unreachable nodes and nodes that never saw the trace (404)
        contribute nothing — trace retrieval is best-effort and must
        not fail because one worker is down.
        """
        async def fetch(node: WorkerNode) -> List[Dict[str, Any]]:
            try:
                status, body = await http_json(
                    node.url, "GET", f"/v1/traces/{trace_id}",
                    timeout_s=self.rpc_timeout_s,
                )
            except WorkerUnreachable:
                return []
            if status == 200 and isinstance(body, dict):
                spans = body.get("spans")
                if isinstance(spans, list):
                    return spans
            return []

        lists = await asyncio.gather(
            *(fetch(node) for node in self.workers.values())
        )
        return [spans for spans in lists if spans]

    def stats(self) -> Dict[str, Any]:
        """Coordinator facts for ``/healthz``."""
        return {
            "workers": [w.to_json() for w in self.workers.values()],
            "sweeps": len(self.sweeps),
            "queued_shards": self._queued,
            "leases": len(self._leases),
            "lease_timeout_s": self.lease_timeout_s,
            "steal_after_s": self.steal_after_s,
            "store": self.store.stats(),
        }
