"""SSE event + chunked transfer framing for the live result feed.

The coordinator turns a sweep from a batch job into a stream: every
merged case becomes a Server-Sent Event the moment its shard lands,
carried over HTTP/1.1 chunked transfer encoding (the response has no
known length while the sweep runs).  This module owns both framings —
the server side (:func:`sse_event`, :func:`chunk`) and the client side
(:func:`iter_chunks`, :func:`iter_sse`) — so the encoder and parser
can never drift apart.

Event vocabulary (``event:`` field):

``case``
    One merged use-case result (``sweep_case_to_json`` payload plus
    grid ``index`` / cache ``key`` / originating ``worker``).
``failure``
    One permanently failed case (``failure_to_json`` payload) — a
    worker dying mid-sweep surfaces here as structured data, never as
    a truncated read.
``progress``
    Periodic counters (completed / failed / total / inflight shards).
``done``
    Terminal summary; the stream closes after it.

A stream that ends without a ``done`` event means the *coordinator*
died; :meth:`ServiceClient.stream_sweep` raises in that case rather
than silently yielding a partial grid.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

#: Terminal chunk of a chunked transfer body.
CHUNK_END = b"0\r\n\r\n"

#: Headers of the SSE response (sent before the first chunk).
SSE_HEADERS = (
    ("Content-Type", "text/event-stream; charset=utf-8"),
    ("Cache-Control", "no-store"),
    ("Transfer-Encoding", "chunked"),
)


def sse_event(event: str, data: Dict[str, Any]) -> bytes:
    """One Server-Sent Event: ``event:`` + single-line ``data:`` JSON."""
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {blob}\n\n".encode("utf-8")


def chunk(payload: bytes) -> bytes:
    """Wrap a payload as one HTTP/1.1 chunk (hex length framing)."""
    return f"{len(payload):x}\r\n".encode("ascii") + payload + b"\r\n"


# ----------------------------------------------------------------------
# client-side parsing
# ----------------------------------------------------------------------
def iter_chunks(recv: Iterable[bytes]) -> Iterator[bytes]:
    """De-chunk a transfer-encoded body from an iterable of raw reads.

    ``recv`` yields whatever the socket produced — chunk boundaries do
    not align with read boundaries, so this buffers across reads.
    Stops cleanly at the terminal ``0``-length chunk; a source that
    ends before it raises ``ConnectionError`` (truncated stream) so a
    dead server is never mistaken for a complete one.
    """
    buffer = b""
    source = iter(recv)

    def fill() -> bool:
        nonlocal buffer
        try:
            data = next(source)
        except StopIteration:
            return False
        if not data:
            return False
        buffer += data
        return True

    while True:
        # Read the chunk-size line.
        while b"\r\n" not in buffer:
            if not fill():
                raise ConnectionError(
                    "chunked stream truncated in chunk-size line"
                )
        line, buffer = buffer.split(b"\r\n", 1)
        # Chunk extensions (";...") are allowed by the RFC; ignore them.
        size_token = line.split(b";", 1)[0].strip()
        try:
            size = int(size_token, 16)
        except ValueError:
            raise ConnectionError(
                f"malformed chunk size {size_token!r}"
            )
        if size == 0:
            return
        while len(buffer) < size + 2:  # payload + trailing CRLF
            if not fill():
                raise ConnectionError(
                    "chunked stream truncated mid-chunk"
                )
        payload, buffer = buffer[:size], buffer[size + 2:]
        yield payload


def iter_sse(
    payloads: Iterable[bytes],
) -> Iterator[Tuple[str, Any]]:
    """Parse SSE events out of de-chunked payload bytes.

    Yields ``(event, decoded-data)`` tuples.  Event boundaries are the
    blank line of the SSE framing and need not align with chunk
    boundaries.  Data lines that are not JSON surface as raw strings
    (forward compatibility with non-JSON events).
    """
    buffer = b""
    for payload in payloads:
        buffer += payload
        while b"\n\n" in buffer:
            block, buffer = buffer.split(b"\n\n", 1)
            parsed = parse_sse_block(block.decode("utf-8"))
            if parsed is not None:
                yield parsed
    if buffer.strip():
        parsed = parse_sse_block(buffer.decode("utf-8"))
        if parsed is not None:
            yield parsed


def parse_sse_block(block: str) -> Optional[Tuple[str, Any]]:
    """One SSE block -> ``(event, data)``, or ``None`` for noise.

    Comment lines (``:`` prefix, used as keep-alives) and blocks
    without a ``data:`` field are dropped.
    """
    event = "message"
    data_lines = []
    for line in block.splitlines():
        if not line or line.startswith(":"):
            continue
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:"):].strip())
    if not data_lines:
        return None
    joined = "\n".join(data_lines)
    try:
        return event, json.loads(joined)
    except ValueError:
        return event, joined
