"""Cache configurations (Table 2 of the paper).

A configuration is the triple ``k = (a, b, c)``: associativity, block
size in bytes, capacity in bytes.  The paper evaluates 36 configurations
(k1..k36) spanning a ∈ {1, 2, 4}, b ∈ {16, 32}, c ∈ {256 .. 8192}.

Capacities should be read as *effective capacities allocated to one
program* (Section 5): in a real system many tasks share the cache, so
these are per-task shares, not total cache sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CacheConfigError


def _is_pow2(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class CacheConfig:
    """An instruction-cache configuration ``(a, b, c)``.

    Attributes:
        associativity: Number of blocks per set (``a``).
        block_size: Bytes per cache block (``b``).
        capacity: Total bytes of the cache (``c``).
    """

    associativity: int
    block_size: int
    capacity: int

    def __post_init__(self) -> None:
        if self.associativity < 1:
            raise CacheConfigError(
                f"associativity must be >= 1, got {self.associativity}"
            )
        if not _is_pow2(self.block_size):
            raise CacheConfigError(
                f"block size must be a power of two, got {self.block_size}"
            )
        if self.capacity < self.associativity * self.block_size:
            raise CacheConfigError(
                f"capacity {self.capacity} too small for {self.associativity}-way "
                f"sets of {self.block_size}-byte blocks"
            )
        way_bytes = self.associativity * self.block_size
        if self.capacity % way_bytes:
            raise CacheConfigError(
                f"capacity {self.capacity} is not a whole number of "
                f"{self.associativity}-way {self.block_size}-byte sets"
            )
        # Set indexing slices address bits: the set count must be a
        # power of two (associativity/capacity may be odd — e.g. the
        # residual ways of a partially locked cache).
        if not _is_pow2(self.capacity // way_bytes):
            raise CacheConfigError(
                f"number of sets must be a power of two, got "
                f"{self.capacity // way_bytes}"
            )

    @property
    def num_sets(self) -> int:
        """Number of cache sets (lines in the paper's terminology)."""
        return self.capacity // (self.associativity * self.block_size)

    @property
    def num_blocks(self) -> int:
        """Total number of cache blocks."""
        return self.capacity // self.block_size

    def set_index(self, memory_block: int) -> int:
        """Cache set a memory block maps to (modulo placement)."""
        return memory_block % self.num_sets

    def block_of_address(self, address: int) -> int:
        """Memory block id containing a byte address."""
        if address < 0:
            raise CacheConfigError(f"negative address {address}")
        return address // self.block_size

    def label(self) -> str:
        """Short human-readable form, e.g. ``"(2, 16, 1024)"``."""
        return f"({self.associativity}, {self.block_size}, {self.capacity})"

    def scaled_capacity(self, factor: float) -> "CacheConfig":
        """A configuration with capacity scaled by ``factor``.

        Used by the Figure-5 experiment (optimized programs on 1/2 and
        1/4 capacity).  The result keeps associativity and block size; the
        scaled capacity must stay a legal power of two.
        """
        new_capacity = int(self.capacity * factor)
        return CacheConfig(self.associativity, self.block_size, new_capacity)


@dataclass(frozen=True)
class CacheLevel:
    """One level of a memory hierarchy: a cache plus its service time.

    Attributes:
        config: The level's cache geometry.
        latency_cycles: Extra cycles to serve a fetch from this level
            (on top of the front-end hit time) — i.e. the penalty of
            missing every *closer* level and hitting here.
    """

    config: CacheConfig
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.latency_cycles < 1:
            raise CacheConfigError(
                f"level latency must be >= 1 cycle, got {self.latency_cycles}"
            )

    def label(self) -> str:
        """Short human-readable form, e.g. ``"(8, 32, 16384)@6"``."""
        return f"{self.config.label()}@{self.latency_cycles}"


@dataclass(frozen=True)
class HierarchyConfig:
    """An ordered memory hierarchy: L1, optional deeper levels, DRAM.

    The first level is the instruction cache the front end probes on
    every fetch; deeper levels are probed only on a miss in all closer
    levels; DRAM is the implicit backstop (its penalty lives in the
    :class:`~repro.analysis.timing.TimingModel`).  All levels must share
    one block size so a memory block means the same thing at every
    level, and capacities must not shrink with depth (a smaller L2 than
    L1 never filters anything and breaks the inclusion reasoning of the
    per-level analysis).
    """

    levels: Tuple[CacheLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise CacheConfigError("a hierarchy needs at least one level")
        block = self.levels[0].config.block_size
        for level in self.levels[1:]:
            if level.config.block_size != block:
                raise CacheConfigError(
                    f"all hierarchy levels must share one block size "
                    f"(L1 has {block}, found {level.config.block_size})"
                )
        for closer, deeper in zip(self.levels, self.levels[1:]):
            if deeper.config.capacity < closer.config.capacity:
                raise CacheConfigError(
                    f"hierarchy capacities must not shrink with depth: "
                    f"{deeper.config.label()} behind {closer.config.label()}"
                )

    @property
    def l1(self) -> CacheConfig:
        """The first-level cache configuration."""
        return self.levels[0].config

    @property
    def l2_level(self) -> Optional[CacheLevel]:
        """The second level, or ``None`` for a single-level hierarchy."""
        return self.levels[1] if len(self.levels) > 1 else None

    @property
    def multi_level(self) -> bool:
        """Whether any level sits between L1 and DRAM."""
        return len(self.levels) > 1

    def label(self) -> str:
        """Human-readable form, e.g. ``"(1, 16, 256) | (8, 16, 16384)@6"``."""
        return " | ".join(
            [self.l1.label()] + [lvl.label() for lvl in self.levels[1:]]
        )


def parse_l2_spec(spec: str) -> CacheLevel:
    """Parse an ``assoc:block:capacity:latency`` L2 specification.

    The CLI / sweep-grid form of one second-level point, e.g.
    ``"8:16:16384:6"`` — an 8-way 16-KiB L2 of 16-byte blocks serving
    hits in 6 extra cycles.
    """
    parts = spec.split(":")
    if len(parts) != 4:
        raise CacheConfigError(
            f"L2 spec must be assoc:block:capacity:latency, got {spec!r}"
        )
    try:
        assoc, block, capacity, latency = (int(part) for part in parts)
    except ValueError:
        raise CacheConfigError(
            f"L2 spec fields must be integers, got {spec!r}"
        ) from None
    return CacheLevel(CacheConfig(assoc, block, capacity), latency)


def hierarchy_for(
    l1: CacheConfig, l2_spec: Optional[str] = None
) -> HierarchyConfig:
    """Build a hierarchy from an L1 config and an optional L2 spec."""
    levels: Tuple[CacheLevel, ...] = (CacheLevel(l1, 1),)
    if l2_spec:
        levels += (parse_l2_spec(l2_spec),)
    return HierarchyConfig(levels)


def _table2() -> Dict[str, CacheConfig]:
    """Build the paper's Table 2: k1..k36."""
    table: Dict[str, CacheConfig] = {}
    index = 1
    for capacity in (256, 512, 1024, 2048, 4096, 8192):
        for block_size in (16, 32):
            for assoc in (1, 2, 4):
                table[f"k{index}"] = CacheConfig(assoc, block_size, capacity)
                index += 1
    return table


#: The paper's 36 configurations, keyed ``"k1"``..``"k36"``.
#:
#: Ordering follows Table 2 reading order: capacity-major, then block
#: size, then associativity — e.g. k1=(1,16,256), k2=(2,16,256),
#: k3=(4,16,256), k4=(1,32,256), ..., k36=(4,32,8192).
TABLE2: Dict[str, CacheConfig] = _table2()

#: Cache capacities evaluated in the paper (x-axis of Figs 3-5).
CAPACITIES: Tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192)

#: Reverse index of :data:`TABLE2` — ``config_id`` sits on the hot path
#: of cache keys, metrics labels and report rows, so it must be a dict
#: lookup, not a 36-entry scan (CacheConfig is frozen, hence hashable).
_ID_BY_CONFIG: Dict[CacheConfig, str] = {
    config: key for key, config in TABLE2.items()
}


def config_id(config: CacheConfig) -> str:
    """The Table 2 id (``"k7"``...) of a configuration.

    Raises :class:`CacheConfigError` when the configuration is not one of
    the paper's 36.
    """
    try:
        return _ID_BY_CONFIG[config]
    except KeyError:
        raise CacheConfigError(
            f"configuration {config.label()} is not in Table 2"
        ) from None


def configs_with_capacity(capacity: int) -> List[CacheConfig]:
    """All Table-2 configurations of a given capacity (6 of them)."""
    found = [cfg for cfg in TABLE2.values() if cfg.capacity == capacity]
    if not found:
        raise CacheConfigError(f"no Table-2 configuration has capacity {capacity}")
    return found
