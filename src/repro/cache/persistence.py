"""Persistence ("first miss") cache analysis.

The third classical domain of the Ferdinand/Wilhelm framework the paper
builds on.  Must analysis proves *always hit*; may analysis proves
*always miss*; persistence analysis proves *at most one miss*: once a
persistent block has been loaded it is never evicted, so every later
reference hits and the WCET charges the miss penalty exactly once.

Without it, a block first touched under a conditional inside a loop is
``NOT_CLASSIFIED`` forever (the must-join intersects it away at the
convergence point) and IPET charges a full miss on *every* iteration —
wildly pessimistic for exactly the references the suite is full of.

Domain: per cache set, a map ``block -> age bound`` where ages run
``0 .. associativity``; the saturated value ``associativity`` is the
sticky ⊤ meaning "may have been evicted at some point".  Blocks never
referenced are simply absent (⊥).  The update is the LRU aging of the
must domain with saturation instead of disappearance; the join keeps
the maximum age (present-in-one-side keeps its age — absence means
"never loaded on that path", which does not endanger persistence).

A reference is *persistent* when the block's in-state age bound is
below ⊤ — covering both "already resident" and "never loaded yet" (the
one charged miss).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.errors import AnalysisError


class PersistenceState:
    """Immutable persistence abstract state.

    Stored as ``{set_index: {block: age_bound}}`` with ages in
    ``0..associativity`` (the maximum being the sticky evicted-⊤).
    """

    __slots__ = ("config", "_sets", "_hash")

    #: Domain identity, mirroring
    #: :attr:`repro.cache.abstract.AbstractCacheState.domain_tag`.
    domain_tag = "persistence"

    def __init__(
        self,
        config: CacheConfig,
        sets: Optional[Dict[int, Dict[int, int]]] = None,
    ):
        self.config = config
        top = config.associativity
        cleaned: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        for index, ages in (sets or {}).items():
            if ages:
                for block, age in ages.items():
                    if not 0 <= age <= top:
                        raise AnalysisError(
                            f"persistence age {age} out of range 0..{top}"
                        )
                cleaned[index] = tuple(sorted(ages.items()))
        self._sets = cleaned
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def top(self) -> int:
        """The saturated "may be evicted" age value."""
        return self.config.associativity

    def ages(self, set_index: int) -> Dict[int, int]:
        """Block -> age-bound map of one set (copy)."""
        return dict(self._sets.get(set_index, ()))

    def age_of(self, block: int) -> Optional[int]:
        """Age bound of ``block``; ``None`` when never loaded (⊥)."""
        ages = dict(self._sets.get(self.config.set_index(block), ()))
        return ages.get(block)

    def is_persistent(self, block: int) -> bool:
        """Whether a reference to ``block`` here is at-most-one-miss."""
        age = self.age_of(block)
        return age is None or age < self.top

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PersistenceState):
            return NotImplemented
        return self.config == other.config and self._sets == other._sets

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted(self._sets.items())))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for index in sorted(self._sets):
            inner = ",".join(f"{b}:{a}" for b, a in self._sets[index])
            parts.append(f"s{index}{{{inner}}}")
        return f"<PersistenceState {' '.join(parts) or 'empty'}>"

    @classmethod
    def _make(
        cls,
        config: CacheConfig,
        sets: Dict[int, Tuple[Tuple[int, int], ...]],
    ) -> "PersistenceState":
        """Fast construction for internal use: ``sets`` must already be
        canonical (sorted pairs, valid ages, no empty entries)."""
        fresh = cls.__new__(cls)
        fresh.config = config
        fresh._sets = sets
        fresh._hash = None
        return fresh

    # ------------------------------------------------------------------
    # domain operations
    # ------------------------------------------------------------------
    def update(self, block: int) -> "PersistenceState":
        """LRU aging with sticky saturation on an access to ``block``.

        Only the accessed set is rebuilt; all other sets are shared with
        the predecessor state (structural sharing keeps the analysis
        linear in *touched* sets, not program size).
        """
        config = self.config
        top = self.top
        set_index = config.set_index(block)
        ages = dict(self._sets.get(set_index, ()))
        old_age = ages.get(block, top)  # absent behaves like oldest
        new_ages: Dict[int, int] = {}
        for other, age in ages.items():
            if other == block:
                continue
            if age < old_age:
                new_ages[other] = min(age + 1, top)
            else:
                new_ages[other] = age
        new_ages[block] = 0
        fresh = PersistenceState.__new__(PersistenceState)
        fresh.config = config
        new_sets = dict(self._sets)  # shares untouched per-set tuples
        new_sets[set_index] = tuple(sorted(new_ages.items()))
        fresh._sets = new_sets
        fresh._hash = None
        return fresh

    def unknown_access(self) -> "PersistenceState":
        """An unknown access may land in any set: every tracked block's
        age bound grows by one (saturating at the sticky ⊤)."""
        top = self.top
        new_sets: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        for index, pairs in self._sets.items():
            new_sets[index] = tuple(
                (block, min(age + 1, top)) for block, age in pairs
            )
        fresh = PersistenceState.__new__(PersistenceState)
        fresh.config = self.config
        fresh._sets = new_sets
        fresh._hash = None
        return fresh

    def join(self, other: "PersistenceState") -> "PersistenceState":
        """Pointwise maximum of age bounds (⊤ is sticky).

        Identical per-set tuples (the common case thanks to structural
        sharing) are reused without merging.
        """
        if other.config != self.config:
            raise AnalysisError("persistence-join requires matching configs")
        new_sets: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        for index in set(self._sets) | set(other._sets):
            mine_t = self._sets.get(index, ())
            theirs_t = other._sets.get(index, ())
            if mine_t == theirs_t:
                new_sets[index] = mine_t
                continue
            mine = dict(mine_t)
            theirs = dict(theirs_t)
            merged: Dict[int, int] = {}
            for block in set(mine) | set(theirs):
                if block in mine and block in theirs:
                    merged[block] = max(mine[block], theirs[block])
                else:
                    # Absent on one path = never loaded there; the age
                    # bound from the other path still holds once loaded.
                    merged[block] = mine.get(block, theirs.get(block, 0))
            new_sets[index] = tuple(sorted(merged.items()))
        fresh = PersistenceState.__new__(PersistenceState)
        fresh.config = self.config
        fresh._sets = new_sets
        fresh._hash = None
        return fresh
