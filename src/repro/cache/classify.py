"""Cache-behaviour classification over the ACFG.

Runs the must/may abstract interpretation of
:mod:`repro.cache.abstract` over an :class:`~repro.program.acfg.ACFG`
and classifies every reference vertex as

* ``ALWAYS_HIT`` — the referenced block is in the must state before the
  access (hit on every path, every iteration the context covers),
* ``ALWAYS_MISS`` — the block is absent from the may state,
* ``NOT_CLASSIFIED`` — neither provable; WCET analysis must assume a
  miss.

Loop ``REST`` contexts are closed through the ACFG's analysis-only back
edges with a Kleene fixpoint: the state entering a REST instance joins
the first iteration's exit with the REST instance's own exit, iterated
until stable.  This is the standard way the VIVU "rest" context
summarises iterations 2..bound soundly.

Software prefetch vertices update the state twice: once for their own
fetch (a prefetch is an instruction and occupies a block), once for the
block they load.  The *timing* validity of that second update (the
latency Λ must be hidden) is enforced by the optimizer's effectiveness
gate (Definition 10) and re-checked by
:mod:`repro.core.guarantees`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache.abstract import AbstractCacheState, MayState, MustState
from repro.cache.config import CacheConfig
from repro.cache.persistence import PersistenceState
from repro.errors import AnalysisError
from repro.program.acfg import ACFG, RefVertex, VertexKind

#: Hard cap on fixpoint passes; reaching it indicates a bug, since the
#: must/may lattices have height bounded by associativity x blocks.
MAX_FIXPOINT_PASSES = 64


class Classification(enum.Enum):
    """Static classification of one reference.

    ``PERSISTENT`` ("first miss") means the referenced block is never
    evicted once loaded: WCET analysis charges the miss penalty once per
    block and the hit latency per access (see
    :mod:`repro.cache.persistence`).
    """

    ALWAYS_HIT = "AH"
    ALWAYS_MISS = "AM"
    PERSISTENT = "PS"
    NOT_CLASSIFIED = "NC"

    @property
    def is_hit(self) -> bool:
        """True when WCET analysis charges only the hit latency per access."""
        return self in (Classification.ALWAYS_HIT, Classification.PERSISTENT)

    @property
    def is_always_hit(self) -> bool:
        """True only for the must-proven always-hit class."""
        return self is Classification.ALWAYS_HIT


#: The layered precedence of the classification lattice, weakest claim
#: first: ``NC < AM < PS < AH``.  This is exactly the code table the
#: dense kernel bakes into its precompiled gather arrays
#: (:func:`repro.cache.kernel.classify_references_dense`), and the
#: order :func:`classify_references` applies its overwrites in — keep
#: the three in sync.  Refinement promotions
#: (:mod:`repro.analysis.refine`) may only move a reference to a
#: *later* layer, so a promoted label can never be weakened by either
#: classifier.
CLASSIFICATION_LAYERS: Tuple[Classification, ...] = (
    Classification.NOT_CLASSIFIED,
    Classification.ALWAYS_MISS,
    Classification.PERSISTENT,
    Classification.ALWAYS_HIT,
)


def classification_rank(classification: Classification) -> int:
    """Index of a classification in :data:`CLASSIFICATION_LAYERS`."""
    return CLASSIFICATION_LAYERS.index(classification)


@dataclass
class DataflowResult:
    """Per-vertex in/out states of one abstract interpretation run."""

    in_states: List[Optional[AbstractCacheState]]
    out_states: List[Optional[AbstractCacheState]]
    passes: int


#: Marker for a statically-unknown access in a custom access plan.
UNKNOWN_ACCESS = "?"

#: Marker for an access that *may or may not* occur, paired with its
#: block id as ``(MAYBE_ACCESS, block)``.  The transfer is
#: ``join(update(state, block), state)`` — the join of the accessed and
#: the untouched successor states — which over-approximates both
#: outcomes in every domain (it weakens must guarantees and widens may
#: contents).  This is the op Hardy & Puaut's multi-level analysis
#: needs for L2: a reference not provably hitting L1 reaches L2 on some
#: paths/iterations but not necessarily all of them.
MAYBE_ACCESS = "?maybe"


def propagate(
    acfg: ACFG,
    config: CacheConfig,
    initial: AbstractCacheState,
    locked_blocks: Optional[frozenset] = None,
    plan: Optional[List[Optional[tuple]]] = None,
    transfer=None,
    warm: Optional[tuple] = None,
) -> DataflowResult:
    """Run one abstract domain over the ACFG to fixpoint.

    Pass 1 is a full topological sweep; every later pass only
    re-processes vertices whose (forward or back-edge) inputs changed —
    the standard worklist optimisation, which matters because this
    routine is the inner loop of the optimizer's candidate evaluation.

    Args:
        acfg: The program's ACFG.
        config: Cache configuration (defines set mapping).
        initial: State at the source — typically the all-invalid state
            of the chosen domain (``MustState(config)``/``MayState(config)``).
        transfer: Optional transfer-function provider with
            ``update(state, block)``, ``join(a, b)`` and
            ``unknown(state)`` — the pipeline's hash-consing
            :class:`~repro.analysis.pipeline.TransferCache` plugs in
            here.  ``None`` calls the domain methods directly.
        warm: Optional warm start ``(boundary, base_in, base_out)``:
            states of every vertex below ``boundary`` are copied from
            the base run and the sweeps start at ``boundary``.  Only
            sound when the caller has proven the prefix equations
            unchanged (the pipeline's divergence-boundary closure).

    Returns:
        A :class:`DataflowResult` with the converged states.
    """
    n = len(acfg.vertices)
    in_states: List[Optional[AbstractCacheState]] = [None] * n
    out_states: List[Optional[AbstractCacheState]] = [None] * n
    back_by_target: Dict[int, List[int]] = {}
    for src, dst in acfg.back_edges:
        back_by_target.setdefault(dst, []).append(src)

    start = 0
    if warm is not None:
        boundary, base_in, base_out = warm
        if 0 < boundary <= n and len(base_in) >= boundary and len(
            base_out
        ) >= boundary:
            in_states[:boundary] = base_in[:boundary]
            out_states[:boundary] = base_out[:boundary]
            start = boundary

    domain = type(initial)
    if transfer is None:
        join_op = domain.join
        update_op = domain.update
        unknown_op = domain.unknown_access
    else:
        join_op = transfer.join
        update_op = transfer.update
        unknown_op = transfer.unknown

    # Per-rid access plan: None for no accesses, else a tuple of ops —
    # each op a memory-block id or :data:`UNKNOWN_ACCESS`.  The default
    # plan is the instruction-fetch stream (own block, then a prefetch's
    # target); the data-cache extension passes its own plan.  Locked
    # blocks live in pinned ways and never touch the LRU state.
    locked = locked_blocks or frozenset()
    if plan is None:
        plan = [None] * n
        for vertex in acfg.ref_vertices():
            ops = []
            own = acfg.block_of(vertex.rid)
            if own not in locked:
                ops.append(own)
            target = acfg.target_block_or_none(vertex.rid)
            if target is not None and target not in locked:
                ops.append(target)
            if ops:
                plan[vertex.rid] = tuple(ops)
    elif len(plan) != n:
        raise AnalysisError(
            f"custom plan has {len(plan)} entries, ACFG has {n} vertices"
        )

    preds = [acfg.predecessors(rid) for rid in range(n)]
    source = acfg.source
    back_src_changed: Dict[int, bool] = {}

    for pass_count in range(1, MAX_FIXPOINT_PASSES + 1):
        changed = [False] * n
        any_changed = False
        first_pass = pass_count == 1
        # Vertices below the warm-start boundary can never re-enter the
        # worklist: their preds and back-edge sources all lie below the
        # boundary too (the pipeline's closure), and those never change.
        for rid in range(start, n):
            if not first_pass:
                need = any(changed[p] for p in preds[rid]) or any(
                    back_src_changed.get(src, False)
                    for src in back_by_target.get(rid, ())
                )
                if not need:
                    continue
            if rid == source:
                new_in: Optional[AbstractCacheState] = initial
            else:
                contributions = [
                    out_states[p] for p in preds[rid] if out_states[p] is not None
                ]
                for src in back_by_target.get(rid, ()):
                    if out_states[src] is not None:
                        contributions.append(out_states[src])
                if not contributions:
                    continue  # unreachable this pass (back edge pending)
                new_in = contributions[0]
                for extra in contributions[1:]:
                    new_in = join_op(new_in, extra)
            access = plan[rid]
            if access is None:
                new_out = new_in
            else:
                new_out = new_in
                for op in access:
                    if op == UNKNOWN_ACCESS:
                        new_out = unknown_op(new_out)
                    elif type(op) is tuple and op[0] == MAYBE_ACCESS:
                        new_out = join_op(update_op(new_out, op[1]), new_out)
                    else:
                        new_out = update_op(new_out, op)
            if new_out != out_states[rid]:
                changed[rid] = True
                any_changed = True
                out_states[rid] = new_out
            if new_in != in_states[rid]:
                any_changed = True
                in_states[rid] = new_in
        back_src_changed = {
            src: changed[src] for src, _ in acfg.back_edges
        }
        if not any_changed:
            return DataflowResult(in_states, out_states, pass_count)
    raise AnalysisError(
        f"abstract interpretation did not converge within "
        f"{MAX_FIXPOINT_PASSES} passes"
    )


@dataclass
class CacheAnalysis:
    """Bundled must(+may) results with per-reference classifications.

    Attributes:
        config: Cache configuration analysed.
        classifications: Per-rid classification (``None`` for non-REF
            vertices).
        must: Must-domain dataflow result.
        may: May-domain dataflow result, or ``None`` when the analysis
            ran in must-only mode (the optimizer's hot loop: for WCET
            timing, always-miss and not-classified are both charged the
            miss latency, so the may domain adds nothing).
    """

    config: CacheConfig
    classifications: List[Optional[Classification]]
    must: DataflowResult
    may: Optional[DataflowResult]
    persistence: Optional[DataflowResult] = None
    #: Must-domain result of the second-level cache (multi-level
    #: hierarchies only): the L2 access stream is the L1 access stream
    #: filtered by the L1 classification — always-hit references never
    #: reach L2, everything else arrives as a maybe-access.
    l2_must: Optional[DataflowResult] = None
    #: Rids of references that miss L1 (statically) but are proven to
    #: hit L2: WCET charges them the L2 service time, not the DRAM one.
    l2_hits: Optional[frozenset] = None

    def classification(self, rid: int) -> Classification:
        """Classification of a REF vertex (raises for non-REF)."""
        result = self.classifications[rid]
        if result is None:
            raise AnalysisError(f"vertex {rid} is not a reference")
        return result

    def count(self, kind: Classification) -> int:
        """Number of references with the given classification."""
        return sum(1 for c in self.classifications if c is kind)

    def hit_ratio_static(self) -> float:
        """Fraction of references provably hitting (static, unweighted)."""
        refs = sum(1 for c in self.classifications if c is not None)
        if refs == 0:
            return 0.0
        return self.count(Classification.ALWAYS_HIT) / refs


def analyze_cache(
    acfg: ACFG,
    config: CacheConfig,
    with_may: bool = True,
    with_persistence: bool = True,
    locked_blocks: Optional[frozenset] = None,
    kernel: Optional[str] = None,
    hierarchy=None,
) -> CacheAnalysis:
    """Classify every reference of ``acfg`` under ``config``.

    The cache starts all-invalid (``ĉ_I``), matching the paper's setup
    where each program fully owns the instruction cache.

    Classification precedence per reference: ``ALWAYS_HIT`` (must) >
    ``PERSISTENT`` (first-miss) > ``ALWAYS_MISS`` (may) >
    ``NOT_CLASSIFIED``.

    Args:
        acfg: The program's ACFG.
        config: Cache configuration.
        with_may: Run the may analysis (distinguishes always-miss from
            not-classified; irrelevant for the WCET bound).
        with_persistence: Run the persistence analysis (tightens the
            bound for blocks first touched under conditionals).
        locked_blocks: For the hybrid locking+prefetching scheme
            ([16]/[2], the paper's planned extension): blocks pinned in
            locked ways.  References to them classify ``ALWAYS_HIT`` and
            their accesses do not disturb the LRU state of the unlocked
            ways, which ``config`` then describes (use the reduced-way
            residual configuration).
        kernel: Abstract-domain implementation — ``"python"`` (the
            oracle, this module), ``"vectorized"`` (the dense numpy
            kernel of :mod:`repro.cache.kernel`), or ``None`` to follow
            the ``REPRO_CACHE_KERNEL`` environment variable.  Both
            produce bit-identical classifications (enforced by the
            differential test layer).
        hierarchy: Optional
            :class:`~repro.cache.config.HierarchyConfig`; when it has a
            second level, the L2 must fixpoint runs over the
            classification-filtered access stream and the result
            carries ``l2_must``/``l2_hits``.  Its L1 must equal
            ``config``.
    """
    if config.block_size != acfg.memory_map.block_size:
        raise AnalysisError(
            f"ACFG was built for block size {acfg.memory_map.block_size}, "
            f"cache uses {config.block_size}"
        )
    # Imported lazily: kernel.py imports DataflowResult from this module.
    from repro.cache.kernel import (
        BlockUniverse,
        KernelSchedule,
        classify_references_dense,
        propagate_kernel_batch,
        resolve_kernel,
    )

    if hierarchy is not None and hierarchy.l1 != config:
        raise AnalysisError(
            f"hierarchy L1 {hierarchy.l1.label()} does not match the "
            f"analysed configuration {config.label()}"
        )
    level2 = hierarchy.l2_level if hierarchy is not None else None
    # A second level implies the may analysis: only an L1 always-miss is
    # a *definite* L2 access, and definite accesses are the only way the
    # L2 must domain gains blocks (see l2_access_plan).  Forcing it here
    # also keeps the L2 plan — and hence τ_w — independent of the
    # caller's with_may choice.
    if level2 is not None:
        with_may = True
    if resolve_kernel(kernel) == "vectorized":
        universe = BlockUniverse.for_acfg(acfg, config)
        schedule = KernelSchedule(
            acfg, universe, locked_blocks or frozenset()
        )
        domains = ["must"]
        if with_may:
            domains.append("may")
        if with_persistence:
            domains.append("persistence")
        batch = propagate_kernel_batch(schedule, domains)
        must = batch["must"]
        may = batch.get("may")
        persistence = batch.get("persistence")
        classifications = classify_references_dense(
            acfg, must, may, persistence, locked_blocks, schedule=schedule
        )
    else:
        must = propagate(acfg, config, MustState(config), locked_blocks)
        may = (
            propagate(acfg, config, MayState(config), locked_blocks)
            if with_may
            else None
        )
        persistence = (
            propagate(acfg, config, PersistenceState(config), locked_blocks)
            if with_persistence
            else None
        )
        classifications = classify_references(
            acfg, must, may, persistence, locked_blocks
        )
    analysis = CacheAnalysis(config, classifications, must, may, persistence)
    if level2 is not None:
        analysis.l2_must = analyze_l2_must(
            acfg, level2.config, classifications, locked_blocks, may=may
        )
        analysis.l2_hits = l2_guaranteed_hits(
            acfg, classifications, analysis.l2_must
        )
    return analysis


def classify_references(
    acfg: ACFG,
    must: DataflowResult,
    may: Optional[DataflowResult],
    persistence: Optional[DataflowResult],
    locked_blocks: Optional[frozenset] = None,
) -> List[Optional[Classification]]:
    """Per-rid classifications from converged dataflow results.

    The pure classification step of :func:`analyze_cache`, shared with
    the staged pipeline which obtains the dataflow results from its own
    caches.
    """
    classifications: List[Optional[Classification]] = [None] * len(acfg.vertices)
    locked = locked_blocks or frozenset()
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        block = acfg.block_of(rid)
        must_in = must.in_states[rid]
        may_in = may.in_states[rid] if may is not None else None
        pers_in = persistence.in_states[rid] if persistence is not None else None
        # Layered overwrite in :data:`CLASSIFICATION_LAYERS` order,
        # weakest claim first — the same ``NC < AM < PS < AH`` code
        # table the dense kernel precompiles, so both classifiers (and
        # any later refinement promotion) agree on precedence.
        label = Classification.NOT_CLASSIFIED
        if may is not None and (may_in is None or block not in may_in):
            # Absent from the may in-state, or never reached by the may
            # analysis at all (dead under the given bounds — it
            # contributes nothing either way): cannot hit.
            label = Classification.ALWAYS_MISS
        if pers_in is not None and pers_in.is_persistent(block):
            label = Classification.PERSISTENT
        if block in locked or (must_in is not None and block in must_in):
            label = Classification.ALWAYS_HIT
        classifications[rid] = label
    return classifications


# ----------------------------------------------------------------------
# second-level (L2) analysis — Hardy & Puaut per-level filtering
# ----------------------------------------------------------------------
def l2_access_plan(
    acfg: ACFG,
    classifications: Sequence[Optional[Classification]],
    locked_blocks: Optional[frozenset] = None,
    may: Optional[DataflowResult] = None,
) -> List[Optional[tuple]]:
    """The L2 access plan induced by the L1 classification.

    Hardy & Puaut's cache-access classification, per reference:

    * L1 ``ALWAYS_HIT`` — *never* reaches L2: no op;
    * definite L1 miss — reaches L2 on *every* execution: a definite
      update.  A reference definitely misses when its block is absent
      from the L1 may in-state (Hardy & Puaut's *Always* CAC).  This
      is decided from the may domain directly, not from the final
      classification label: persistence precedence can stamp a
      first-ever (hence definitely missing) reference ``PERSISTENT``,
      and losing its definite L2 fill would empty the must state at
      every loop head — definite accesses are the only op that grows
      the L2 must state (a maybe-access joins with the untouched state
      and therefore never adds blocks).  This is also why a second
      level implies the may analysis (see :func:`analyze_cache`);
    * anything else — *uncertain*: a :data:`MAYBE_ACCESS`.

    A prefetch's target transfer reaches L2 exactly when the target
    missed L1, which is not statically known, so it is a maybe-access
    too.  Locked blocks are pinned in L1 and never reach L2.
    """
    locked = locked_blocks or frozenset()
    plan: List[Optional[tuple]] = [None] * len(acfg.vertices)
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        ops = []
        own = acfg.block_of(rid)
        classification = classifications[rid]
        if own not in locked and not (
            classification is not None and classification.is_always_hit
        ):
            may_in = may.in_states[rid] if may is not None else None
            if classification is Classification.ALWAYS_MISS or (
                may_in is not None and own not in may_in
            ):
                ops.append(own)
            else:
                ops.append((MAYBE_ACCESS, own))
        target = acfg.target_block_or_none(rid)
        if target is not None and target not in locked:
            ops.append((MAYBE_ACCESS, target))
        if ops:
            plan[rid] = tuple(ops)
    return plan


def analyze_l2_must(
    acfg: ACFG,
    l2_config: CacheConfig,
    classifications: Sequence[Optional[Classification]],
    locked_blocks: Optional[frozenset] = None,
    transfer=None,
    warm: Optional[tuple] = None,
    may: Optional[DataflowResult] = None,
) -> DataflowResult:
    """Run the must domain of the second-level cache to fixpoint.

    Always executes the pure-python :func:`propagate` (the maybe-access
    op has no dense-kernel counterpart); the plan is derived solely
    from the L1 classification and may result, which both kernels
    produce bit-identically, so the L2 result is kernel-independent too.
    """
    plan = l2_access_plan(acfg, classifications, locked_blocks, may=may)
    return propagate(
        acfg,
        l2_config,
        MustState(l2_config),
        locked_blocks=None,  # locked blocks are already filtered out
        plan=plan,
        transfer=transfer,
        warm=warm,
    )


def l2_guaranteed_hits(
    acfg: ACFG,
    classifications: Sequence[Optional[Classification]],
    l2_must: DataflowResult,
) -> frozenset:
    """Rids charged the L2 (not DRAM) service time on an L1 miss.

    A reference qualifies when it is not an L1 static hit but its block
    is in the L2 must in-state: on every path it either hits L1 or is
    served by L2, so the L2 time bounds the worst case.
    """
    hits = set()
    for vertex in acfg.ref_vertices():
        rid = vertex.rid
        classification = classifications[rid]
        if classification is None or classification.is_hit:
            continue
        must_in = l2_must.in_states[rid]
        if must_in is not None and acfg.block_of(rid) in must_in:
            hits.add(rid)
    return frozenset(hits)
