"""Concrete set-associative LRU instruction cache.

This is the executable counterpart of the abstract semantics: the trace
simulator (:mod:`repro.sim`) drives it with fetch addresses, and the
property-based tests use it as the ground truth the abstract analysis
must be sound against (an always-hit reference may never miss here).

The cache state is the paper's concrete state ``c: L -> S`` (Section
3.1) with full LRU ordering per set, blocks denoted ``[MRU, ..., LRU]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.errors import SimulationError


class ConcreteCache:
    """A set-associative LRU cache over memory-block ids.

    Only block ids flow through the interface — address-to-block mapping
    is the caller's business (:meth:`CacheConfig.block_of_address`).
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        # Per set: list of block ids, MRU first.  Sets are materialised
        # lazily; an absent set is entirely invalid.
        self._sets: Dict[int, List[int]] = {}
        self.hits = 0
        self.misses = 0
        # Line fills are split by cause: a demand miss installs the
        # block (demand_fills), a prefetch installs it without a demand
        # access (prefetch_fills).  `fills` is their sum — historically
        # it silently counted prefetch installs only while reading as
        # total line fills.  Note the trace simulator
        # (repro.sim.machine) and the energy model keep their own
        # per-event counters and never read these.
        self.demand_fills = 0
        self.prefetch_fills = 0

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def access(self, block: int) -> bool:
        """Demand access to a memory block.

        Updates LRU state and the hit/miss counters.

        Returns:
            ``True`` on hit, ``False`` on miss (the block is then
            installed at the MRU position, evicting the LRU block if the
            set is full).
        """
        hit = self._touch(block)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    def install(self, block: int) -> Optional[int]:
        """Install a block without counting a demand access (prefetch fill).

        Returns:
            The evicted block id, or ``None`` when nothing was evicted
            (set not full, or block already present — in which case it is
            merely promoted to MRU).
        """
        index = self.config.set_index(block)
        line = self._sets.setdefault(index, [])
        if block in line:
            line.remove(block)
            line.insert(0, block)
            return None
        evicted = None
        if len(line) >= self.config.associativity:
            evicted = line.pop()
        line.insert(0, block)
        self.prefetch_fills += 1
        return evicted

    def contains(self, block: int) -> bool:
        """Non-destructive lookup (no LRU update, no counters)."""
        index = self.config.set_index(block)
        return block in self._sets.get(index, ())

    def _touch(self, block: int) -> bool:
        index = self.config.set_index(block)
        line = self._sets.setdefault(index, [])
        if block in line:
            line.remove(block)
            line.insert(0, block)
            return True
        if len(line) >= self.config.associativity:
            line.pop()
        line.insert(0, block)
        self.demand_fills += 1
        return False

    # ------------------------------------------------------------------
    # inspection / bookkeeping
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        """Total demand accesses so far."""
        return self.hits + self.misses

    @property
    def fills(self) -> int:
        """Total line fills: demand-miss installs plus prefetch installs."""
        return self.demand_fills + self.prefetch_fills

    @property
    def miss_rate(self) -> float:
        """Miss rate over demand accesses (0.0 when none occurred)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def set_contents(self, index: int) -> Tuple[int, ...]:
        """Blocks of a set, MRU first."""
        if not 0 <= index < self.config.num_sets:
            raise SimulationError(
                f"set index {index} out of range (num_sets="
                f"{self.config.num_sets})"
            )
        return tuple(self._sets.get(index, ()))

    def cached_blocks(self) -> Tuple[int, ...]:
        """All blocks currently cached, sorted (the paper's ``B(c)``)."""
        blocks: List[int] = []
        for line in self._sets.values():
            blocks.extend(line)
        return tuple(sorted(blocks))

    def age_of(self, block: int) -> Optional[int]:
        """LRU age of a block in its set (0 = MRU), or ``None`` if absent."""
        index = self.config.set_index(block)
        line = self._sets.get(index, [])
        if block in line:
            return line.index(block)
        return None

    def reset_counters(self) -> None:
        """Zero the hit/miss/fill counters, keeping the cache contents."""
        self.hits = 0
        self.misses = 0
        self.demand_fills = 0
        self.prefetch_fills = 0

    def flush(self) -> None:
        """Invalidate the whole cache and reset counters."""
        self._sets.clear()
        self.reset_counters()

    def clone(self) -> "ConcreteCache":
        """Deep copy (state and counters)."""
        other = ConcreteCache(self.config)
        other._sets = {k: list(v) for k, v in self._sets.items()}
        other.hits = self.hits
        other.misses = self.misses
        other.demand_fills = self.demand_fills
        other.prefetch_fills = self.prefetch_fills
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ConcreteCache {self.config.label()} hits={self.hits} "
            f"misses={self.misses}>"
        )
