"""Vectorized abstract-domain kernel (dense numpy age vectors).

The pure-python must/may/persistence domains of
:mod:`repro.cache.abstract` and :mod:`repro.cache.persistence` represent
one cache set as per-age block sets.  That representation is the
*oracle*: verified against the concrete LRU semantics by
``tests/test_cache_differential.py`` and deliberately written for
auditability, not speed.  This module is the fast path: the same
domains re-implemented over **dense age vectors**, selected with
``REPRO_CACHE_KERNEL=vectorized`` (or ``--kernel``/pipeline options) and
proven bit-identical to the oracle by the differential test layer.

Representation
--------------

A state is an ``int8`` vector over a contiguous *block universe*
``[base_block, base_block + width)``; column ``c`` holds the age bound
of memory block ``base_block + c``:

* **must / may** — ages ``0 .. assoc-1``; the value ``assoc`` means
  *absent*.  With that encoding the classical domain operations become
  single array expressions:

  - LRU update on an access to column ``j``: every block in ``j``'s
    cache set with age ``< row[j]`` ages by one, then ``row[j] = 0``.
    A miss (``row[j] == assoc``) ages every present block and pushes
    age ``assoc-1`` blocks to ``assoc`` — i.e. out of the state —
    with no special case.
  - must join = ``np.maximum`` (intersection of contents, maximal age:
    *absent* is the additive top), may join = ``np.minimum`` (union,
    minimal age).

* **persistence** — ages ``0 .. assoc`` with ``assoc`` the sticky
  evicted-⊤ and ``-1`` for ⊥ (never loaded).  Join = ``np.maximum``
  (⊥ loses against any real bound, exactly the oracle's
  present-in-one-side rule).

Because a cache set's columns are exactly ``c ≡ block (mod num_sets)``,
the set of an access is a *strided view* — no gather, no index arrays.
All primitives accept whole batches (any leading shape): one call
updates or joins every state of a batch of VIVU contexts at once.

Fixpoint
--------

:func:`propagate_kernel` replays :func:`repro.cache.classify.propagate`
on a :class:`KernelSchedule` — the ACFG compiled into maximal
single-entry chain *segments* (a basic-block instance is one chain, and
chains extend through straight-line control flow).  Per sweep a segment
is one unit of work: its in-state row is joined from its predecessors,
then either looked up in a content-keyed **segment memo** (the whole
``(k × width)`` in/out matrices of the chain come back as one memcpy)
or replayed with the dense primitives.  Convergence uses the same
monotone-fixpoint argument as the oracle: both iterate the identical
transfer equations from the identical initial state, so they converge
to the identical least fixpoint, state for state.

The result is a :class:`DenseDataflowResult` — a drop-in
:class:`~repro.cache.classify.DataflowResult` whose per-vertex states
materialize lazily into ordinary oracle states (so every downstream
consumer, and the hash-consing interner, sees values indistinguishable
from a python-kernel run), plus the dense matrices themselves for
warm-started delta re-analysis and the vectorized classifier
(:func:`classify_references_dense`).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.abstract import MayState, MustState
from repro.cache.classify import CLASSIFICATION_LAYERS, DataflowResult
from repro.cache.config import CacheConfig
from repro.cache.persistence import PersistenceState
from repro.errors import AnalysisError
from repro.program.acfg import ACFG

#: Environment variable selecting the kernel implementation.
KERNEL_ENV = "REPRO_CACHE_KERNEL"

#: Supported kernel names.
KERNELS = ("python", "vectorized")

#: Dense domain names (must match the pipeline's domain keys).
DOMAINS = ("must", "may", "persistence")


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """The effective kernel name: explicit argument, else the
    :data:`KERNEL_ENV` environment variable, else ``"vectorized"``.

    The dense kernel has been the fabric default since PR 7 and is the
    global default now; ``python`` remains selectable (``--kernel``,
    ``REPRO_CACHE_KERNEL``) and is the oracle the differential suites
    compare against.
    """
    chosen = kernel if kernel is not None else os.environ.get(KERNEL_ENV)
    if chosen is None or chosen == "":
        return "vectorized"
    if chosen not in KERNELS:
        raise AnalysisError(
            f"unknown cache kernel {chosen!r}; expected one of {KERNELS}"
        )
    return chosen


# ----------------------------------------------------------------------
# block universe
# ----------------------------------------------------------------------
class BlockUniverse:
    """The contiguous memory-block range a dense state vector covers.

    Column ``c`` stands for memory block ``base_block + c``.  The
    universe is sized with headroom so that the block-id shifts caused
    by prefetch insertions (4 bytes each) rarely force a rebuild; when
    they do, the pipeline rebuilds the universe and clears its segment
    memos (dense rows of different widths are incomparable).
    """

    __slots__ = ("config", "base_block", "width")

    def __init__(self, config: CacheConfig, base_block: int, width: int):
        if width <= 0:
            raise AnalysisError(f"universe width must be positive, got {width}")
        self.config = config
        self.base_block = base_block
        self.width = width

    def covers(self, block: int) -> bool:
        """Whether ``block`` has a column in this universe."""
        return self.base_block <= block < self.base_block + self.width

    def column(self, block: int) -> int:
        """Column index of a memory block."""
        if not self.covers(block):
            raise AnalysisError(
                f"block {block} outside universe "
                f"[{self.base_block}, {self.base_block + self.width})"
            )
        return block - self.base_block

    def block(self, column: int) -> int:
        """Memory block id of a column."""
        return self.base_block + column

    @classmethod
    def for_acfg(cls, acfg: ACFG, config: CacheConfig,
                 headroom: int = 0) -> "BlockUniverse":
        """A universe covering every block an ACFG references.

        ``headroom`` extra columns absorb the upward block-id drift of
        later candidate programs (each insertion shifts addresses by
        one instruction).
        """
        # Scans the ACFG's per-rid block arrays directly: this probe
        # runs once per candidate program, so accessor-call overhead
        # matters.
        blocks = [b for b in acfg._ref_block if b is not None]
        blocks += [b for b in acfg._target_block if b is not None]
        if not blocks:
            # A program with no references still needs a 1-wide universe
            # so the matrices are well-formed.
            return cls(config, 0, 1 + max(headroom, 0))
        lo = min(blocks)
        hi = max(blocks)
        return cls(config, lo, hi - lo + 1 + max(headroom, 0))


# ----------------------------------------------------------------------
# batched domain primitives
# ----------------------------------------------------------------------
# All primitives operate in place on ``rows`` — an int8 array whose last
# axis is the universe width; any leading batch shape is allowed, so one
# call transforms a whole batch of states (e.g. every VIVU context of a
# block) at once.

def lru_update(rows: np.ndarray, col: int, num_sets: int) -> None:
    """Must/may LRU update for an access to column ``col`` (in place).

    Blocks of the accessed set younger than the accessed block age by
    one; the accessed block becomes age 0.  With absent encoded as
    ``assoc`` this covers hit, miss and eviction uniformly.
    """
    sub = rows[..., col % num_sets::num_sets]
    h = rows[..., col:col + 1]
    np.add(sub, sub < h, out=sub)
    rows[..., col] = 0


def must_join(a: np.ndarray, b: np.ndarray,
              out: Optional[np.ndarray] = None) -> np.ndarray:
    """Must join: intersection of contents, maximal ages."""
    return np.maximum(a, b, out=out)


def may_join(a: np.ndarray, b: np.ndarray,
             out: Optional[np.ndarray] = None) -> np.ndarray:
    """May join: union of contents, minimal ages."""
    return np.minimum(a, b, out=out)


def must_unknown(rows: np.ndarray, associativity: int) -> None:
    """Must transfer for a statically-unknown access (in place): the
    guaranteed contents of *every* set age by one position."""
    np.add(rows, rows < associativity, out=rows)


def may_unknown(rows: np.ndarray) -> None:
    """May transfer for an unknown access: the identity (aging a lower
    bound could wrongly prove an always-miss)."""


def persistence_update(rows: np.ndarray, col: int, num_sets: int,
                       top: int) -> None:
    """Persistence update (in place): LRU aging with sticky ⊤.

    ⊥ (-1) blocks never age — absence means "never loaded", which an
    access to another block cannot endanger — and an absent accessed
    block behaves like the oldest (ages everything below ⊤).
    """
    sub = rows[..., col % num_sets::num_sets]
    h = rows[..., col:col + 1]
    h_eff = np.where(h < 0, np.int8(top), h)
    np.add(sub, (sub >= 0) & (sub < h_eff), out=sub)
    rows[..., col] = 0


def persistence_join(a: np.ndarray, b: np.ndarray,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
    """Persistence join: pointwise maximal age bound, ⊥ (-1) losing
    against any real bound."""
    return np.maximum(a, b, out=out)


def persistence_unknown(rows: np.ndarray, top: int) -> None:
    """Persistence transfer for an unknown access (in place): every
    tracked block's bound grows by one, saturating at the sticky ⊤."""
    np.add(rows, (rows >= 0) & (rows < top), out=rows)


class DenseDomain:
    """One abstract domain's dense encoding: initial value, join,
    update and unknown-access transfer over int8 rows."""

    __slots__ = ("name", "config", "initial_value", "join")

    def __init__(self, name: str, config: CacheConfig):
        if name not in DOMAINS:
            raise AnalysisError(f"unknown abstract domain {name!r}")
        self.name = name
        self.config = config
        assoc = config.associativity
        if name == "persistence":
            self.initial_value = -1
            self.join = persistence_join
        else:
            self.initial_value = assoc
            self.join = must_join if name == "must" else may_join

    def initial_row(self, width: int) -> np.ndarray:
        """The all-⊥ (must/may: all-absent) state as a dense row."""
        return np.full(width, self.initial_value, dtype=np.int8)

    def update(self, rows: np.ndarray, col: int) -> None:
        """Apply one access (in place, batched)."""
        if self.name == "persistence":
            persistence_update(rows, col, self.config.num_sets,
                               self.config.associativity)
        else:
            lru_update(rows, col, self.config.num_sets)

    def unknown(self, rows: np.ndarray) -> None:
        """Apply one statically-unknown access (in place, batched)."""
        if self.name == "must":
            must_unknown(rows, self.config.associativity)
        elif self.name == "persistence":
            persistence_unknown(rows, self.config.associativity)
        # may: identity


# ----------------------------------------------------------------------
# state conversion (dense row <-> oracle state objects)
# ----------------------------------------------------------------------
def state_to_row(state, universe: BlockUniverse) -> np.ndarray:
    """Encode an oracle state as a dense row of this universe."""
    config = universe.config
    if isinstance(state, PersistenceState):
        row = np.full(universe.width, -1, dtype=np.int8)
        for set_index in range(config.num_sets):
            for block, age in state.ages(set_index).items():
                row[universe.column(block)] = age
        return row
    if not isinstance(state, (MustState, MayState)):
        raise AnalysisError(
            f"cannot encode {type(state).__name__} as a dense row"
        )
    row = np.full(universe.width, config.associativity, dtype=np.int8)
    for set_index in state.touched_sets():
        for age, entry in enumerate(state.lines(set_index)):
            for block in entry:
                row[universe.column(block)] = age
    return row


def row_to_state(domain: str, row: np.ndarray, universe: BlockUniverse):
    """Decode a dense row into the equivalent oracle state object.

    The result is a plain :class:`MustState`/:class:`MayState`/
    :class:`PersistenceState` in canonical form, so it compares equal
    to — and interns with — states the python kernel produces.
    """
    config = universe.config
    num_sets = config.num_sets
    if domain == "persistence":
        present = np.nonzero(row >= 0)[0]
        pairs: Dict[int, List[Tuple[int, int]]] = {}
        for col in present.tolist():
            # Columns ascend, so per-set pair lists come out sorted by
            # block — already the canonical tuple order.
            block = universe.block(col)
            pairs.setdefault(block % num_sets, []).append(
                (block, int(row[col]))
            )
        return PersistenceState._make(
            config, {index: tuple(items) for index, items in pairs.items()}
        )
    assoc = config.associativity
    present = np.nonzero(row < assoc)[0]
    lines: Dict[int, List[set]] = {}
    for col in present.tolist():
        block = universe.block(col)
        per_set = lines.get(block % num_sets)
        if per_set is None:
            per_set = [set() for _ in range(assoc)]
            lines[block % num_sets] = per_set
        per_set[int(row[col])].add(block)
    sets_frozen = {
        index: tuple(frozenset(entry) for entry in per_set)
        for index, per_set in lines.items()
    }
    cls = MustState if domain == "must" else MayState
    return cls._make(config, sets_frozen)


# ----------------------------------------------------------------------
# schedule compilation
# ----------------------------------------------------------------------
#: Access op marker for a statically-unknown address (mirrors
#: :data:`repro.cache.classify.UNKNOWN_ACCESS` at the column level).
UNKNOWN_COL = -1


#: Interning table for segment access sequences: identical op tuples —
#: from any schedule, ever — map to the same small integer, so memo keys
#: hash in O(1) instead of re-hashing a nested tuple per probe, while
#: distinct sequences can never collide (the id *is* the content).
_OPS_INTERN: Dict[tuple, int] = {}


class SegmentStep:
    """One schedule step: a single-entry chain of vertices.

    Attributes:
        start/end: Contiguous rid range ``[start, end)`` of the chain.
        preds: Forward predecessors of the first vertex.
        back_srcs: Back-edge source rids targeting the first vertex.
        ops: Per-vertex access column tuples (``()`` = no access).
        ops_key: Interned id of the access sequence — segment-memo
            entries are shared between schedules (e.g. across candidate
            ACFGs) whenever the replayed work is identical.
    """

    __slots__ = ("index", "start", "end", "preds", "back_srcs", "ops",
                 "ops_key")

    def __init__(self, index: int, start: int, end: int,
                 preds: Tuple[int, ...], back_srcs: Tuple[int, ...],
                 ops: List[Tuple[int, ...]]):
        self.index = index
        self.start = start
        self.end = end
        self.preds = preds
        self.back_srcs = back_srcs
        self.ops = ops
        key = tuple(ops)
        self.ops_key = _OPS_INTERN.setdefault(key, len(_OPS_INTERN))


#: Chain-length cap.  Chunking long straight-line chains makes the
#: segment memo fine-grained enough to catch cross-candidate recurrence:
#: when the optimizer re-evaluates a site on a slightly mutated program,
#: the far-away chunks see the same ``(ops, in-state)`` pairs as the
#: previous iteration and replay from the memo instead of access by
#: access — the dense analogue of the python kernel's per-state
#: transfer cache.
MAX_SEGMENT_LEN = 32


class KernelSchedule:
    """An ACFG compiled for the dense fixpoint engine.

    Chains extend while a vertex is the unique successor of its unique
    predecessor and no back edge targets it, capped at
    :data:`MAX_SEGMENT_LEN` vertices.  JOIN vertices and branch/merge
    points start new segments.  The per-vertex plan matches
    :func:`repro.cache.classify.propagate`'s default instruction-fetch
    plan (own block, then a prefetch's target, locked blocks skipped).
    """

    __slots__ = ("acfg", "universe", "steps", "step_of", "source",
                 "locked_blocks", "ref_rids", "ref_cols", "ref_locked")

    def __init__(self, acfg: ACFG, universe: BlockUniverse,
                 locked_blocks: frozenset):
        self.acfg = acfg
        self.universe = universe
        self.source = acfg.source
        self.locked_blocks = locked_blocks
        n = len(acfg.vertices)

        # Compiled once per candidate program, so this reads the ACFG's
        # per-rid arrays directly instead of going through accessors and
        # only visits REF vertices.  The range check doubles as the
        # universe-coverage probe: callers compile optimistically
        # against their live universe and rebuild it when this raises.
        base = universe.base_block
        width = universe.width
        ref_block = acfg._ref_block
        target_block = acfg._target_block
        plan: List[Tuple[int, ...]] = [()] * n
        ref_rids: List[int] = []
        ref_cols: List[int] = []
        ref_locked: List[bool] = []
        for vertex in acfg.ref_vertices():
            rid = vertex.rid
            own = ref_block[rid]
            col = own - base
            if not 0 <= col < width:
                raise AnalysisError(
                    f"block {own} outside universe [{base}, {base + width})"
                )
            ref_rids.append(rid)
            ref_cols.append(col)
            if locked_blocks:
                locked = own in locked_blocks
                ref_locked.append(locked)
                ops = () if locked else (col,)
            else:
                ops = (col,)
            target = target_block[rid]
            if target is not None and target not in locked_blocks:
                tcol = target - base
                if not 0 <= tcol < width:
                    raise AnalysisError(
                        f"block {target} outside universe "
                        f"[{base}, {base + width})"
                    )
                ops = ops + (tcol,)
            plan[rid] = ops
        # Classification gather arrays: every reference's rid and
        # own-block column, precomputed once per structure so
        # classify_references_dense is pure numpy gathers.
        self.ref_rids = np.asarray(ref_rids, dtype=np.int64)
        self.ref_cols = np.asarray(ref_cols, dtype=np.int64)
        self.ref_locked = (
            np.asarray(ref_locked, dtype=bool) if locked_blocks else None
        )

        back_targets = set()
        back_by_target: Dict[int, List[int]] = {}
        for src, dst in acfg.back_edges:
            back_targets.add(dst)
            back_by_target.setdefault(dst, []).append(src)

        pred = acfg._pred
        succ = acfg._succ
        steps: List[SegmentStep] = []
        step_of: List[int] = [0] * n
        rid = 0
        while rid < n:
            start = rid
            prev = rid
            rid += 1
            while (
                rid < n
                and rid - start < MAX_SEGMENT_LEN
                and rid not in back_targets
            ):
                p = pred[rid]
                if len(p) != 1 or p[0] != prev or len(succ[prev]) != 1:
                    break
                prev = rid
                rid += 1
            index = len(steps)
            steps.append(SegmentStep(
                index=index,
                start=start,
                end=rid,
                preds=tuple(pred[start]),
                back_srcs=tuple(back_by_target.get(start, ())),
                ops=plan[start:rid],
            ))
            step_of[start:rid] = [index] * (rid - start)
        self.steps = steps
        self.step_of = step_of


class SegmentMemo:
    """Content-keyed memo of replayed segments.

    Key: ``(domain batch, ops id, in-row bytes)``; value: the chain's
    dense *out* matrix only — within a chain, vertex ``k``'s in-state is
    vertex ``k-1``'s out-state, so the in side is reconstructed from the
    key's in-row plus the stored outs.  Entries transfer between
    schedules because the key carries the access sequence itself, not
    the segment identity.  A row-count cap bounds memory; overflow
    clears the table (correctness never depends on residency).

    ``stats`` may be any object with integer ``kernel_segment_hits`` /
    ``kernel_segment_misses`` / ``invalidations`` attributes (the
    pipeline's :class:`~repro.analysis.pipeline.PipelineStats`); counts
    are mirrored into it.
    """

    __slots__ = ("max_rows", "rows", "hits", "misses", "clears", "stats",
                 "_table")

    def __init__(self, max_rows: int = 400_000, stats=None):
        self.max_rows = max_rows
        self.rows = 0
        self.hits = 0
        self.misses = 0
        self.clears = 0
        self.stats = stats
        self._table: Dict[Tuple[tuple, int, bytes], np.ndarray] = {}

    def get(self, key: Tuple[tuple, int, bytes]):
        found = self._table.get(key)
        if found is not None:
            self.hits += 1
            if self.stats is not None:
                self.stats.kernel_segment_hits += 1
        return found

    def put(self, key: Tuple[tuple, int, bytes],
            seg_out: np.ndarray) -> None:
        self.misses += 1
        if self.stats is not None:
            self.stats.kernel_segment_misses += 1
        self._table[key] = seg_out
        # Count dense rows (vertices × domains), not entries, so the cap
        # tracks actual memory.
        self.rows += seg_out.size // (seg_out.shape[-1] or 1)
        if self.rows > self.max_rows:
            self.clear()
            if self.stats is not None:
                self.stats.invalidations += 1

    def clear(self) -> None:
        if self._table:
            self.clears += 1
        self._table.clear()
        self.rows = 0


# ----------------------------------------------------------------------
# dense dataflow result
# ----------------------------------------------------------------------
class _LazyStates(Sequence):
    """Per-rid oracle states materialized on demand from dense rows."""

    __slots__ = ("_dense", "_reachable", "_domain", "_universe", "_cache")

    def __init__(self, dense: np.ndarray, reachable: np.ndarray,
                 domain: str, universe: BlockUniverse):
        self._dense = dense
        self._reachable = reachable
        self._domain = domain
        self._universe = universe
        self._cache: Dict[int, object] = {}

    def __len__(self) -> int:
        return len(self._dense)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not self._reachable[index]:
            return None
        found = self._cache.get(index)
        if found is None:
            found = row_to_state(
                self._domain, self._dense[index], self._universe
            )
            self._cache[index] = found
        return found


class DenseDataflowResult(DataflowResult):
    """A :class:`DataflowResult` carrying its dense matrices.

    ``in_states``/``out_states`` are lazy: indexing materializes the
    oracle state for that vertex (and ``None`` for vertices the
    analysis never reached, like the python kernel).  The matrices
    themselves feed warm-started re-analysis and the vectorized
    classifier without ever materializing a state object.
    """

    is_dense = True

    def __init__(self, universe: BlockUniverse, domain: str,
                 dense_in: np.ndarray, dense_out: np.ndarray,
                 reachable: np.ndarray, passes: int):
        self.universe = universe
        self.domain = domain
        self.dense_in = dense_in
        self.dense_out = dense_out
        self.reachable = reachable
        super().__init__(
            in_states=_LazyStates(dense_in, reachable, domain, universe),
            out_states=_LazyStates(dense_out, reachable, domain, universe),
            passes=passes,
        )


# ----------------------------------------------------------------------
# the dense fixpoint
# ----------------------------------------------------------------------
#: Hard cap on fixpoint sweeps, matching the python kernel's bound.
MAX_SWEEPS = 64

#: Canonical stacking order of a batched run.  Max-join domains (must,
#: persistence) come first so joins and unknown-access transfers apply
#: to contiguous row slices; may (min-join, identity unknown) is last.
BATCH_ORDER = ("must", "persistence", "may")


def propagate_kernel_batch(
    schedule: KernelSchedule,
    domains: Sequence[str],
    memo: Optional[SegmentMemo] = None,
    warm: Optional[Tuple[int, Dict[str, "DenseDataflowResult"]]] = None,
) -> Dict[str, "DenseDataflowResult"]:
    """Run several abstract domains over a compiled schedule at once.

    The dense counterpart of :func:`repro.cache.classify.propagate`,
    batched: one topological walk carries a stacked ``(domains ×
    width)`` state, so every join, access and memo probe is paid once
    for the whole batch instead of once per domain.  The batching is
    exact because the three domains share one transfer shape:

    * the LRU access update is the *same formula* for all of them —
      on the uint8 reinterpretation of the age matrix,
      ``sub += (sub < h) & (sub < top)`` with ``h`` the accessed block's
      stored age.  Persistence ⊥ (-1) reads as 255: as ``h`` it bounds
      nothing beyond the ``< top`` conjunct (⊥ behaves as the oldest
      line), as an aged entry it fails ``< top`` and stays ⊥.  Must/may
      rows are never negative and an absent block already carries the
      aging bound ``assoc``, so the formula degrades to the plain LRU
      update there;
    * must and persistence both join by ``np.maximum``; may joins by
      ``np.minimum`` on its own row slice.

    Transfer equations and initial states match the python kernel's, so
    the converged least fixpoint is identical state for state (the
    sweep *count* may differ; no consumer reads it as a semantic
    value).

    Args:
        schedule: Compiled ACFG (see :class:`KernelSchedule`).
        domains: Subset of ``("must", "may", "persistence")``.
        memo: Optional shared :class:`SegmentMemo`.
        warm: Optional ``(boundary, bases)`` warm start with one base
            :class:`DenseDataflowResult` per requested domain: rows
            below ``boundary`` are copied from the bases and segments
            entirely below it are never replayed.  Sound under the
            pipeline's divergence-boundary closure, exactly like the
            python kernel's ``warm`` parameter.  Ignored unless every
            domain has a base on the same universe.
    """
    universe = schedule.universe
    config = universe.config
    order = tuple(name for name in BATCH_ORDER if name in domains)
    if len(order) != len(set(domains)) or not order:
        raise AnalysisError(f"unknown or empty domain batch {domains!r}")
    depth = len(order)
    num_max = depth - (1 if "may" in order else 0)
    assoc = config.associativity
    # The update runs on a uint8 view: persistence ⊥ (-1) reads as 255,
    # which loses every `< h` comparison exactly as ⊥ should, and the
    # `< top` conjunct reproduces the ⊥-as-oldest aging bound (see
    # docstring above).
    topu = np.uint8(assoc)
    num_sets = config.num_sets
    n = len(schedule.acfg.vertices)
    width = universe.width

    dense_in = np.empty((n, depth, width), dtype=np.int8)
    dense_out = np.empty((n, depth, width), dtype=np.int8)
    reachable = np.zeros(n, dtype=bool)

    initial = np.empty((depth, width), dtype=np.int8)
    for i, name in enumerate(order):
        initial[i] = -1 if name == "persistence" else assoc

    boundary = 0
    if warm is not None:
        warm_boundary, bases = warm
        usable = 0 < warm_boundary <= n
        if usable:
            for name in order:
                found = bases.get(name)
                if (
                    found is None
                    or found.universe is not universe
                    or len(found.dense_in) < warm_boundary
                ):
                    usable = False
                    break
        if usable:
            boundary = warm_boundary
            for i, name in enumerate(order):
                found = bases[name]
                dense_in[:boundary, i, :] = found.dense_in[:boundary]
                dense_out[:boundary, i, :] = found.dense_out[:boundary]
            reachable[:boundary] = bases[order[0]].reachable[:boundary]

    steps = schedule.steps
    step_of = schedule.step_of
    num_steps = len(steps)
    changed = [True] * num_steps
    last_in: List[Optional[bytes]] = [None] * num_steps
    # Segments fully below the warm boundary can never re-enter the
    # sweep: the pipeline's closure guarantees their inputs are below
    # the boundary too, and those never change.
    first_step = step_of[boundary] if boundary < n else num_steps
    for index in range(first_step):
        changed[index] = False

    source = schedule.source
    has_may = num_max < depth

    for sweep in range(1, MAX_SWEEPS + 1):
        any_changed = False
        first_sweep = sweep == 1
        for step in steps[first_step:]:
            index = step.index
            if not first_sweep:
                need = any(changed[step_of[p]] for p in step.preds) or any(
                    changed[step_of[src]] for src in step.back_srcs
                )
                if not need:
                    continue
            start = step.start
            preds = step.preds
            if start == source:
                cur = initial.copy()
            elif len(preds) == 1 and not step.back_srcs:
                # Fast path: chain continuation / single forward pred.
                p = preds[0]
                if not reachable[p]:
                    continue  # unreachable this sweep
                cur = dense_out[p].copy()
            else:
                contributions = [p for p in preds if reachable[p]]
                for src in step.back_srcs:
                    if reachable[src]:
                        contributions.append(src)
                if not contributions:
                    continue  # unreachable this sweep (back edge pending)
                cur = dense_out[contributions[0]].copy()
                for extra in contributions[1:]:
                    other = dense_out[extra]
                    np.maximum(
                        cur[:num_max], other[:num_max], out=cur[:num_max]
                    )
                    if has_may:
                        np.minimum(
                            cur[num_max:], other[num_max:], out=cur[num_max:]
                        )
            in_bytes = cur.tobytes()
            if last_in[index] == in_bytes:
                changed[index] = False
                continue
            last_in[index] = in_bytes
            end = step.end
            key = (order, step.ops_key, in_bytes)
            hit = memo.get(key) if memo is not None else None
            if hit is not None:
                dense_in[start] = cur
                dense_out[start:end] = hit
                if end - start > 1:
                    dense_in[start + 1:end] = hit[:-1]
            else:
                dense_in[start] = cur
                seg_out = dense_out[start:end]
                curu = cur.view(np.uint8)
                for k, ops in enumerate(step.ops):
                    for col in ops:
                        if col == UNKNOWN_COL:
                            # may rows keep the identity transfer
                            sub = curu[:num_max]
                            np.add(sub, sub < topu, out=sub)
                        else:
                            sub = curu[:, col % num_sets::num_sets]
                            h = curu[:, col:col + 1]
                            np.add(sub, (sub < h) & (sub < topu), out=sub)
                            curu[:, col] = 0
                    seg_out[k] = cur
                if end - start > 1:
                    dense_in[start + 1:end] = seg_out[:-1]
                if memo is not None:
                    memo.put(key, seg_out.copy())
            reachable[start:end] = True
            changed[index] = True
            any_changed = True
        if not any_changed:
            return {
                name: DenseDataflowResult(
                    universe,
                    name,
                    dense_in[:, i, :],
                    dense_out[:, i, :],
                    reachable,
                    sweep,
                )
                for i, name in enumerate(order)
            }
    raise AnalysisError(
        f"dense abstract interpretation did not converge within "
        f"{MAX_SWEEPS} sweeps"
    )


def propagate_kernel(
    schedule: KernelSchedule,
    domain_name: str,
    memo: Optional[SegmentMemo] = None,
    warm: Optional[Tuple[int, "DenseDataflowResult"]] = None,
) -> "DenseDataflowResult":
    """Single-domain convenience wrapper of
    :func:`propagate_kernel_batch` (``warm`` takes the one domain's base
    result directly)."""
    batch_warm = None
    if warm is not None:
        batch_warm = (warm[0], {domain_name: warm[1]})
    return propagate_kernel_batch(
        schedule, (domain_name,), memo=memo, warm=batch_warm
    )[domain_name]


# ----------------------------------------------------------------------
# vectorized classification
# ----------------------------------------------------------------------
def classify_references_dense(
    acfg: ACFG,
    must: DenseDataflowResult,
    may: Optional[DenseDataflowResult],
    persistence: Optional[DenseDataflowResult],
    locked_blocks: Optional[frozenset] = None,
    schedule: Optional[KernelSchedule] = None,
) -> list:
    """Vectorized :func:`repro.cache.classify.classify_references`.

    Gathers every reference's own-block age from the dense in-state
    matrices in one shot and applies the same precedence:
    ``ALWAYS_HIT`` > ``PERSISTENT`` > ``ALWAYS_MISS`` >
    ``NOT_CLASSIFIED``.  Passing the ``schedule`` the results came from
    reuses its precompiled reference gather arrays; otherwise they are
    rebuilt from the ACFG.
    """
    universe = must.universe
    assoc = universe.config.associativity
    base = universe.base_block
    locked = locked_blocks or frozenset()
    if (
        schedule is not None
        and schedule.acfg is acfg
        and schedule.universe is universe
        and schedule.locked_blocks == locked
    ):
        rids = schedule.ref_rids
        cols = schedule.ref_cols
        locked_arr = schedule.ref_locked
    else:
        # Probe columns come from the ACFG directly; every own block is
        # covered by the universe by construction.
        ref_block = acfg._ref_block
        ref_rids = [
            rid for rid, block in enumerate(ref_block) if block is not None
        ]
        rids = np.asarray(ref_rids, dtype=np.int64)
        cols = np.asarray(
            [ref_block[rid] - base for rid in ref_rids], dtype=np.int64
        )
        locked_arr = (
            np.asarray(
                [ref_block[rid] in locked for rid in ref_rids], dtype=bool
            )
            if locked
            else None
        )

    must_hit = must.reachable[rids] & (must.dense_in[rids, cols] < assoc)
    if locked_arr is not None:
        must_hit |= locked_arr

    # Layered precedence via a small code table: start at NC, overwrite
    # with AM, then PS, then AH — later layers win.  The codes are the
    # indices of classify.CLASSIFICATION_LAYERS, the same layered order
    # the python classifier applies its overwrites in and the only
    # direction refinement promotions (analysis/refine.py) may move a
    # label — keep all three in sync.
    codes = np.zeros(len(rids), dtype=np.int8)
    if may is not None:
        may_reached = may.reachable[rids]
        codes[~may_reached | (may.dense_in[rids, cols] >= assoc)] = 1
    if persistence is not None:
        codes[
            persistence.reachable[rids]
            & (persistence.dense_in[rids, cols] < assoc)
        ] = 2
    codes[must_hit] = 3

    table = CLASSIFICATION_LAYERS
    classifications: list = [None] * len(acfg.vertices)
    for rid, code in zip(rids.tolist(), codes.tolist()):
        classifications[rid] = table[code]
    return classifications
