"""Cache substrate: configurations, concrete LRU model, abstract domains.

Typical use::

    from repro.cache import CacheConfig, TABLE2, ConcreteCache, analyze_cache

    config = TABLE2["k14"]            # (2, 16, 1024)
    cache = ConcreteCache(config)     # concrete simulation
    analysis = analyze_cache(acfg, config)   # static classification
"""

from repro.cache.abstract import (
    AbstractCacheState,
    MayState,
    MustState,
    SetLines,
    join_all,
)
from repro.cache.classify import (
    CacheAnalysis,
    Classification,
    DataflowResult,
    MAX_FIXPOINT_PASSES,
    UNKNOWN_ACCESS,
    analyze_cache,
    propagate,
)
from repro.cache.concrete import ConcreteCache
from repro.cache.persistence import PersistenceState
from repro.cache.config import (
    CAPACITIES,
    CacheConfig,
    TABLE2,
    config_id,
    configs_with_capacity,
)

__all__ = [
    "AbstractCacheState",
    "CAPACITIES",
    "CacheAnalysis",
    "CacheConfig",
    "Classification",
    "ConcreteCache",
    "DataflowResult",
    "MAX_FIXPOINT_PASSES",
    "MayState",
    "MustState",
    "PersistenceState",
    "SetLines",
    "UNKNOWN_ACCESS",
    "TABLE2",
    "analyze_cache",
    "config_id",
    "configs_with_capacity",
    "join_all",
    "propagate",
]
