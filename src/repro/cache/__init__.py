"""Cache substrate: configurations, concrete LRU model, abstract domains.

Typical use::

    from repro.cache import CacheConfig, TABLE2, ConcreteCache, analyze_cache

    config = TABLE2["k14"]            # (2, 16, 1024)
    cache = ConcreteCache(config)     # concrete simulation
    analysis = analyze_cache(acfg, config)   # static classification
"""

from repro.cache.abstract import (
    AbstractCacheState,
    MayState,
    MustState,
    SetLines,
    join_all,
)
from repro.cache.classify import (
    CacheAnalysis,
    Classification,
    DataflowResult,
    MAX_FIXPOINT_PASSES,
    UNKNOWN_ACCESS,
    analyze_cache,
    propagate,
)
from repro.cache.concrete import ConcreteCache
from repro.cache.kernel import (
    BlockUniverse,
    DenseDataflowResult,
    KERNEL_ENV,
    KernelSchedule,
    SegmentMemo,
    classify_references_dense,
    propagate_kernel,
    propagate_kernel_batch,
    resolve_kernel,
    row_to_state,
    state_to_row,
)
from repro.cache.persistence import PersistenceState
from repro.cache.config import (
    CAPACITIES,
    CacheConfig,
    TABLE2,
    config_id,
    configs_with_capacity,
)

__all__ = [
    "AbstractCacheState",
    "BlockUniverse",
    "CAPACITIES",
    "CacheAnalysis",
    "CacheConfig",
    "Classification",
    "ConcreteCache",
    "DataflowResult",
    "DenseDataflowResult",
    "KERNEL_ENV",
    "KernelSchedule",
    "MAX_FIXPOINT_PASSES",
    "MayState",
    "MustState",
    "PersistenceState",
    "SegmentMemo",
    "SetLines",
    "UNKNOWN_ACCESS",
    "TABLE2",
    "analyze_cache",
    "classify_references_dense",
    "config_id",
    "configs_with_capacity",
    "join_all",
    "propagate",
    "propagate_kernel",
    "propagate_kernel_batch",
    "resolve_kernel",
    "row_to_state",
    "state_to_row",
]
