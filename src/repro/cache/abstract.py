"""Abstract cache states and semantics (Section 3.1, after ref. [8]).

Implements the classical LRU must/may abstract domains of Ferdinand &
Wilhelm, which the paper reuses for its preliminary WCET analysis:

* **must** analysis — a block in the must state is in the cache in
  *every* concrete state reaching the program point; its age is an upper
  bound.  Membership before an access proves an *always-hit*.
* **may** analysis — a block absent from the may state is in the cache in
  *no* concrete state; its age is a lower bound.  Absence proves an
  *always-miss*.

States are immutable: updates and joins return new objects, which makes
the fixpoint engine and the optimizer's state snapshots trivially safe.

On a single execution path (no joins), the must state is *exact*: ages
equal concrete LRU positions and evictions are recovered precisely —
that is what makes Property 3 of the paper (replaced-block detection)
work on the optimizer's WCET-path states.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.errors import AnalysisError

#: One cache set in an abstract state: ``lines[i]`` is the set of memory
#: blocks with (must: maximal / may: minimal) age ``i``.
SetLines = Tuple[FrozenSet[int], ...]

#: Interned all-empty ``SetLines`` per associativity.  ``lines()`` is the
#: hottest query of the fixpoint engine and most lookups miss (states are
#: sparse), so handing out one shared tuple instead of allocating a fresh
#: ``assoc``-sized tuple per miss is a measurable win.
_EMPTY_LINES: Dict[int, SetLines] = {}


def empty_lines(associativity: int) -> SetLines:
    """The canonical all-empty per-age tuple for ``associativity`` ways."""
    cached = _EMPTY_LINES.get(associativity)
    if cached is None:
        cached = tuple(frozenset() for _ in range(associativity))
        _EMPTY_LINES[associativity] = cached
    return cached


class AbstractCacheState:
    """Common machinery of the must/may domains.

    Concrete subclasses implement :meth:`update` and :meth:`join`.
    Missing set indices represent "no blocks known" (must) / "no blocks
    possibly cached" (may) — the all-invalid state ``ĉ_I`` is simply the
    empty mapping.
    """

    __slots__ = ("config", "_sets", "_hash", "_ages")

    #: Domain identity for ``__eq__``/``__hash__``.  States compare (and
    #: hash-cons in the pipeline's :class:`TransferCache`) by *domain*,
    #: not concrete class, so states materialized by the vectorized
    #: kernel — possibly via subclasses — share one interning table with
    #: the pure-python oracle's states instead of double-populating it.
    domain_tag = ""

    def __init__(
        self,
        config: CacheConfig,
        sets: Optional[Dict[int, SetLines]] = None,
    ):
        self.config = config
        # Canonical form: never store an all-empty set entry.
        cleaned: Dict[int, SetLines] = {}
        for index, lines in (sets or {}).items():
            if any(lines):
                if len(lines) != config.associativity:
                    raise AnalysisError(
                        f"set {index}: expected {config.associativity} age "
                        f"positions, got {len(lines)}"
                    )
                cleaned[index] = lines
        self._sets = cleaned
        self._hash: Optional[int] = None
        self._ages: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def lines(self, set_index: int) -> SetLines:
        """Per-age block sets of one cache set."""
        found = self._sets.get(set_index)
        if found is None:
            return empty_lines(self.config.associativity)
        return found

    def age_of(self, block: int) -> Optional[int]:
        """Age bound of ``block`` in its set, or ``None`` when absent.

        Backed by a lazily built block -> age index: the optimizer and
        the classifier probe the same state for many different blocks,
        so one inversion pass beats a linear scan per query.
        """
        ages = self._ages
        if ages is None:
            ages = {}
            for lines in self._sets.values():
                for age, entry in enumerate(lines):
                    for member in entry:
                        ages[member] = age
            self._ages = ages
        return ages.get(block)

    def __contains__(self, block: int) -> bool:
        return self.age_of(block) is not None

    def blocks(self) -> FrozenSet[int]:
        """``B(ĉ)`` (Definition 9): every block present in the state."""
        out = set()
        for lines in self._sets.values():
            for entry in lines:
                out.update(entry)
        return frozenset(out)

    def blocks_in_set(self, set_index: int) -> FrozenSet[int]:
        """Blocks of a single cache set."""
        out = set()
        for entry in self.lines(set_index):
            out.update(entry)
        return frozenset(out)

    def touched_sets(self) -> Tuple[int, ...]:
        """Indices of sets with at least one known block."""
        return tuple(sorted(self._sets))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, AbstractCacheState):
            return NotImplemented
        return (
            self.domain_tag == other.domain_tag
            and self.config == other.config
            and self._sets == other._sets
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self.domain_tag, tuple(sorted(self._sets.items())))
            )
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for index in self.touched_sets():
            ages = [
                "{" + ",".join(map(str, sorted(entry))) + "}"
                for entry in self.lines(index)
            ]
            parts.append(f"s{index}:[{' '.join(ages)}]")
        return f"<{type(self).__name__} {' '.join(parts) or 'empty'}>"

    # ------------------------------------------------------------------
    # domain operations (subclass responsibility)
    # ------------------------------------------------------------------
    def update(self, block: int) -> "AbstractCacheState":
        """Abstract update function ``Û`` for an access to ``block``."""
        raise NotImplementedError

    def join(self, other: "AbstractCacheState") -> "AbstractCacheState":
        """Join function merging states at path convergence."""
        raise NotImplementedError

    def unknown_access(self) -> "AbstractCacheState":
        """Transfer for an access to a *statically unknown* address.

        Needed by the data-cache extension: an input-dependent access
        may touch any set, so each domain must account for the worst.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _replace_set(self, set_index: int, lines: SetLines) -> Dict[int, SetLines]:
        new_sets = dict(self._sets)
        if any(lines):
            new_sets[set_index] = lines
        else:
            new_sets.pop(set_index, None)
        return new_sets

    @classmethod
    def _make(cls, config: CacheConfig, sets: Dict[int, SetLines]):
        """Fast construction for internal use: ``sets`` must already be
        canonical (no all-empty entries, correct line counts)."""
        fresh = cls.__new__(cls)
        fresh.config = config
        fresh._sets = sets
        fresh._hash = None
        fresh._ages = None
        return fresh

    def evicted_by(self, block: int) -> FrozenSet[int]:
        """Blocks leaving the state when ``block`` is accessed.

        Property 3 of the paper: ``B(ĉ) - B(Û(ĉ, s))``.  Restricted to
        the accessed set, since no other set can change.
        """
        before = self.blocks_in_set(self.config.set_index(block))
        after = self.update(block).blocks_in_set(self.config.set_index(block))
        return before - after


class MustState(AbstractCacheState):
    """Must domain: guaranteed cache contents with maximal ages."""

    domain_tag = "must"

    def update(self, block: int) -> "MustState":
        """LRU must-update: ``block`` to age 0; younger blocks age."""
        config = self.config
        set_index = config.set_index(block)
        lines = self.lines(set_index)
        assoc = config.associativity
        age = None
        for idx, entry in enumerate(lines):
            if block in entry:
                age = idx
                break
        new_lines = [frozenset()] * assoc
        if age is None:
            # Miss (in the must view): every known block ages by one; the
            # oldest age class falls out of the guaranteed contents.
            new_lines[0] = frozenset((block,))
            for i in range(1, assoc):
                new_lines[i] = lines[i - 1]
        elif age == 0:
            new_lines = list(lines)
            new_lines[0] = lines[0] | {block}
        else:
            new_lines[0] = frozenset((block,))
            for i in range(1, age):
                new_lines[i] = lines[i - 1]
            new_lines[age] = lines[age - 1] | (lines[age] - {block})
            for i in range(age + 1, assoc):
                new_lines[i] = lines[i]
        return MustState._make(config, self._replace_set(set_index, tuple(new_lines)))

    def join(self, other: "AbstractCacheState") -> "MustState":
        """Must join: intersection of contents, maximum of ages."""
        if not isinstance(other, MustState) or other.config != self.config:
            raise AnalysisError("must-join requires MustState of same config")
        assoc = self.config.associativity
        new_sets: Dict[int, SetLines] = {}
        for index in set(self._sets) & set(other._sets):
            mine = self.lines(index)
            theirs = other.lines(index)
            my_age = _age_map(mine)
            their_age = _age_map(theirs)
            merged: list = [set() for _ in range(assoc)]
            for block, age_a in my_age.items():
                age_b = their_age.get(block)
                if age_b is not None:
                    merged[max(age_a, age_b)].add(block)
            new_sets[index] = tuple(frozenset(entry) for entry in merged)
        return MustState(self.config, new_sets)


    def unknown_access(self) -> "MustState":
        """Worst case: the unknown block lands in *any* set, so every
        set's guaranteed contents age by one position."""
        assoc = self.config.associativity
        new_sets: Dict[int, SetLines] = {}
        empty = frozenset()
        for index, lines in self._sets.items():
            shifted = (empty,) + lines[: assoc - 1]
            if any(shifted):
                new_sets[index] = shifted
        return MustState._make(self.config, new_sets)


class MayState(AbstractCacheState):
    """May domain: possible cache contents with minimal ages."""

    domain_tag = "may"

    def update(self, block: int) -> "MayState":
        """LRU may-update: minimal ages age only below the hit age."""
        config = self.config
        set_index = config.set_index(block)
        lines = self.lines(set_index)
        assoc = config.associativity
        age = None
        for idx, entry in enumerate(lines):
            if block in entry:
                age = idx
                break
        new_lines = [frozenset()] * assoc
        if age is None:
            # The access is a miss in every concrete state: all blocks
            # age; minimal-age (assoc-1) blocks may be evicted everywhere.
            new_lines[0] = frozenset((block,))
            for i in range(1, assoc):
                new_lines[i] = lines[i - 1]
        elif age == 0:
            new_lines = list(lines)
            new_lines[0] = lines[0] | {block}
        else:
            new_lines[0] = frozenset((block,))
            for i in range(1, age):
                new_lines[i] = lines[i - 1]
            new_lines[age] = lines[age - 1] | (lines[age] - {block})
            for i in range(age + 1, assoc):
                new_lines[i] = lines[i]
        return MayState._make(config, self._replace_set(set_index, tuple(new_lines)))

    def join(self, other: "AbstractCacheState") -> "MayState":
        """May join: union of contents, minimum of ages."""
        if not isinstance(other, MayState) or other.config != self.config:
            raise AnalysisError("may-join requires MayState of same config")
        assoc = self.config.associativity
        new_sets: Dict[int, SetLines] = {}
        for index in set(self._sets) | set(other._sets):
            my_age = _age_map(self.lines(index))
            their_age = _age_map(other.lines(index))
            merged: list = [set() for _ in range(assoc)]
            for block in set(my_age) | set(their_age):
                ages = [a for a in (my_age.get(block), their_age.get(block)) if a is not None]
                merged[min(ages)].add(block)
            new_sets[index] = tuple(frozenset(entry) for entry in merged)
        return MayState(self.config, new_sets)


    def unknown_access(self) -> "MayState":
        """An unknown access may hit anywhere or nowhere: the possible
        contents (with their minimal ages) are unchanged — aging any
        block's lower bound could wrongly prove an always-miss."""
        return self


def _age_map(lines: SetLines) -> Dict[int, int]:
    """Invert per-age sets into block -> age."""
    out: Dict[int, int] = {}
    for age, entry in enumerate(lines):
        for block in entry:
            out[block] = age
    return out


def join_all(states: Iterable[AbstractCacheState]) -> AbstractCacheState:
    """Fold :meth:`~AbstractCacheState.join` over one or more states."""
    iterator = iter(states)
    try:
        result = next(iterator)
    except StopIteration:
        raise AnalysisError("join_all requires at least one state") from None
    for state in iterator:
        result = result.join(state)
    return result
