"""VIVU contexts (virtual inlining & virtual unrolling).

The paper relies on the VIVU transformation of Martin/Alt/Wilhelm (used by
the classical WCET analysis it builds on, ref. [8]) to turn a cyclic CFG
into an acyclic abstract CFG:

* every loop is *virtually unrolled once*: each body instruction appears
  in a ``FIRST`` context (iteration 1) and a ``REST`` context (iterations
  2..bound, analysed collectively), and
* every function is *virtually inlined*: each body instruction appears
  once per call site.

A context is a tuple of :class:`ContextElement` from outermost to
innermost.  Contexts name ACFG vertices: the pair ``(instruction uid,
context)`` is stable across rebuilds, which is what lets the optimizer
resume its reverse walk after inserting a prefetch (insertion changes
vertex ids, not instruction identities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.program.cfg import ControlFlowGraph

#: Marker for the first loop iteration.
FIRST = "F"
#: Marker for all iterations after the first (2..bound, collectively).
REST = "R"
#: Marker kind for call-site inlining elements.
CALL = "C"


@dataclass(frozen=True)
class ContextElement:
    """One nesting level of a VIVU context.

    ``kind`` is :data:`FIRST`/:data:`REST` for loop unrolling elements (in
    which case ``name`` is the loop name) or :data:`CALL` for virtual
    inlining (``name`` is the call-site id).
    """

    kind: str
    name: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == CALL:
            return f"@{self.name}"
        return f"{self.name}.{self.kind}"


#: A full VIVU context: outermost element first.
Context = Tuple[ContextElement, ...]

#: The empty (top-level) context.
TOP: Context = ()


def enter_loop_first(ctx: Context, loop_name: str) -> Context:
    """Context for the first iteration of ``loop_name``."""
    return ctx + (ContextElement(FIRST, loop_name),)


def enter_loop_rest(ctx: Context, loop_name: str) -> Context:
    """Context for iterations 2..bound of ``loop_name``."""
    return ctx + (ContextElement(REST, loop_name),)


def enter_call(ctx: Context, site_id: str) -> Context:
    """Context for the body of a function inlined at ``site_id``."""
    return ctx + (ContextElement(CALL, site_id),)


def context_label(ctx: Context) -> str:
    """Human-readable rendering, e.g. ``"loop0.F/loop1.R"``."""
    if not ctx:
        return "<top>"
    return "/".join(str(el) for el in ctx)


def execution_multiplier(cfg: ControlFlowGraph, ctx: Context) -> int:
    """Worst-case executions of a vertex in ``ctx`` per execution of its
    outermost enclosing construct, assuming the vertex lies on the worst
    path.

    Each ``FIRST`` element contributes a factor 1, each ``REST`` element a
    factor ``bound - 1`` (iterations 2..bound), each call element 1.  The
    WCET solver multiplies this by the path-selection indicator to obtain
    the IPET count ``n^w``.
    """
    mult = 1
    for el in ctx:
        if el.kind == REST:
            mult *= cfg.loops[el.name].bound - 1
        # FIRST and CALL elements do not scale the count.
    return mult


def context_depth(ctx: Context) -> int:
    """Number of nesting elements in the context."""
    return len(ctx)
