"""Abstract instruction model.

The optimization in this library never inspects opcodes: it only needs to
know *where* each fetched item lives in the address space and how control
flows between items (see DESIGN.md, substitution table).  An
:class:`Instruction` therefore carries a kind, a byte size, and — once the
program has been laid out — an address assigned by
:mod:`repro.program.layout`.

Instruction identity matters: two instructions with equal fields are still
distinct program points.  Identity is provided by a per-program unique
``uid`` handed out by :class:`InstructionFactory`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class InstrKind(enum.Enum):
    """Classification of an abstract instruction.

    Only the distinctions that affect fetch behaviour or the optimizer are
    modelled:

    * ``NORMAL`` — any straight-line instruction (ALU, load, store...).
    * ``BRANCH`` — a conditional branch terminating a basic block.
    * ``JUMP`` — an unconditional control transfer.
    * ``CALL`` / ``RETURN`` — kept for provenance after virtual inlining.
    * ``PREFETCH`` — a software prefetch inserted by the optimizer; it is
      the only kind the optimizer ever adds, and stripping all of them must
      recover a prefetch-equivalent program (Definition 5 of the paper).
    """

    NORMAL = "normal"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RETURN = "return"
    PREFETCH = "prefetch"


#: Byte size of every abstract instruction.  The paper targets ARMv7 in ARM
#: state, where instructions are fixed 4-byte words; prefetch instructions
#: (e.g. ``PLI``) are the same size, which is what makes the relocation cost
#: (Eq. 8) non-trivial: inserting one shifts everything behind it by 4 bytes.
INSTRUCTION_SIZE = 4


@dataclass
class Instruction:
    """One abstract instruction (a memory *item* in the paper's terms).

    Attributes:
        uid: Program-unique identifier; defines identity and hashing.
        kind: The :class:`InstrKind`.
        size: Byte size (always :data:`INSTRUCTION_SIZE` in this model).
        label: Optional human-readable tag used in examples and debugging.
        prefetch_target: For instruction-cache ``PREFETCH`` instructions,
            the uid of the instruction whose memory block this prefetch
            loads.  ``None`` otherwise (including data prefetches).
        data_access: Optional data-memory access this instruction
            performs (load/store/data-prefetch) — the data-cache
            extension of :mod:`repro.data`.
    """

    uid: int
    kind: InstrKind = InstrKind.NORMAL
    size: int = INSTRUCTION_SIZE
    label: Optional[str] = None
    prefetch_target: Optional[int] = field(default=None)
    data_access: Optional[object] = field(default=None)

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return self.uid == other.uid

    @property
    def is_prefetch(self) -> bool:
        """True when this instruction is a software prefetch."""
        return self.kind is InstrKind.PREFETCH

    @property
    def is_control(self) -> bool:
        """True when this instruction may transfer control."""
        return self.kind in (
            InstrKind.BRANCH,
            InstrKind.JUMP,
            InstrKind.CALL,
            InstrKind.RETURN,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.label or f"i{self.uid}"
        if self.is_prefetch:
            return f"<pf#{self.uid}->{self.prefetch_target} {tag!r}>"
        return f"<{self.kind.value}#{self.uid} {tag!r}>"


class InstructionFactory:
    """Hands out :class:`Instruction` objects with unique uids.

    Each :class:`~repro.program.cfg.ControlFlowGraph` owns one factory so
    uids are unique within a program, including prefetches inserted later
    by the optimizer.
    """

    def __init__(self, start_uid: int = 0) -> None:
        self._next_uid = start_uid

    @property
    def next_uid(self) -> int:
        """The uid the next created instruction will receive."""
        return self._next_uid

    def make(
        self,
        kind: InstrKind = InstrKind.NORMAL,
        label: Optional[str] = None,
        prefetch_target: Optional[int] = None,
        data_access: Optional[object] = None,
    ) -> Instruction:
        """Create a fresh instruction of the given kind."""
        instr = Instruction(
            uid=self._next_uid,
            kind=kind,
            label=label,
            prefetch_target=prefetch_target,
            data_access=data_access,
        )
        self._next_uid += 1
        return instr

    def normal(self, label: Optional[str] = None) -> Instruction:
        """Create a ``NORMAL`` instruction."""
        return self.make(InstrKind.NORMAL, label)

    def branch(self, label: Optional[str] = None) -> Instruction:
        """Create a ``BRANCH`` instruction."""
        return self.make(InstrKind.BRANCH, label)

    def jump(self, label: Optional[str] = None) -> Instruction:
        """Create a ``JUMP`` instruction."""
        return self.make(InstrKind.JUMP, label)

    def prefetch(self, target_uid: int, label: Optional[str] = None) -> Instruction:
        """Create a ``PREFETCH`` instruction for the block holding ``target_uid``."""
        return self.make(InstrKind.PREFETCH, label, prefetch_target=target_uid)
