"""Abstract control-flow graph (Definitions 6 and 7 of the paper).

The ACFG is the per-reference, context-expanded, acyclic program
representation that both the classical cache analysis and the paper's
reverse-order optimizer operate on:

* one ``REF`` vertex per (instruction, VIVU context) pair — a *reference
  to a memory item*,
* explicit ``JOIN`` vertices wherever convergent execution paths meet
  (after conditionals/switches, at loop ``REST`` entries and loop exits),
  hosting the join functions of Section 4,
* polar ``SOURCE`` (●) and ``SINK`` (○) vertices.

Loops are unrolled once per the VIVU transformation: the body appears in
a ``FIRST`` and a ``REST`` instance; the ``REST`` back edge is *broken*
in the exported DAG but remembered in :attr:`ACFG.back_edges` so the
fixpoint cache analysis can close the loop (a ``REST`` instance stands
for every iteration after the first).

Vertices are created in topological order, so the vertex id (``rid``)
doubles as a topological index; the reverse walk of Algorithm 3 is simply
descending-rid iteration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ProgramModelError
from repro.program.cfg import ControlFlowGraph
from repro.program.instructions import Instruction
from repro.program.layout import AddressLayout, MemoryMap
from repro.program.structure import (
    BlockNode,
    CallNode,
    IfElseNode,
    LoopNode,
    SeqNode,
    StructureNode,
    SwitchNode,
)
from repro.program.vivu import (
    Context,
    TOP,
    context_label,
    enter_call,
    enter_loop_first,
    enter_loop_rest,
    execution_multiplier,
)


class VertexKind(enum.Enum):
    """Role of an ACFG vertex."""

    SOURCE = "source"
    SINK = "sink"
    REF = "ref"
    JOIN = "join"


@dataclass(slots=True)
class RefVertex:
    """One ACFG vertex.

    Attributes:
        rid: Vertex id == topological index.
        kind: Vertex role.
        instr: The referenced instruction (``None`` for non-REF vertices).
        context: VIVU context of the reference.
        block_name: Basic block holding ``instr`` (``None`` for non-REF).
        index_in_block: Position of ``instr`` within its block.
    """

    rid: int
    kind: VertexKind
    instr: Optional[Instruction] = None
    context: Context = TOP
    block_name: Optional[str] = None
    index_in_block: int = -1

    @property
    def is_ref(self) -> bool:
        """True for reference vertices (the only ones that touch memory)."""
        return self.kind is VertexKind.REF

    @property
    def is_prefetch(self) -> bool:
        """True when this vertex references a software prefetch."""
        return self.instr is not None and self.instr.is_prefetch

    def key(self) -> Tuple[int, Context]:
        """Rebuild-stable identity: (instruction uid, context)."""
        if self.instr is None:
            raise ProgramModelError(f"vertex {self.rid} has no instruction key")
        return (self.instr.uid, self.context)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is VertexKind.REF:
            return (
                f"<r{self.rid} {self.block_name}[{self.index_in_block}] "
                f"{context_label(self.context)}>"
            )
        return f"<{self.kind.value}{self.rid}>"


class ACFG:
    """The acyclic abstract control-flow graph of one program.

    Build with :func:`build_acfg`.  The graph is immutable once built;
    after the optimizer mutates the CFG it constructs a fresh ACFG.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        layout: AddressLayout,
        memory_map: MemoryMap,
    ):
        self.cfg = cfg
        self.layout = layout
        self.memory_map = memory_map
        self.vertices: List[RefVertex] = []
        self._succ: List[List[int]] = []
        self._pred: List[List[int]] = []
        #: Analysis-only loop-closing edges (REST exit -> REST-entry join).
        self.back_edges: List[Tuple[int, int]] = []
        self.source: int = -1
        self.sink: int = -1
        self._by_key: Dict[Tuple[int, Context], int] = {}
        #: Worst-case execution multiplier per vertex (context product).
        self.multiplier: List[int] = []
        #: Per-rid memory block of the vertex's own instruction
        #: (``None`` for non-REF vertices) — hot-path cache for
        #: :meth:`block_of`.
        self._ref_block: List[Optional[int]] = []
        #: Per-rid prefetch target block (``None`` unless a prefetch).
        self._target_block: List[Optional[int]] = []
        self._ref_list: Optional[List[RefVertex]] = None
        #: Context -> execution multiplier; contexts repeat per block
        #: instance, so memoizing saves a context walk per vertex.
        self._mult_cache: Dict[Context, int] = {}

    # ------------------------------------------------------------------
    # construction helpers (used by build_acfg)
    # ------------------------------------------------------------------
    def _new_vertex(
        self,
        kind: VertexKind,
        instr: Optional[Instruction],
        context: Context,
        block_name: Optional[str],
        index_in_block: int,
        preds: Sequence[int],
    ) -> int:
        rid = len(self.vertices)
        vertex = RefVertex(rid, kind, instr, context, block_name, index_in_block)
        self.vertices.append(vertex)
        self._succ.append([])
        self._pred.append([])
        mult = self._mult_cache.get(context)
        if mult is None:
            mult = execution_multiplier(self.cfg, context)
            self._mult_cache[context] = mult
        self.multiplier.append(mult)
        for pred in preds:
            self._succ[pred].append(rid)
            self._pred[rid].append(pred)
        if instr is not None:
            key = (instr.uid, context)
            if key in self._by_key:
                raise ProgramModelError(
                    f"duplicate ACFG vertex for instruction {instr.uid} in "
                    f"context {context_label(context)}"
                )
            self._by_key[key] = rid
            self._ref_block.append(self.memory_map.block_of(instr.uid))
            if instr.is_prefetch and instr.prefetch_target is not None:
                self._target_block.append(
                    self.memory_map.block_of(instr.prefetch_target)
                )
            else:
                self._target_block.append(None)
        else:
            self._ref_block.append(None)
            self._target_block.append(None)
        return rid

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.vertices)

    def _freeze(self) -> None:
        """Convert adjacency to tuples once construction is complete, so
        the hot accessors below can return them without copying."""
        self._succ = [tuple(s) for s in self._succ]  # type: ignore[misc]
        self._pred = [tuple(p) for p in self._pred]  # type: ignore[misc]

    def successors(self, rid: int) -> Sequence[int]:
        """Forward (DAG) successors of a vertex (do not mutate)."""
        succs = self._succ[rid]
        return succs if isinstance(succs, tuple) else tuple(succs)

    def predecessors(self, rid: int) -> Sequence[int]:
        """Forward (DAG) predecessors of a vertex (do not mutate)."""
        preds = self._pred[rid]
        return preds if isinstance(preds, tuple) else tuple(preds)

    def vertex(self, rid: int) -> RefVertex:
        """Vertex by id."""
        return self.vertices[rid]

    def by_key(self, uid: int, context: Context) -> Optional[int]:
        """Vertex id for (instruction uid, context), or ``None``."""
        return self._by_key.get((uid, context))

    def iter_topological(self) -> Iterator[RefVertex]:
        """Vertices in topological (construction) order."""
        return iter(self.vertices)

    def iter_reverse(self) -> Iterator[RefVertex]:
        """Vertices from sink to source — the order of Algorithm 3."""
        return reversed(self.vertices)

    def ref_vertices(self) -> List[RefVertex]:
        """Only the REF vertices, topological order (cached list)."""
        if self._ref_list is None:
            self._ref_list = [v for v in self.vertices if v.is_ref]
        return self._ref_list

    def block_of(self, rid: int) -> int:
        """``S(r)``: memory block id of a REF vertex's instruction."""
        block = self._ref_block[rid]
        if block is None:
            raise ProgramModelError(f"vertex {rid} references no memory item")
        return block

    def prefetch_target_block(self, rid: int) -> int:
        """Memory block an instruction-cache prefetch vertex loads."""
        target = self._target_block[rid]
        if target is None:
            raise ProgramModelError(f"vertex {rid} is not a prefetch")
        return target

    def target_block_or_none(self, rid: int) -> Optional[int]:
        """Like :meth:`prefetch_target_block` but ``None`` for non-
        prefetches and for *data* prefetches (which carry a data-access
        target instead of a code target)."""
        return self._target_block[rid]

    @property
    def ref_count(self) -> int:
        """Number of REF vertices (|R| in the paper's complexity terms)."""
        return sum(1 for v in self.vertices if v.is_ref)

    def validate(self) -> None:
        """Check DAG invariants: edges ascend rid, poles are correct."""
        if self.source != 0 or self.vertices[self.source].kind is not VertexKind.SOURCE:
            raise ProgramModelError("ACFG source must be vertex 0")
        if (
            self.sink != len(self.vertices) - 1
            or self.vertices[self.sink].kind is not VertexKind.SINK
        ):
            raise ProgramModelError("ACFG sink must be the last vertex")
        for rid, succs in enumerate(self._succ):
            for succ in succs:
                if succ <= rid:
                    raise ProgramModelError(
                        f"edge ({rid}, {succ}) violates topological order"
                    )
        for rid in range(1, len(self.vertices)):
            if not self._pred[rid]:
                raise ProgramModelError(f"vertex {rid} unreachable (no preds)")
        for src, dst in self.back_edges:
            if self.vertices[dst].kind is not VertexKind.JOIN:
                raise ProgramModelError(
                    f"back edge ({src}, {dst}) must target a JOIN vertex"
                )


def build_acfg(
    cfg: ControlFlowGraph,
    block_size: int,
    base_address: int = 0,
) -> ACFG:
    """Expand a structured CFG into its ACFG for a given memory block size.

    Performs the VIVU transformation: loops unrolled once (FIRST/REST
    instances, REST back edge recorded in :attr:`ACFG.back_edges`),
    function bodies inlined per call site.

    Args:
        cfg: The program (must carry its structure tree).
        block_size: Cache/memory block size in bytes (defines ``S(r)``).
        base_address: Base address for the layout.

    Returns:
        A validated :class:`ACFG`.
    """
    if cfg.structure is None:
        raise ProgramModelError("CFG has no structure tree; use ProgramBuilder")
    layout = AddressLayout(cfg, base_address)
    memory_map = MemoryMap(layout, block_size)
    acfg = ACFG(cfg, layout, memory_map)
    acfg.source = acfg._new_vertex(VertexKind.SOURCE, None, TOP, None, -1, ())

    exits = _expand(acfg, cfg.structure, TOP, [acfg.source])
    acfg.sink = acfg._new_vertex(VertexKind.SINK, None, TOP, None, -1, exits)
    acfg._freeze()
    acfg.validate()
    return acfg


def _expand_block(
    acfg: ACFG, block_name: str, ctx: Context, preds: List[int]
) -> List[int]:
    block = acfg.cfg.block(block_name)
    if not block.instructions:
        raise ProgramModelError(f"block {block_name!r} is empty")
    current = preds
    for idx, instr in enumerate(block.instructions):
        rid = acfg._new_vertex(
            VertexKind.REF, instr, ctx, block_name, idx, current
        )
        current = [rid]
    return current


def _join(acfg: ACFG, ctx: Context, preds: List[int]) -> List[int]:
    """Insert a JOIN vertex when paths converge (no-op for single pred)."""
    if len(preds) <= 1:
        return list(preds)
    rid = acfg._new_vertex(VertexKind.JOIN, None, ctx, None, -1, preds)
    return [rid]


def _expand(
    acfg: ACFG, node: StructureNode, ctx: Context, preds: List[int]
) -> List[int]:
    """Recursively expand ``node`` under context ``ctx``.

    ``preds`` are the vertex ids whose out-edges reach the node's first
    vertex; the return value is the list of exit vertex ids.
    """
    cfg = acfg.cfg
    if isinstance(node, BlockNode):
        return _expand_block(acfg, node.block_name, ctx, preds)
    if isinstance(node, SeqNode):
        current = preds
        for item in node.items:
            current = _expand(acfg, item, ctx, current)
        return current
    if isinstance(node, IfElseNode):
        cond_exits = _expand_block(acfg, node.cond_block, ctx, preds)
        then_exits = _expand(acfg, node.then_node, ctx, list(cond_exits))
        if node.else_node is not None:
            else_exits = _expand(acfg, node.else_node, ctx, list(cond_exits))
        else:
            else_exits = list(cond_exits)
        return _join(acfg, ctx, then_exits + else_exits)
    if isinstance(node, SwitchNode):
        sel_exits = _expand_block(acfg, node.selector_block, ctx, preds)
        all_exits: List[int] = []
        for case in node.cases:
            all_exits.extend(_expand(acfg, case, ctx, list(sel_exits)))
        return _join(acfg, ctx, all_exits)
    if isinstance(node, LoopNode):
        info = cfg.loops[node.loop_name]
        first_ctx = enter_loop_first(ctx, node.loop_name)
        first_exits = _expand(acfg, node.body, first_ctx, preds)
        if info.bound < 2:
            return first_exits
        rest_ctx = enter_loop_rest(ctx, node.loop_name)
        # REST entry join merges the first iteration's exit with the
        # (broken) back edge from the REST exit.
        entry_join = acfg._new_vertex(
            VertexKind.JOIN, None, rest_ctx, None, -1, first_exits
        )
        rest_exits = _expand(acfg, node.body, rest_ctx, [entry_join])
        for rexit in rest_exits:
            acfg.back_edges.append((rexit, entry_join))
        # After the loop, control may come from iteration 1 (if the
        # concrete trip count is 1) or from the REST instance.
        return _join(acfg, ctx, first_exits + rest_exits)
    if isinstance(node, CallNode):
        call_exits = _expand_block(acfg, node.call_block, ctx, preds)
        info = cfg.functions[node.function_name]
        body_ctx = enter_call(ctx, node.site_id)
        return _expand(acfg, info.structure, body_ctx, call_exits)
    raise ProgramModelError(f"unknown structure node {type(node).__name__}")
