"""DSL for constructing structured programs.

The :class:`ProgramBuilder` emits a :class:`~repro.program.cfg.ControlFlowGraph`
together with its structure tree, the way a compiler front-end would lower
structured C sources (the paper compiles the Mälardalen suite with GCC).

Example::

    b = ProgramBuilder("demo")
    b.code(4)                               # straight-line prologue work
    with b.loop(bound=10, sim_iterations=8):
        b.code(3)
        with b.if_else(taken_prob=0.25) as arms:
            with arms.then_():
                b.code(2)
            with arms.else_():
                b.code(5)
    b.code(1)
    cfg = b.build()

Modelling conventions (shared by every analysis in the library):

* every loop is bottom-tested; the builder appends a 2-instruction latch
  block (compare + branch) to each loop body,
* every conditional consumes one BRANCH instruction at the end of the
  current block, every switch one JUMP,
* each switch case ends with an implicit break JUMP,
* an entry block (2-instruction prologue) and an exit block (RETURN) wrap
  the main body,
* functions are laid out after the main body, each exactly once, and end
  with a RETURN instruction; calls append a CALL instruction.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProgramModelError
from repro.program.cfg import (
    BasicBlock,
    BranchProfile,
    ControlFlowGraph,
    FunctionInfo,
    LoopInfo,
)
from repro.program.instructions import InstructionFactory, InstrKind
from repro.program.structure import (
    BlockNode,
    CallNode,
    IfElseNode,
    LoopNode,
    SeqNode,
    StructureNode,
    SwitchNode,
)


def entry_block_of(node: StructureNode) -> str:
    """Name of the first block executed when control enters ``node``."""
    if isinstance(node, BlockNode):
        return node.block_name
    if isinstance(node, SeqNode):
        if not node.items:
            raise ProgramModelError("empty SeqNode has no entry block")
        return entry_block_of(node.items[0])
    if isinstance(node, IfElseNode):
        return node.cond_block
    if isinstance(node, LoopNode):
        return entry_block_of(node.body)
    if isinstance(node, SwitchNode):
        return node.selector_block
    if isinstance(node, CallNode):
        return node.call_block
    raise ProgramModelError(f"unknown structure node {type(node).__name__}")


def exit_blocks_of(node: StructureNode) -> Tuple[str, ...]:
    """Names of the blocks control may leave ``node`` from.

    For a :class:`CallNode` the exit is the call block itself: the callee
    returns to the continuation, so from the caller's perspective control
    resumes right after the call block.
    """
    if isinstance(node, BlockNode):
        return (node.block_name,)
    if isinstance(node, SeqNode):
        if not node.items:
            raise ProgramModelError("empty SeqNode has no exit blocks")
        return exit_blocks_of(node.items[-1])
    if isinstance(node, IfElseNode):
        exits = exit_blocks_of(node.then_node)
        if node.else_node is not None:
            exits = exits + exit_blocks_of(node.else_node)
        else:
            exits = exits + (node.cond_block,)
        return exits
    if isinstance(node, LoopNode):
        # The latch is always the last block of the body.
        return (exit_blocks_of(node.body)[-1],)
    if isinstance(node, SwitchNode):
        exits: Tuple[str, ...] = ()
        for case in node.cases:
            exits = exits + exit_blocks_of(case)
        return exits
    if isinstance(node, CallNode):
        return (node.call_block,)
    raise ProgramModelError(f"unknown structure node {type(node).__name__}")


@dataclass
class _Region:
    """Blocks and tree fragments of one layout region (main or function)."""

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)
    root_items: List[StructureNode] = field(default_factory=list)


class _ArmsHandle:
    """Handle returned by :meth:`ProgramBuilder.if_else`."""

    def __init__(self, builder: "ProgramBuilder"):
        self._builder = builder
        self.then_node: Optional[StructureNode] = None
        self.else_node: Optional[StructureNode] = None

    @contextlib.contextmanager
    def then_(self):
        """Build the taken arm."""
        if self.then_node is not None:
            raise ProgramModelError("then arm already built")
        with self._builder._subtree() as items:
            yield
        self.then_node = self._builder._seal_arm(items)

    @contextlib.contextmanager
    def else_(self):
        """Build the not-taken arm."""
        if self.then_node is None:
            raise ProgramModelError("build the then arm before the else arm")
        if self.else_node is not None:
            raise ProgramModelError("else arm already built")
        with self._builder._subtree() as items:
            yield
        self.else_node = self._builder._seal_arm(items)


class _SwitchHandle:
    """Handle returned by :meth:`ProgramBuilder.switch`."""

    def __init__(self, builder: "ProgramBuilder"):
        self._builder = builder
        self.cases: List[StructureNode] = []

    @contextlib.contextmanager
    def case(self):
        """Build one switch case (ends with an implicit break jump)."""
        builder = self._builder
        with builder._subtree() as items:
            yield
            # Every case ends with a break jump, emitted inside the
            # subtree so it lands in the case's last block.
            builder._emit(InstrKind.JUMP)
        self.cases.append(builder._seal_arm(items))


class ProgramBuilder:
    """Builds a structured :class:`ControlFlowGraph` plus structure tree."""

    def __init__(self, name: str):
        self.name = name
        self.factory = InstructionFactory()
        self._main = _Region("main")
        self._regions: List[_Region] = [self._main]
        self._functions: Dict[str, FunctionInfo] = {}
        self._fn_order: List[str] = []
        self._current_region = self._main
        # Stack of structure-item lists we are currently appending to.
        self._item_stack: List[List[StructureNode]] = [self._main.root_items]
        # Open instruction buffer (current basic block under construction).
        self._open: List = []
        self._open_label: Optional[str] = None
        # Active loops, innermost last: (LoopInfo fields collected lazily).
        self._loop_stack: List[dict] = []
        self._counters = {"bb": 0, "loop": 0, "call": 0}
        self._branch_profiles: Dict[str, BranchProfile] = {}
        self._loops: List[LoopInfo] = []
        self._built = False
        self._data_layout = None  # created on first data_region()

    # ------------------------------------------------------------------
    # low-level emission
    # ------------------------------------------------------------------
    def _emit(self, kind: InstrKind, label: Optional[str] = None) -> None:
        self._open.append(self.factory.make(kind, label))

    def _fresh_name(self, prefix: str) -> str:
        idx = self._counters[prefix]
        self._counters[prefix] += 1
        region = "" if self._current_region is self._main else (
            self._current_region.name + "."
        )
        return f"{region}{prefix}{idx}"

    def _flush(self) -> Optional[BlockNode]:
        """Close the open instruction buffer into a block, if non-empty."""
        if not self._open:
            return None
        name = self._open_label or self._fresh_name("bb")
        block = BasicBlock(name, self._open)
        self._open = []
        self._open_label = None
        self._current_region.blocks.append(block)
        for loop in self._loop_stack:
            loop["blocks"].append(name)
        node = BlockNode(name)
        self._item_stack[-1].append(node)
        return node

    @contextlib.contextmanager
    def _subtree(self):
        """Collect structure items into a fresh list (for arms/bodies)."""
        items: List[StructureNode] = []
        self._item_stack.append(items)
        try:
            yield items
        finally:
            self._flush()
            popped = self._item_stack.pop()
            if popped is not items:  # pragma: no cover - defensive
                raise ProgramModelError("builder item stack corrupted")

    def _seal_arm(self, items: List[StructureNode]) -> StructureNode:
        """Wrap collected items into a single node, padding empty arms."""
        if not items:
            # An empty arm still occupies one jump in the binary.
            self._open.append(self.factory.jump())
            name = self._fresh_name("bb")
            block = BasicBlock(name, self._open)
            self._open = []
            self._current_region.blocks.append(block)
            for loop in self._loop_stack:
                loop["blocks"].append(name)
            return BlockNode(name)
        if len(items) == 1:
            return items[0]
        return SeqNode(list(items))

    # ------------------------------------------------------------------
    # public DSL
    # ------------------------------------------------------------------
    def code(self, count: int, label: Optional[str] = None) -> None:
        """Emit ``count`` straight-line (NORMAL) instructions."""
        if count < 0:
            raise ProgramModelError(f"code count must be >= 0, got {count}")
        for _ in range(count):
            self._emit(InstrKind.NORMAL, label)

    # ------------------------------------------------------------------
    # data accesses (the repro.data extension)
    # ------------------------------------------------------------------
    def data_region(self, name: str, size: int) -> None:
        """Declare a named data object (array/struct/scalar)."""
        from repro.data.model import DataLayout

        if self._data_layout is None:
            self._data_layout = DataLayout()
        self._data_layout.add_region(name, size)

    def _emit_data(self, kind, region: str, offset: int, stride: int,
                   label: Optional[str]) -> None:
        from repro.data.model import DataAccess

        if self._data_layout is None:
            raise ProgramModelError(
                f"declare data_region({region!r}, ...) before accessing it"
            )
        self._data_layout.region(region)  # validate existence
        stride_loop = None
        if stride:
            if not self._loop_stack:
                raise ProgramModelError(
                    "strided data accesses must be emitted inside a loop"
                )
            stride_loop = self._loop_stack[-1]["name"]
        access = DataAccess(
            kind=kind,
            region=region,
            offset=offset,
            stride=stride,
            stride_loop=stride_loop,
        )
        self._open.append(
            self.factory.make(InstrKind.NORMAL, label, data_access=access)
        )

    def load(self, region: str, offset: int = 0, stride: int = 0,
             label: Optional[str] = None) -> None:
        """Emit a load from a data region.

        ``stride`` advances the address per iteration of the innermost
        enclosing loop (array walking); 0 is a scalar access.
        """
        from repro.data.model import DataKind

        self._emit_data(DataKind.LOAD, region, offset, stride, label)

    def store(self, region: str, offset: int = 0, stride: int = 0,
              label: Optional[str] = None) -> None:
        """Emit a store to a data region."""
        from repro.data.model import DataKind

        self._emit_data(DataKind.STORE, region, offset, stride, label)

    def block_label(self, label: str) -> None:
        """Name the next flushed block ``label`` (for tests/examples)."""
        if self._open:
            self._flush()
        self._open_label = label

    @contextlib.contextmanager
    def loop(
        self,
        bound: int,
        sim_iterations: Optional[int] = None,
        name: Optional[str] = None,
    ):
        """Open a bottom-tested loop with the given WCET ``bound``.

        The concrete executor iterates ``sim_iterations`` times per entry
        (defaults to ``bound``).  A 2-instruction latch block (compare +
        branch) is appended automatically.
        """
        self._flush()
        loop_name = name or self._fresh_name("loop")
        record = {"name": loop_name, "blocks": []}
        self._loop_stack.append(record)
        with self._subtree() as items:
            yield
            # Latch: compare + backward branch, inside the loop body.
            self._emit(InstrKind.NORMAL, f"{loop_name}.cmp")
            self._emit(InstrKind.BRANCH, f"{loop_name}.latch")
        self._loop_stack.pop()
        body = self._seal_arm(items)
        node = LoopNode(loop_name, body)
        self._item_stack[-1].append(node)
        header = entry_block_of(body)
        latch = exit_blocks_of(body)[-1]
        parent = self._loop_stack[-1]["name"] if self._loop_stack else None
        self._loops.append(
            LoopInfo(
                name=loop_name,
                header=header,
                latch=latch,
                blocks=tuple(record["blocks"]),
                bound=bound,
                sim_iterations=sim_iterations,
                parent=parent,
            )
        )

    @contextlib.contextmanager
    def if_else(
        self,
        taken_prob: float = 0.5,
        pattern: Optional[Sequence[bool]] = None,
    ):
        """Open a two-way conditional; use the yielded handle's arms.

        The branch instruction is appended to the current block, which
        becomes the condition block.
        """
        self._emit(InstrKind.BRANCH)
        cond_node = self._flush()
        assert cond_node is not None
        handle = _ArmsHandle(self)
        yield handle
        if handle.then_node is None:
            raise ProgramModelError("if_else used without a then arm")
        profile = BranchProfile(
            taken_prob=taken_prob,
            pattern=tuple(pattern) if pattern is not None else None,
        )
        self._branch_profiles[cond_node.block_name] = profile
        # Replace the cond BlockNode with the full conditional node.
        self._item_stack[-1].pop()
        self._item_stack[-1].append(
            IfElseNode(cond_node.block_name, handle.then_node, handle.else_node)
        )

    @contextlib.contextmanager
    def if_then(
        self,
        taken_prob: float = 0.5,
        pattern: Optional[Sequence[bool]] = None,
    ):
        """Shorthand for a conditional with only a taken arm."""
        with self.if_else(taken_prob=taken_prob, pattern=pattern) as arms:
            with arms.then_():
                yield

    @contextlib.contextmanager
    def switch(self, weights: Optional[Sequence[float]] = None):
        """Open a multi-way branch; add cases via the yielded handle."""
        self._emit(InstrKind.JUMP)
        selector_node = self._flush()
        assert selector_node is not None
        handle = _SwitchHandle(self)
        yield handle
        if not handle.cases:
            raise ProgramModelError("switch needs at least one case")
        node = SwitchNode(
            selector_node.block_name,
            handle.cases,
            tuple(weights) if weights is not None else None,
        )
        self._item_stack[-1].pop()
        self._item_stack[-1].append(node)

    @contextlib.contextmanager
    def function(self, name: str):
        """Define a function body laid out after the main region.

        Functions must be defined at the top level and may only call
        functions defined *before* them (no recursion; see DESIGN.md for
        the documented recursion-as-loop substitution).
        """
        if self._current_region is not self._main:
            raise ProgramModelError("nested function definitions not supported")
        if self._loop_stack or len(self._item_stack) != 1:
            raise ProgramModelError("functions must be defined at the top level")
        if name in self._functions:
            raise ProgramModelError(f"duplicate function {name!r}")
        self._flush()
        region = _Region(name)
        self._regions.append(region)
        outer_items = self._item_stack
        self._current_region = region
        self._item_stack = [region.root_items]
        try:
            yield
            self._emit(InstrKind.RETURN, f"{name}.ret")
            self._flush()
        finally:
            self._current_region = self._main
            self._item_stack = outer_items
        if not region.root_items:  # pragma: no cover - RETURN guarantees items
            raise ProgramModelError(f"function {name!r} is empty")
        body = (
            region.root_items[0]
            if len(region.root_items) == 1
            else SeqNode(list(region.root_items))
        )
        info = FunctionInfo(
            name=name,
            structure=body,
            entry_block=entry_block_of(body),
            exit_blocks=exit_blocks_of(body),
            blocks=tuple(b.name for b in region.blocks),
        )
        self._functions[name] = info
        self._fn_order.append(name)

    def call(self, function_name: str) -> None:
        """Emit a call to a previously defined function."""
        if function_name not in self._functions:
            raise ProgramModelError(
                f"call to undefined function {function_name!r}; define it first"
            )
        self._emit(InstrKind.CALL, f"call.{function_name}")
        call_node = self._flush()
        assert call_node is not None
        site_id = f"cs{self._counters['call']}"
        self._counters["call"] += 1
        self._item_stack[-1].pop()
        self._item_stack[-1].append(
            CallNode(call_node.block_name, function_name, site_id)
        )

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def build(self) -> ControlFlowGraph:
        """Assemble and validate the final CFG (single use)."""
        if self._built:
            raise ProgramModelError("ProgramBuilder.build() may only be called once")
        if len(self._item_stack) != 1 or self._loop_stack:
            raise ProgramModelError("unclosed structure construct at build()")
        self._built = True
        self._flush()

        cfg = ControlFlowGraph(self.name, self.factory)

        # Entry prologue and exit epilogue around the main body.
        entry_block = BasicBlock(
            "__entry",
            [self.factory.normal("prologue"), self.factory.normal("prologue")],
        )
        exit_block = BasicBlock("__exit", [self.factory.make(InstrKind.RETURN, "epilogue")])
        main_items = [BlockNode("__entry")] + list(self._main.root_items) + [
            BlockNode("__exit")
        ]
        cfg.structure = SeqNode(main_items)

        cfg.add_block(entry_block)
        for block in self._main.blocks:
            cfg.add_block(block)
        cfg.add_block(exit_block)
        for fn_name in self._fn_order:
            for block in next(
                r for r in self._regions if r.name == fn_name
            ).blocks:
                cfg.add_block(block)

        cfg.entry = entry_block
        cfg.exit = exit_block
        cfg.functions = dict(self._functions)
        cfg.data_layout = self._data_layout
        # Inner loops close (and are recorded) before their parents;
        # register parents first.
        by_name = {info.name: info for info in self._loops}

        def loop_depth(info: LoopInfo) -> int:
            depth = 0
            cursor = info.parent
            while cursor is not None:
                depth += 1
                cursor = by_name[cursor].parent
            return depth

        for info in sorted(self._loops, key=loop_depth):
            cfg.add_loop(info)
        for name, profile in self._branch_profiles.items():
            cfg.set_branch_profile(name, profile)

        # Wire graph edges for the main tree and each function body.
        self._wire(cfg, cfg.structure, continuation=None)
        for fn_name in self._fn_order:
            self._wire(cfg, self._functions[fn_name].structure, continuation=None)

        cfg.validate()
        return cfg

    def _wire(
        self,
        cfg: ControlFlowGraph,
        node: StructureNode,
        continuation: Optional[str],
    ) -> None:
        """Add CFG edges for ``node``; ``continuation`` is the block that
        receives control after the node finishes (``None`` at tree ends).
        """
        if isinstance(node, SeqNode):
            for idx, item in enumerate(node.items):
                if idx + 1 < len(node.items):
                    nxt = entry_block_of(node.items[idx + 1])
                else:
                    nxt = continuation
                self._wire(cfg, item, nxt)
            return
        if isinstance(node, BlockNode):
            if continuation is not None:
                self._add_edge_once(cfg, node.block_name, continuation)
            return
        if isinstance(node, IfElseNode):
            self._add_edge_once(cfg, node.cond_block, entry_block_of(node.then_node))
            self._wire(cfg, node.then_node, continuation)
            if node.else_node is not None:
                self._add_edge_once(
                    cfg, node.cond_block, entry_block_of(node.else_node)
                )
                self._wire(cfg, node.else_node, continuation)
            elif continuation is not None:
                self._add_edge_once(cfg, node.cond_block, continuation)
            return
        if isinstance(node, LoopNode):
            header = entry_block_of(node.body)
            latch = exit_blocks_of(node.body)[-1]
            self._wire(cfg, node.body, continuation)
            self._add_edge_once(cfg, latch, header)  # back edge
            return
        if isinstance(node, SwitchNode):
            for case in node.cases:
                self._add_edge_once(cfg, node.selector_block, entry_block_of(case))
                self._wire(cfg, case, continuation)
            return
        if isinstance(node, CallNode):
            info = cfg.functions[node.function_name]
            self._add_edge_once(cfg, node.call_block, info.entry_block)
            if continuation is not None:
                for ex in info.exit_blocks:
                    self._add_edge_once(cfg, ex, continuation)
            return
        raise ProgramModelError(f"unknown structure node {type(node).__name__}")

    @staticmethod
    def _add_edge_once(cfg: ControlFlowGraph, src: str, dst: str) -> None:
        if dst not in cfg.successors(src):
            cfg.add_edge(src, dst)

    # ------------------------------------------------------------------
    # wiring of loop bodies inside _wire: the body's internal sequencing
    # is handled by the SeqNode branch; only the back edge is special.
    # ------------------------------------------------------------------
