"""Control-flow graph of basic blocks (Definition 3 of the paper).

A :class:`ControlFlowGraph` is the static program model every other
subsystem consumes:

* :mod:`repro.program.layout` assigns byte addresses to its instructions,
* :mod:`repro.program.acfg` expands it (via VIVU contexts) into the
  abstract control-flow graph the analyses and the optimizer run on,
* :mod:`repro.sim.executor` interprets its structure tree to produce
  concrete fetch traces.

CFGs in this library are *structured*: they are produced by
:class:`repro.program.builder.ProgramBuilder` together with a structure
tree (:mod:`repro.program.structure`), mirroring the compiler setting of
the paper where the CFG comes out of GCC for the structured Mälardalen
sources.  The graph view (blocks/edges/loops) and the tree view always
describe the same program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import LoopBoundError, ProgramModelError
from repro.program.instructions import (
    Instruction,
    InstructionFactory,
    InstrKind,
)


@dataclass
class BranchProfile:
    """Average-case behaviour of a two-way conditional branch.

    Used only by the concrete executor (ACET/energy simulation); WCET
    analysis explores both arms and keeps the worst.

    Attributes:
        taken_prob: Probability that the *then* arm is taken on a given
            execution.  Sampled with the executor's seeded RNG, so runs
            are reproducible.
        pattern: Optional deterministic cyclic pattern of outcomes
            (``True`` = then-arm).  When present it overrides
            ``taken_prob``.
    """

    taken_prob: float = 0.5
    pattern: Optional[Tuple[bool, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.taken_prob <= 1.0:
            raise ProgramModelError(
                f"taken_prob must be in [0, 1], got {self.taken_prob}"
            )
        if self.pattern is not None and len(self.pattern) == 0:
            raise ProgramModelError("branch pattern must be non-empty")


class BasicBlock:
    """A maximal straight-line sequence of instructions.

    The instruction list is mutable on purpose: the optimizer inserts
    ``PREFETCH`` instructions into it (and only that), after which the
    owning CFG's layout must be recomputed.
    """

    def __init__(self, name: str, instructions: Optional[List[Instruction]] = None):
        self.name = name
        self.instructions: List[Instruction] = list(instructions or [])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<bb {self.name} [{len(self.instructions)} instrs]>"

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def byte_size(self) -> int:
        """Total byte size of the block's instructions."""
        return sum(i.size for i in self.instructions)

    def insert(self, index: int, instr: Instruction) -> None:
        """Insert ``instr`` before position ``index``.

        Only prefetch instructions may be inserted after construction;
        anything else would break prefetch equivalence (Definition 5).
        """
        if not instr.is_prefetch:
            raise ProgramModelError(
                "only PREFETCH instructions may be inserted into a built block"
            )
        if not 0 <= index <= len(self.instructions):
            raise ProgramModelError(
                f"insertion index {index} out of range for block {self.name!r} "
                f"of length {len(self.instructions)}"
            )
        self.instructions.insert(index, instr)

    def strip_prefetches(self) -> "BasicBlock":
        """Return a copy of this block with all prefetches removed."""
        return BasicBlock(
            self.name, [i for i in self.instructions if not i.is_prefetch]
        )

    def index_of(self, instr: Instruction) -> int:
        """Position of ``instr`` in this block (by uid identity)."""
        for idx, existing in enumerate(self.instructions):
            if existing.uid == instr.uid:
                return idx
        raise ProgramModelError(
            f"instruction uid {instr.uid} not found in block {self.name!r}"
        )


@dataclass
class LoopInfo:
    """A structured (bottom-tested) loop.

    The model follows a do-while shape: the body executes at least once
    and at most ``bound`` times per entry to the loop.  ``bound`` is the
    WCET loop bound; ``sim_iterations`` is the concrete iteration count
    the executor uses (the average-case behaviour), which must not exceed
    the bound.

    Attributes:
        name: Unique loop identifier within the program.
        header: Name of the first block of the body (back-edge target).
        latch: Name of the last block of the body (back-edge source).
        blocks: Names of all blocks belonging to the body (including any
            nested loops' blocks).
        bound: Maximum body executions per loop entry (>= 1).
        sim_iterations: Concrete body executions per entry used by the
            executor; defaults to ``bound``.
        parent: Name of the innermost enclosing loop, or ``None``.
    """

    name: str
    header: str
    latch: str
    blocks: Tuple[str, ...]
    bound: int
    sim_iterations: Optional[int] = None
    parent: Optional[str] = None

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise LoopBoundError(
                f"loop {self.name!r}: bound must be >= 1, got {self.bound}"
            )
        if self.sim_iterations is None:
            self.sim_iterations = self.bound
        if not 1 <= self.sim_iterations <= self.bound:
            raise LoopBoundError(
                f"loop {self.name!r}: sim_iterations ({self.sim_iterations}) "
                f"must lie in [1, bound={self.bound}]"
            )


@dataclass
class FunctionInfo:
    """A function body reachable through :class:`~repro.program.structure.CallNode`.

    Attributes:
        name: Function name (unique within the program).
        structure: Structure tree of the body (excludes caller blocks).
        entry_block: Name of the first body block.
        exit_blocks: Names of the blocks control leaves the function from.
        blocks: All block names belonging to the body, in layout order.
    """

    name: str
    structure: "object"
    entry_block: str
    exit_blocks: Tuple[str, ...]
    blocks: Tuple[str, ...]


class ControlFlowGraph:
    """Directed graph of basic blocks with explicit loop structure.

    Blocks are kept in *layout order* — the order in which
    :mod:`repro.program.layout` places them in the address space, which is
    the order the builder emitted them.
    """

    def __init__(self, name: str, factory: Optional[InstructionFactory] = None):
        self.name = name
        self.factory = factory or InstructionFactory()
        self.blocks: List[BasicBlock] = []
        self._by_name: Dict[str, BasicBlock] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}
        self.loops: Dict[str, LoopInfo] = {}
        self.branch_profiles: Dict[str, BranchProfile] = {}
        #: Root of the structure tree; set by the builder.
        self.structure = None
        #: Functions callable from the tree: name -> FunctionInfo.
        self.functions: Dict[str, "FunctionInfo"] = {}
        #: Data segment layout (``None`` for pure-code programs); set by
        #: the builder when the program declares data regions.
        self.data_layout = None
        self.entry: Optional[BasicBlock] = None
        self.exit: Optional[BasicBlock] = None
        #: Incremented whenever instruction contents change, so cached
        #: layouts/analyses can detect staleness.
        self.version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Append ``block`` in layout order."""
        if block.name in self._by_name:
            raise ProgramModelError(f"duplicate block name {block.name!r}")
        self.blocks.append(block)
        self._by_name[block.name] = block
        self._succ.setdefault(block.name, [])
        self._pred.setdefault(block.name, [])
        return block

    def add_edge(self, src: str, dst: str) -> None:
        """Add a control-flow edge ``src -> dst`` (names)."""
        if src not in self._by_name or dst not in self._by_name:
            raise ProgramModelError(f"edge ({src!r}, {dst!r}) references unknown block")
        if dst in self._succ[src]:
            raise ProgramModelError(f"duplicate edge ({src!r}, {dst!r})")
        self._succ[src].append(dst)
        self._pred[dst].append(src)

    def add_loop(self, info: LoopInfo) -> None:
        """Register a loop; nested loops must be registered after parents."""
        if info.name in self.loops:
            raise ProgramModelError(f"duplicate loop name {info.name!r}")
        if info.parent is not None and info.parent not in self.loops:
            raise ProgramModelError(
                f"loop {info.name!r}: parent {info.parent!r} not registered"
            )
        self.loops[info.name] = info

    def set_branch_profile(self, block_name: str, profile: BranchProfile) -> None:
        """Attach average-case branch behaviour to a conditional block."""
        if block_name not in self._by_name:
            raise ProgramModelError(f"unknown block {block_name!r}")
        self.branch_profiles[block_name] = profile

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def block(self, name: str) -> BasicBlock:
        """Look up a block by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ProgramModelError(f"unknown block {name!r}") from None

    def successors(self, name: str) -> Sequence[str]:
        """Successor block names of ``name``."""
        return tuple(self._succ[name])

    def predecessors(self, name: str) -> Sequence[str]:
        """Predecessor block names of ``name``."""
        return tuple(self._pred[name])

    def edges(self) -> Iterator[Tuple[str, str]]:
        """Iterate over all edges as ``(src, dst)`` name pairs."""
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over all instructions in layout order."""
        for block in self.blocks:
            yield from block.instructions

    @property
    def instruction_count(self) -> int:
        """Number of static instructions (prefetches included)."""
        return sum(len(b) for b in self.blocks)

    @property
    def prefetch_count(self) -> int:
        """Number of static prefetch instructions."""
        return sum(1 for i in self.instructions() if i.is_prefetch)

    def loops_containing(self, block_name: str) -> List[LoopInfo]:
        """Loops enclosing ``block_name``, outermost first."""
        chain = [lp for lp in self.loops.values() if block_name in lp.blocks]
        chain.sort(key=self._loop_depth)
        return chain

    def _loop_depth(self, loop: LoopInfo) -> int:
        depth = 0
        cur: Optional[str] = loop.parent
        while cur is not None:
            depth += 1
            cur = self.loops[cur].parent
        return depth

    def find_instruction(self, uid: int) -> Tuple[BasicBlock, int]:
        """Locate an instruction by uid; returns ``(block, index)``."""
        for block in self.blocks:
            for idx, instr in enumerate(block.instructions):
                if instr.uid == uid:
                    return block, idx
        raise ProgramModelError(f"instruction uid {uid} not found in CFG")

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def insert_prefetch(
        self, block_name: str, index: int, target_uid: int
    ) -> Instruction:
        """Insert a prefetch instruction and bump the CFG version.

        Args:
            block_name: Block receiving the prefetch.
            index: Position within the block (before current position
                ``index``).
            target_uid: uid of the instruction whose memory block the
                prefetch loads (resolved to a block id at analysis time,
                after relayout).

        Returns:
            The freshly created prefetch instruction.
        """
        prefetch = self.factory.prefetch(target_uid)
        self.block(block_name).insert(index, prefetch)
        self.version += 1
        return prefetch

    def insert_data_prefetch(
        self, block_name: str, index: int, access: "object"
    ) -> Instruction:
        """Insert a software *data* prefetch instruction.

        Args:
            block_name: Block receiving the prefetch.
            index: Position within the block.
            access: A :class:`repro.data.model.DataAccess` with kind
                ``PREFETCH`` describing the block to load into the data
                cache.

        Returns:
            The freshly created prefetch instruction (its
            ``prefetch_target`` is ``None``; the data access carries the
            target).
        """
        prefetch = self.factory.make(
            InstrKind.PREFETCH, label="dpf", data_access=access
        )
        self.block(block_name).insert(index, prefetch)
        self.version += 1
        return prefetch

    def remove_prefetch(self, prefetch_uid: int) -> None:
        """Remove a previously inserted prefetch (used to undo candidates)."""
        block, idx = self.find_instruction(prefetch_uid)
        if not block.instructions[idx].is_prefetch:
            raise ProgramModelError(
                f"instruction uid {prefetch_uid} is not a prefetch"
            )
        del block.instructions[idx]
        self.version += 1

    def strip_prefetches(self) -> None:
        """Remove every prefetch instruction in place."""
        changed = False
        for block in self.blocks:
            kept = [i for i in block.instructions if not i.is_prefetch]
            if len(kept) != len(block.instructions):
                block.instructions = kept
                changed = True
        if changed:
            self.version += 1

    def clone(self) -> "ControlFlowGraph":
        """Deep copy of the whole program.

        The optimizer works on a clone by default so the original
        (prefetch-free) program stays available for the paired
        comparisons every experiment needs.
        """
        import copy

        return copy.deepcopy(self)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`ProgramModelError`.

        Ensures entry/exit exist, every edge endpoint exists, conditional
        blocks end in a branch instruction, loop records are consistent,
        and instruction uids are unique.
        """
        if self.entry is None or self.exit is None:
            raise ProgramModelError(f"CFG {self.name!r}: entry/exit not set")
        seen_uids = set()
        for instr in self.instructions():
            if instr.uid in seen_uids:
                raise ProgramModelError(
                    f"CFG {self.name!r}: duplicate instruction uid {instr.uid}"
                )
            seen_uids.add(instr.uid)
        for block in self.blocks:
            succs = self._succ[block.name]
            if len(succs) > 1:
                if not block.instructions:
                    raise ProgramModelError(
                        f"block {block.name!r} has {len(succs)} successors "
                        "but no instructions"
                    )
                last = block.instructions[-1]
                if last.kind not in (
                    InstrKind.BRANCH,
                    InstrKind.JUMP,
                    InstrKind.RETURN,  # a function returning to many sites
                ):
                    raise ProgramModelError(
                        f"block {block.name!r} has multiple successors but "
                        f"does not end in a branch (ends in {last.kind})"
                    )
        for loop in self.loops.values():
            for name in (loop.header, loop.latch):
                if name not in self._by_name:
                    raise ProgramModelError(
                        f"loop {loop.name!r} references unknown block {name!r}"
                    )
            for name in loop.blocks:
                if name not in self._by_name:
                    raise ProgramModelError(
                        f"loop {loop.name!r} contains unknown block {name!r}"
                    )
            if loop.header not in loop.blocks or loop.latch not in loop.blocks:
                raise ProgramModelError(
                    f"loop {loop.name!r}: header/latch must belong to the loop"
                )
            if loop.parent is not None:
                parent = self.loops[loop.parent]
                missing = set(loop.blocks) - set(parent.blocks)
                if missing:
                    raise ProgramModelError(
                        f"loop {loop.name!r}: blocks {sorted(missing)} not in "
                        f"parent loop {parent.name!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CFG {self.name!r}: {len(self.blocks)} blocks, "
            f"{self.instruction_count} instrs, {len(self.loops)} loops>"
        )
