"""Structure tree of a structured program.

The builder (:mod:`repro.program.builder`) emits both a flat CFG and a
tree of structure nodes describing the same program.  The tree is what
makes two things simple and exact:

* the concrete executor (:mod:`repro.sim.executor`) interprets the tree
  to produce deterministic fetch traces without needing branch-resolution
  hardware models, and
* the structural WCET solver (:mod:`repro.analysis.structural`) computes
  the exact IPET optimum bottom-up (sum over sequences, max over
  conditionals, bound-weighted sums over loops).

Loops follow the bottom-tested (do-while) shape documented in
:class:`repro.program.cfg.LoopInfo`: the body runs 1..bound times per
entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ProgramModelError


class StructureNode:
    """Base class for structure-tree nodes."""

    def children(self) -> Sequence["StructureNode"]:
        """Child nodes in program order (empty for leaves)."""
        return ()

    def iter_blocks(self):
        """Yield every block name mentioned in this subtree, in order."""
        raise NotImplementedError


@dataclass
class BlockNode(StructureNode):
    """Leaf node: straight-line execution of one basic block."""

    block_name: str

    def iter_blocks(self):
        yield self.block_name


@dataclass
class SeqNode(StructureNode):
    """Sequential composition of child nodes."""

    items: List[StructureNode] = field(default_factory=list)

    def children(self) -> Sequence[StructureNode]:
        return tuple(self.items)

    def iter_blocks(self):
        for item in self.items:
            yield from item.iter_blocks()


@dataclass
class IfElseNode(StructureNode):
    """Two-way conditional.

    ``cond_block`` ends with a BRANCH instruction.  ``then_node`` is
    executed when the branch is taken, ``else_node`` (possibly ``None``
    for an if-then) otherwise.  Control re-joins after the node.
    """

    cond_block: str
    then_node: StructureNode
    else_node: Optional[StructureNode] = None

    def children(self) -> Sequence[StructureNode]:
        if self.else_node is None:
            return (self.then_node,)
        return (self.then_node, self.else_node)

    def iter_blocks(self):
        yield self.cond_block
        yield from self.then_node.iter_blocks()
        if self.else_node is not None:
            yield from self.else_node.iter_blocks()


@dataclass
class LoopNode(StructureNode):
    """Bottom-tested loop executing ``body`` 1..bound times per entry.

    The loop's bound/simulated iteration count live in the CFG's
    :class:`~repro.program.cfg.LoopInfo` registered under ``loop_name``;
    the tree only records the shape.
    """

    loop_name: str
    body: StructureNode

    def children(self) -> Sequence[StructureNode]:
        return (self.body,)

    def iter_blocks(self):
        yield from self.body.iter_blocks()


@dataclass
class SwitchNode(StructureNode):
    """Multi-way branch (switch/jump table).

    ``selector_block`` ends with a JUMP; exactly one case executes.
    ``weights`` give the average-case selection probabilities used by the
    executor (uniform when ``None``).
    """

    selector_block: str
    cases: List[StructureNode] = field(default_factory=list)
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.weights is not None:
            if len(self.weights) != len(self.cases):
                raise ProgramModelError(
                    "switch weights must match the number of cases"
                )
            total = sum(self.weights)
            if total <= 0:
                raise ProgramModelError("switch weights must sum to > 0")

    def children(self) -> Sequence[StructureNode]:
        return tuple(self.cases)

    def iter_blocks(self):
        yield self.selector_block
        for case in self.cases:
            yield from case.iter_blocks()


@dataclass
class CallNode(StructureNode):
    """Call to a named function.

    ``call_block`` is the block ending with the CALL instruction.  The
    callee's body lives once in the address space (see
    :mod:`repro.program.layout`); analyses expand it per call site via
    virtual inlining (VIVU), and the executor simply walks the callee's
    structure tree.  ``site_id`` distinguishes call sites for context
    naming.
    """

    call_block: str
    function_name: str
    site_id: str

    def iter_blocks(self):
        yield self.call_block


def walk(node: StructureNode):
    """Depth-first pre-order traversal of a structure tree."""
    yield node
    for child in node.children():
        yield from walk(child)


def count_nodes(node: StructureNode) -> int:
    """Total number of nodes in the subtree rooted at ``node``."""
    return sum(1 for _ in walk(node))
