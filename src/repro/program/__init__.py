"""Program model: instructions, CFGs, structure trees, layout, ACFG/VIVU.

This package is the substrate every analysis consumes.  Typical use::

    from repro.program import ProgramBuilder, build_acfg

    b = ProgramBuilder("demo")
    b.code(8)
    with b.loop(bound=16):
        b.code(12)
    cfg = b.build()
    acfg = build_acfg(cfg, block_size=16)
"""

from repro.program.acfg import ACFG, RefVertex, VertexKind, build_acfg
from repro.program.builder import ProgramBuilder, entry_block_of, exit_blocks_of
from repro.program.cfg import (
    BasicBlock,
    BranchProfile,
    ControlFlowGraph,
    FunctionInfo,
    LoopInfo,
)
from repro.program.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    InstructionFactory,
    InstrKind,
)
from repro.program.layout import AddressLayout, MemoryMap, compute_layout
from repro.program.structure import (
    BlockNode,
    CallNode,
    IfElseNode,
    LoopNode,
    SeqNode,
    StructureNode,
    SwitchNode,
    count_nodes,
    walk,
)
from repro.program.vivu import (
    CALL,
    FIRST,
    REST,
    TOP,
    Context,
    ContextElement,
    context_depth,
    context_label,
    enter_call,
    enter_loop_first,
    enter_loop_rest,
    execution_multiplier,
)

__all__ = [
    "ACFG",
    "AddressLayout",
    "BasicBlock",
    "BlockNode",
    "BranchProfile",
    "CALL",
    "CallNode",
    "Context",
    "ContextElement",
    "ControlFlowGraph",
    "FIRST",
    "FunctionInfo",
    "IfElseNode",
    "INSTRUCTION_SIZE",
    "Instruction",
    "InstructionFactory",
    "InstrKind",
    "LoopInfo",
    "LoopNode",
    "MemoryMap",
    "ProgramBuilder",
    "REST",
    "RefVertex",
    "SeqNode",
    "StructureNode",
    "SwitchNode",
    "TOP",
    "VertexKind",
    "build_acfg",
    "compute_layout",
    "context_depth",
    "context_label",
    "count_nodes",
    "enter_call",
    "enter_loop_first",
    "enter_loop_rest",
    "entry_block_of",
    "execution_multiplier",
    "exit_blocks_of",
    "walk",
]
