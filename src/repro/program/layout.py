"""Address layout: placing instructions in the memory address space.

The paper's cost model (Section 3.1) works on *memory blocks*: fixed-size
aligned chunks of the address space, each holding one or more instruction
items.  Which block an instruction lands in is what the cache sees — and
it changes every time the optimizer inserts a prefetch instruction,
because insertion shifts every later instruction by its size.  That shift
is exactly the relocation effect `rcost` (Eq. 8) accounts for.

Two classes split the concern:

* :class:`AddressLayout` — pure placement: block-by-block, in the CFG's
  layout order, starting at ``base_address``.
* :class:`MemoryMap` — the block-granular view for a given cache block
  size: ``S(r)`` (Definition 8, item -> memory block) and ``R(s)`` (block
  -> first item).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import LayoutError
from repro.program.cfg import ControlFlowGraph
from repro.program.instructions import Instruction


class AddressLayout:
    """Byte addresses for every instruction of a CFG.

    The layout is a snapshot: it records the CFG ``version`` it was
    computed from, and :meth:`is_stale` tells whether the CFG has been
    mutated since (after which a fresh layout must be computed).
    """

    def __init__(self, cfg: ControlFlowGraph, base_address: int = 0):
        if base_address < 0:
            raise LayoutError(f"base address must be >= 0, got {base_address}")
        self._cfg = cfg
        self.base_address = base_address
        self.version = cfg.version
        self._address_of: Dict[int, int] = {}
        self._block_start: Dict[str, int] = {}
        self._order: List[Instruction] = []
        addr = base_address
        for block in cfg.blocks:
            self._block_start[block.name] = addr
            for instr in block.instructions:
                self._address_of[instr.uid] = addr
                self._order.append(instr)
                addr += instr.size
        self.end_address = addr

    @property
    def cfg(self) -> ControlFlowGraph:
        """The CFG this layout was computed from."""
        return self._cfg

    def is_stale(self) -> bool:
        """True when the CFG changed after this layout was computed."""
        return self._cfg.version != self.version

    def address(self, uid: int) -> int:
        """Byte address of the instruction with the given uid."""
        try:
            return self._address_of[uid]
        except KeyError:
            raise LayoutError(f"instruction uid {uid} not in layout") from None

    def block_start(self, block_name: str) -> int:
        """Byte address of the first instruction of a basic block."""
        try:
            return self._block_start[block_name]
        except KeyError:
            raise LayoutError(f"block {block_name!r} not in layout") from None

    @property
    def code_size(self) -> int:
        """Total byte size of the program."""
        return self.end_address - self.base_address

    def instructions_in_order(self) -> Iterator[Instruction]:
        """All instructions in ascending address order."""
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)


class MemoryMap:
    """Block-granular view of an :class:`AddressLayout`.

    Implements the paper's Definition 8: ``S(r)`` maps an item to the
    memory block storing it, ``R(s)`` maps a memory block to its
    first-item reference (smallest address).
    """

    def __init__(self, layout: AddressLayout, block_size: int):
        if block_size <= 0 or block_size & (block_size - 1):
            raise LayoutError(
                f"memory block size must be a positive power of two, got {block_size}"
            )
        self.layout = layout
        self.block_size = block_size
        self._block_of: Dict[int, int] = {}
        self._items_of: Dict[int, List[int]] = {}
        for instr in layout.instructions_in_order():
            block_id = layout.address(instr.uid) // block_size
            self._block_of[instr.uid] = block_id
            self._items_of.setdefault(block_id, []).append(instr.uid)

    def block_of(self, uid: int) -> int:
        """``S(r)``: the memory block id holding instruction ``uid``."""
        try:
            return self._block_of[uid]
        except KeyError:
            raise LayoutError(f"instruction uid {uid} not in memory map") from None

    def first_item(self, block_id: int) -> int:
        """``R(s)``: uid of the lowest-address item in ``block_id``."""
        try:
            return self._items_of[block_id][0]
        except KeyError:
            raise LayoutError(f"memory block {block_id} holds no items") from None

    def items_in_block(self, block_id: int) -> Tuple[int, ...]:
        """All instruction uids stored in ``block_id`` (address order)."""
        return tuple(self._items_of.get(block_id, ()))

    def blocks(self) -> Tuple[int, ...]:
        """All occupied memory block ids, ascending."""
        return tuple(sorted(self._items_of))

    @property
    def block_count(self) -> int:
        """Number of memory blocks the program occupies."""
        return len(self._items_of)

    def address_of_block(self, block_id: int) -> int:
        """Base byte address of a memory block."""
        return block_id * self.block_size


def compute_layout(
    cfg: ControlFlowGraph,
    base_address: int = 0,
    block_size: Optional[int] = None,
) -> Tuple[AddressLayout, Optional[MemoryMap]]:
    """Convenience: compute a fresh layout (and memory map if asked).

    Args:
        cfg: The program.
        base_address: Where the code region starts.
        block_size: When given, also build the :class:`MemoryMap`.

    Returns:
        ``(layout, memory_map_or_None)``.
    """
    layout = AddressLayout(cfg, base_address)
    if block_size is None:
        return layout, None
    return layout, MemoryMap(layout, block_size)
