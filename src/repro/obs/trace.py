"""Distributed tracing primitives (stdlib only).

The model is a small subset of OpenTelemetry, shaped to this repo's
needs:

* :class:`SpanContext` — (trace id, span id, sampled flag), serialised
  as a W3C ``traceparent`` header (``00-<32 hex>-<16 hex>-<01|00>``).
* :class:`Span` — named interval with monotonic-clock duration, a wall
  start for export, attributes, timestamped events, and a status.
* :class:`Tracer` — makes spans.  Head-based sampling happens once at
  the root; children inherit the decision through either the ambient
  current span (a ``contextvars`` slot, so it survives ``await``) or an
  explicit ``parent``.

Three tiers of span keep the disabled path near free:

1. sampled → recording :class:`Span` with ids, delivered to the
   tracer's sink on :meth:`Span.end`;
2. unsampled but ``timed=True`` → a timing-only :class:`Span` (no id
   generation, never exported).  Pipeline stage timings and job
   latency histograms read these, so tracing and ``--profile`` share
   one clock even when nothing is being recorded;
3. otherwise → the shared :data:`NOOP_SPAN` singleton.

Spans with ``aggregate=True`` (pipeline stages, which fire hundreds of
times per optimize) are statistically merged by sinks — see
:class:`SpanCollector` — keyed on ``(trace_id, parent_id, name)``, so
stage detail stays visible without unbounded span volume.

Because tests boot several services in one process
(:class:`~repro.service.app.BackgroundServer`), tracers are per
:class:`~repro.service.app.ServiceApp` instances selected through the
:func:`activate_tracer` contextvar, not process globals.  The module
default tracer (used by the CLI and by pool workers) starts disabled;
:func:`configure` swaps it.
"""

from __future__ import annotations

import contextlib
import contextvars
import random
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "SpanContext",
    "Span",
    "NOOP_SPAN",
    "Tracer",
    "SpanCollector",
    "parse_traceparent",
    "format_traceparent",
    "new_trace_id",
    "new_span_id",
    "current_span",
    "current_context",
    "use_span",
    "active_tracer",
    "activate_tracer",
    "configure",
]

_TRACEPARENT_VERSION = "00"
_HEX = set("0123456789abcdef")


def new_trace_id() -> str:
    return "%032x" % random.getrandbits(128)


def new_span_id() -> str:
    return "%016x" % random.getrandbits(64)


class SpanContext:
    """Propagatable identity of a span: trace id, span id, sampled bit."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, sampled={self.sampled})"
        )


def format_traceparent(ctx: SpanContext) -> str:
    """Render ``ctx`` as a W3C ``traceparent`` header value."""
    flags = "01" if ctx.sampled else "00"
    return f"{_TRACEPARENT_VERSION}-{ctx.trace_id}-{ctx.span_id}-{flags}"


def _is_hex(text: str) -> bool:
    return bool(text) and all(ch in _HEX for ch in text)


def parse_traceparent(header: Optional[str]) -> Optional[SpanContext]:
    """Parse a ``traceparent`` header; ``None`` for anything malformed.

    Tolerant by design: a bad header from a peer must never fail a
    request, it just starts an untraced one.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    if len(span_id) != 16 or not _is_hex(span_id):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return SpanContext(trace_id, span_id, sampled)


class Span:
    """A timed operation, recording (has a context) or timing-only."""

    __slots__ = (
        "name",
        "context",
        "parent_id",
        "service",
        "aggregate",
        "attributes",
        "events",
        "status",
        "status_message",
        "start_wall",
        "_start_mono",
        "_end_mono",
        "_sink",
        "_token",
    )

    def __init__(
        self,
        name: str,
        context: Optional[SpanContext] = None,
        parent_id: Optional[str] = None,
        service: str = "repro",
        aggregate: bool = False,
        attributes: Optional[Dict[str, Any]] = None,
        sink: Optional[Callable[["Span"], None]] = None,
    ):
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.service = service
        self.aggregate = aggregate
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.events: List[Tuple[str, float, Dict[str, Any]]] = []
        self.status = "ok"
        self.status_message: Optional[str] = None
        self.start_wall = time.time()
        self._start_mono = time.perf_counter()
        self._end_mono: Optional[float] = None
        self._sink = sink
        self._token: Optional[contextvars.Token] = None

    # -- introspection -------------------------------------------------
    @property
    def recording(self) -> bool:
        return self.context is not None

    @property
    def duration_s(self) -> float:
        end = self._end_mono
        if end is None:
            end = time.perf_counter()
        return end - self._start_mono

    @property
    def ended(self) -> bool:
        return self._end_mono is not None

    def elapsed_s(self) -> float:
        return time.perf_counter() - self._start_mono

    def event_offset(self, name: str, default: Optional[float] = None) -> Optional[float]:
        """Seconds from span start to the first event called ``name``."""
        for ev_name, offset, _attrs in self.events:
            if ev_name == name:
                return offset
        return default

    # -- mutation ------------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, attrs: Dict[str, Any]) -> None:
        self.attributes.update(attrs)

    def add_event(self, name: str, **attrs: Any) -> None:
        self.events.append((name, self.elapsed_s(), attrs))

    def set_status(self, status: str, message: Optional[str] = None) -> None:
        self.status = status
        if message is not None:
            self.status_message = message

    def end(self) -> None:
        if self._end_mono is not None:
            return
        self._end_mono = time.perf_counter()
        if self._sink is not None:
            self._sink(self)

    # -- context management --------------------------------------------
    def __enter__(self) -> "Span":
        if self.context is not None and self._token is None:
            self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        if exc_type is not None and self.status == "ok":
            self.set_status("error", f"{exc_type.__name__}: {exc}")
        self.end()
        return False

    # -- serialisation -------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        ctx = self.context
        doc: Dict[str, Any] = {
            "name": self.name,
            "trace_id": ctx.trace_id if ctx else None,
            "span_id": ctx.span_id if ctx else None,
            "parent_id": self.parent_id,
            "service": self.service,
            "start_unix_s": self.start_wall,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.status_message:
            doc["status_message"] = self.status_message
        if self.aggregate:
            doc["aggregate"] = True
            doc["count"] = 1
        if self.attributes:
            doc["attributes"] = dict(self.attributes)
        if self.events:
            doc["events"] = [
                {"name": name, "offset_s": offset, "attributes": attrs}
                for name, offset, attrs in self.events
            ]
        return doc


class _NoopSpan:
    """Shared do-nothing span; the disabled-tracing fast path."""

    __slots__ = ()

    name = "noop"
    context = None
    parent_id = None
    service = "repro"
    aggregate = False
    attributes: Dict[str, Any] = {}
    events: List[Tuple[str, float, Dict[str, Any]]] = []
    status = "ok"
    status_message = None
    recording = False
    duration_s = 0.0
    ended = True

    def elapsed_s(self) -> float:
        return 0.0

    def event_offset(self, name: str, default: Optional[float] = None):
        return default

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, attrs: Dict[str, Any]) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def set_status(self, status: str, message: Optional[str] = None) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()

SpanLike = Union[Span, _NoopSpan]

_CURRENT_SPAN: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_current_span", default=None
)


def current_span() -> Optional[Span]:
    """The innermost *recording* span in this context, if any."""
    return _CURRENT_SPAN.get()


def current_context() -> Optional[SpanContext]:
    span = _CURRENT_SPAN.get()
    return span.context if span is not None else None


@contextlib.contextmanager
def use_span(span: SpanLike) -> Iterator[SpanLike]:
    """Make ``span`` the ambient parent without ending it on exit."""
    if isinstance(span, Span) and span.context is not None:
        token = _CURRENT_SPAN.set(span)
        try:
            yield span
        finally:
            _CURRENT_SPAN.reset(token)
    else:
        yield span


_PARENT_FROM_CONTEXT = object()


class Tracer:
    """Creates spans; owns the sampling decision and the export sink."""

    def __init__(
        self,
        service: str = "repro",
        sample: float = 0.0,
        sink: Optional[Callable[[Span], None]] = None,
        rng: Optional[Callable[[], float]] = None,
    ):
        self.service = service
        self.sample = float(sample)
        self.sink = sink
        self._rng = rng or random.random

    @property
    def enabled(self) -> bool:
        return self.sink is not None and self.sample > 0.0

    def _sample_root(self) -> bool:
        if not self.enabled:
            return False
        if self.sample >= 1.0:
            return True
        return self._rng() < self.sample

    def start_span(
        self,
        name: str,
        parent: Any = _PARENT_FROM_CONTEXT,
        root: bool = False,
        timed: bool = False,
        aggregate: bool = False,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> SpanLike:
        """Make a span.

        ``parent`` may be a :class:`Span`, a :class:`SpanContext` (e.g.
        from a parsed ``traceparent``), ``None`` (no parent), or omitted
        to inherit the ambient current span.  Without a sampled parent a
        new trace is only rooted when ``root=True`` wins the sampling
        rate; otherwise the span is timing-only (``timed=True``) or the
        no-op singleton.
        """
        ctx: Optional[SpanContext] = None
        if parent is _PARENT_FROM_CONTEXT:
            ambient = _CURRENT_SPAN.get()
            ctx = ambient.context if ambient is not None else None
        elif isinstance(parent, SpanContext):
            ctx = parent
        elif isinstance(parent, Span):
            ctx = parent.context

        if ctx is not None and ctx.sampled and self.sink is not None:
            return Span(
                name,
                context=SpanContext(ctx.trace_id, new_span_id(), True),
                parent_id=ctx.span_id,
                service=self.service,
                aggregate=aggregate,
                attributes=attributes,
                sink=self.sink,
            )
        if root and ctx is None and self._sample_root():
            return Span(
                name,
                context=SpanContext(new_trace_id(), new_span_id(), True),
                parent_id=None,
                service=self.service,
                aggregate=aggregate,
                attributes=attributes,
                sink=self.sink,
            )
        if timed:
            return Span(
                name,
                context=None,
                service=self.service,
                aggregate=aggregate,
                attributes=attributes,
            )
        return NOOP_SPAN


_DISABLED_TRACER = Tracer()
_DEFAULT_TRACER = _DISABLED_TRACER

_ACTIVE_TRACER: "contextvars.ContextVar[Optional[Tracer]]" = contextvars.ContextVar(
    "repro_active_tracer", default=None
)


def active_tracer() -> Tracer:
    """The tracer for this context: activated > module default."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is not None:
        return tracer
    return _DEFAULT_TRACER


@contextlib.contextmanager
def activate_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Select ``tracer`` for this context (request / pool job scope)."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


def configure(
    service: str = "repro",
    sample: float = 1.0,
    sink: Optional[Callable[[Span], None]] = None,
) -> Tracer:
    """Replace the module-default tracer (CLI / pool-worker entry)."""
    global _DEFAULT_TRACER
    _DEFAULT_TRACER = Tracer(service=service, sample=sample, sink=sink)
    return _DEFAULT_TRACER


class SpanCollector:
    """Thread-safe list sink with aggregate folding and a hard cap.

    Aggregate spans (``aggregate=True``) are merged in place by
    ``(trace_id, parent_id, name)``: durations and numeric attributes
    sum, ``count`` increments, the earliest wall start wins.  Everything
    else appends until ``limit`` spans, after which additions are
    dropped (and counted in ``dropped``).
    """

    def __init__(self, limit: int = 2000):
        self.limit = limit
        self.dropped = 0
        self._spans: List[Dict[str, Any]] = []
        self._agg: Dict[Tuple, int] = {}
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        self.add_json(span.to_json())

    def add_json(self, doc: Dict[str, Any]) -> None:
        with self._lock:
            if doc.get("aggregate"):
                key = (doc.get("trace_id"), doc.get("parent_id"), doc.get("name"))
                idx = self._agg.get(key)
                if idx is not None:
                    fold_aggregate(self._spans[idx], doc)
                    return
                if len(self._spans) >= self.limit:
                    self.dropped += 1
                    return
                self._agg[key] = len(self._spans)
                self._spans.append(dict(doc))
                return
            if len(self._spans) >= self.limit:
                self.dropped += 1
                return
            self._spans.append(doc)

    def drain(self) -> List[Dict[str, Any]]:
        with self._lock:
            spans, self._spans, self._agg = self._spans, [], {}
            return spans


def fold_aggregate(into: Dict[str, Any], doc: Dict[str, Any]) -> None:
    """Merge aggregate span ``doc`` into the stored ``into`` document."""
    into["count"] = into.get("count", 1) + doc.get("count", 1)
    into["duration_s"] = into.get("duration_s", 0.0) + doc.get("duration_s", 0.0)
    start = doc.get("start_unix_s")
    if start is not None and start < into.get("start_unix_s", float("inf")):
        into["start_unix_s"] = start
    if doc.get("status") == "error":
        into["status"] = "error"
        if doc.get("status_message"):
            into["status_message"] = doc["status_message"]
    attrs = doc.get("attributes")
    if attrs:
        merged = into.setdefault("attributes", {})
        for key, value in attrs.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                base = merged.get(key, 0)
                if isinstance(base, (int, float)) and not isinstance(base, bool):
                    merged[key] = base + value
                    continue
            merged.setdefault(key, value)
