"""Structured JSON logging correlated with the active trace.

One JSON object per line on stderr: ``ts`` (unix seconds), ``level``,
``logger``, ``msg``, any keyword fields, and — when a recording span is
active — ``trace_id``/``span_id`` so log lines join against
``repro trace`` output.

The level comes from ``REPRO_LOG_LEVEL`` (``debug``/``info``/``warn``/
``error``/``off``; default ``info``).  Loggers are cheap, cached by
name, and stdlib-only (no ``logging`` handler configuration to clash
with embedding applications).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO

from repro.obs.trace import current_span

__all__ = ["StructuredLogger", "get_logger", "set_level", "LOG_LEVEL_ENV"]

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_LEVELS = {"debug": 10, "info": 20, "warn": 30, "warning": 30, "error": 40, "off": 99}

_lock = threading.Lock()
_loggers: Dict[str, "StructuredLogger"] = {}
_level: Optional[int] = None


def _threshold() -> int:
    global _level
    if _level is None:
        name = os.environ.get(LOG_LEVEL_ENV, "info").strip().lower()
        _level = _LEVELS.get(name, 20)
    return _level


def set_level(name: str) -> None:
    """Override the process log level (e.g. from a CLI flag)."""
    global _level
    _level = _LEVELS.get(name.strip().lower(), 20)


class StructuredLogger:
    """Named emitter of one-line JSON records."""

    __slots__ = ("name", "stream")

    def __init__(self, name: str, stream: Optional[TextIO] = None):
        self.name = name
        self.stream = stream

    def _emit(self, level: str, msg: str, fields: Dict[str, Any]) -> None:
        if _LEVELS[level] < _threshold():
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "msg": msg,
        }
        span = current_span()
        if span is not None and span.context is not None:
            record["trace_id"] = span.context.trace_id
            record["span_id"] = span.context.span_id
        for key, value in fields.items():
            if key not in record:
                record[key] = value
        try:
            line = json.dumps(record, default=str)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            line = json.dumps({"level": level, "logger": self.name, "msg": msg})
        stream = self.stream or sys.stderr
        try:
            stream.write(line + "\n")
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass

    def debug(self, msg: str, **fields: Any) -> None:
        self._emit("debug", msg, fields)

    def info(self, msg: str, **fields: Any) -> None:
        self._emit("info", msg, fields)

    def warning(self, msg: str, **fields: Any) -> None:
        self._emit("warn", msg, fields)

    def error(self, msg: str, **fields: Any) -> None:
        self._emit("error", msg, fields)


def get_logger(name: str) -> StructuredLogger:
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = StructuredLogger(name)
            _loggers[name] = logger
        return logger
