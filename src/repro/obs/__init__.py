"""Observability: tracing, structured logging, trace storage/export.

See DESIGN.md §8 for the span model, propagation, sampling, and export
format.
"""

from repro.obs.log import StructuredLogger, get_logger, set_level
from repro.obs.store import TraceStore
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanCollector,
    SpanContext,
    Tracer,
    activate_tracer,
    active_tracer,
    configure,
    current_context,
    current_span,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    use_span,
)
from repro.obs.export import render_span_tree, to_chrome_trace

__all__ = [
    "NOOP_SPAN",
    "Span",
    "SpanCollector",
    "SpanContext",
    "StructuredLogger",
    "TraceStore",
    "Tracer",
    "activate_tracer",
    "active_tracer",
    "configure",
    "current_context",
    "current_span",
    "format_traceparent",
    "get_logger",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "render_span_tree",
    "set_level",
    "to_chrome_trace",
    "use_span",
]
