"""In-memory ring-buffer trace store behind ``GET /v1/traces/<id>``.

Traces are kept per trace id in insertion order; when ``max_traces`` is
exceeded the least-recently-touched trace is evicted.  Per-trace span
count is capped at ``max_spans`` (aggregate spans fold instead of
appending, so pipeline-stage volume does not count against the cap
beyond its first occurrence per parent).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.trace import Span, fold_aggregate

__all__ = ["TraceStore"]


class _TraceEntry:
    __slots__ = ("spans", "agg", "dropped")

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []
        self.agg: Dict[tuple, int] = {}
        self.dropped = 0


class TraceStore:
    """Thread-safe bounded store of finished span documents."""

    def __init__(self, max_traces: int = 256, max_spans: int = 5000):
        self.max_traces = max_traces
        self.max_spans = max_spans
        self._traces: "OrderedDict[str, _TraceEntry]" = OrderedDict()
        self._lock = threading.Lock()

    def sink(self, span: Span) -> None:
        """Adapter so a :class:`~repro.obs.trace.Tracer` can sink here."""
        self.add(span.to_json())

    def add(self, doc: Dict[str, Any]) -> None:
        trace_id = doc.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            entry = self._traces.get(trace_id)
            if entry is None:
                entry = _TraceEntry()
                self._traces[trace_id] = entry
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            else:
                self._traces.move_to_end(trace_id)
            if doc.get("aggregate"):
                key = (doc.get("parent_id"), doc.get("name"), doc.get("service"))
                idx = entry.agg.get(key)
                if idx is not None:
                    fold_aggregate(entry.spans[idx], doc)
                    return
                if len(entry.spans) >= self.max_spans:
                    entry.dropped += 1
                    return
                entry.agg[key] = len(entry.spans)
                entry.spans.append(dict(doc))
                return
            if len(entry.spans) >= self.max_spans:
                entry.dropped += 1
                return
            entry.spans.append(dict(doc))

    def add_many(self, docs: Iterable[Dict[str, Any]]) -> None:
        for doc in docs:
            self.add(doc)

    def get(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """Spans of ``trace_id`` (copies), or ``None`` if unknown."""
        with self._lock:
            entry = self._traces.get(trace_id)
            if entry is None:
                return None
            return [dict(doc) for doc in entry.spans]

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces.keys())

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "traces": len(self._traces),
                "spans": sum(len(e.spans) for e in self._traces.values()),
                "dropped": sum(e.dropped for e in self._traces.values()),
            }
