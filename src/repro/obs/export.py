"""Trace export: Chrome-trace/Perfetto JSON and a terminal span tree.

``to_chrome_trace`` converts the span documents of one trace into the
Chrome Trace Event JSON object format (loadable in ``chrome://tracing``
and Perfetto): complete ``"X"`` events with microsecond wall-clock
``ts``/``dur``, one ``pid`` per service/node (named via ``"M"``
process-name metadata events), and span events as ``"i"`` instants.
Within a pid, root spans get greedily packed non-overlapping ``tid``
lanes and descendants inherit their root's lane so nesting renders
correctly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["to_chrome_trace", "render_span_tree", "sort_spans"]


def sort_spans(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return sorted(spans, key=lambda doc: doc.get("start_unix_s") or 0.0)


def _lane_assignment(spans: List[Dict[str, Any]]) -> Dict[Optional[str], int]:
    """Map span_id -> tid, one greedy interval packing per service."""
    by_id = {doc.get("span_id"): doc for doc in spans if doc.get("span_id")}

    def root_of(doc: Dict[str, Any]) -> Dict[str, Any]:
        seen = set()
        while True:
            parent = by_id.get(doc.get("parent_id"))
            if parent is None or parent.get("service") != doc.get("service"):
                return doc
            if id(parent) in seen:  # defensive: corrupt parent loop
                return doc
            seen.add(id(parent))
            doc = parent

    lanes: Dict[Optional[str], int] = {}
    by_service: Dict[str, List[Dict[str, Any]]] = {}
    for doc in spans:
        by_service.setdefault(doc.get("service") or "repro", []).append(doc)
    for docs in by_service.values():
        roots: List[Dict[str, Any]] = []
        seen_roots = set()
        for doc in docs:
            root = root_of(doc)
            marker = root.get("span_id") or id(root)
            if marker not in seen_roots:
                seen_roots.add(marker)
                roots.append(root)
        # Greedy packing: earliest-starting root takes the first lane
        # that is free at its start time.
        lane_free_at: List[float] = []
        root_lane: Dict[Any, int] = {}
        for root in sort_spans(roots):
            start = root.get("start_unix_s") or 0.0
            end = start + (root.get("duration_s") or 0.0)
            for lane, free_at in enumerate(lane_free_at):
                if start >= free_at:
                    lane_free_at[lane] = end
                    root_lane[root.get("span_id") or id(root)] = lane
                    break
            else:
                root_lane[root.get("span_id") or id(root)] = len(lane_free_at)
                lane_free_at.append(end)
        for doc in docs:
            root = root_of(doc)
            lanes[doc.get("span_id")] = root_lane.get(
                root.get("span_id") or id(root), 0
            )
    return lanes


def to_chrome_trace(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert one trace's span documents to a Chrome-trace JSON object."""
    ordered = sort_spans(spans)
    services: List[str] = []
    for doc in ordered:
        service = doc.get("service") or "repro"
        if service not in services:
            services.append(service)
    pid_of = {service: pid + 1 for pid, service in enumerate(services)}
    lanes = _lane_assignment(ordered)

    events: List[Dict[str, Any]] = []
    for service, pid in pid_of.items():
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": service},
            }
        )
    for doc in ordered:
        pid = pid_of.get(doc.get("service") or "repro", 1)
        tid = lanes.get(doc.get("span_id"), 0)
        start_s = doc.get("start_unix_s") or 0.0
        ts = start_s * 1e6
        args: Dict[str, Any] = {
            "span_id": doc.get("span_id"),
            "parent_id": doc.get("parent_id"),
            "status": doc.get("status", "ok"),
        }
        if doc.get("count", 1) != 1:
            args["count"] = doc["count"]
        if doc.get("status_message"):
            args["status_message"] = doc["status_message"]
        args.update(doc.get("attributes") or {})
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": doc.get("name", "span"),
                "cat": doc.get("service") or "repro",
                "ts": ts,
                "dur": (doc.get("duration_s") or 0.0) * 1e6,
                "args": args,
            }
        )
        for event in doc.get("events") or []:
            events.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": tid,
                    "name": event.get("name", "event"),
                    "cat": doc.get("service") or "repro",
                    "ts": ts + (event.get("offset_s") or 0.0) * 1e6,
                    "s": "t",
                    "args": dict(event.get("attributes") or {}),
                }
            )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


_ANNOTATED_EVENTS = (
    "retry",
    "steal",
    "lease_expired",
    "shard_requeued",
    "backpressure",
    "coalesced",
)


def _span_line(doc: Dict[str, Any]) -> str:
    parts = [doc.get("name", "span")]
    duration = doc.get("duration_s") or 0.0
    parts.append(_format_duration(duration))
    count = doc.get("count", 1)
    if count != 1:
        parts.append(f"x{count}")
    parts.append(f"[{doc.get('service') or 'repro'}]")
    if doc.get("status") != "ok":
        message = doc.get("status_message") or ""
        parts.append(f"!{doc.get('status')}" + (f": {message}" if message else ""))
    attrs = doc.get("attributes") or {}
    for key in ("worker", "attempt", "retries", "shard", "kind", "cached", "speculative"):
        if key in attrs:
            parts.append(f"{key}={attrs[key]}")
    notes = [
        event.get("name")
        for event in doc.get("events") or []
        if event.get("name") in _ANNOTATED_EVENTS
    ]
    if notes:
        parts.append("<" + ",".join(notes) + ">")
    return " ".join(str(part) for part in parts)


def render_span_tree(spans: Sequence[Dict[str, Any]]) -> str:
    """Render a trace as an indented tree with durations/annotations."""
    ordered = sort_spans(spans)
    by_id = {doc["span_id"]: doc for doc in ordered if doc.get("span_id")}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for doc in ordered:
        parent = doc.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(doc)
        else:
            roots.append(doc)

    lines: List[str] = []

    def walk(doc: Dict[str, Any], prefix: str, is_last: bool, top: bool) -> None:
        if top:
            lines.append(_span_line(doc))
            child_prefix = ""
        else:
            branch = "`- " if is_last else "|- "
            lines.append(prefix + branch + _span_line(doc))
            child_prefix = prefix + ("   " if is_last else "|  ")
        kids = children.get(doc.get("span_id"), [])
        for index, kid in enumerate(kids):
            walk(kid, child_prefix, index == len(kids) - 1, False)

    for index, root in enumerate(roots):
        walk(root, "", index == len(roots) - 1, True)
    return "\n".join(lines)
