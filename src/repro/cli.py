"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro list-programs
    python -m repro list-configs
    python -m repro optimize fdct k1 45nm
    python -m repro usecase matmult k13 32nm
    python -m repro figure 3 --programs bs crc fdct --configs k1 k13
    python -m repro sweep --workers 4 --cache-dir ~/.cache/repro-sweep
    python -m repro table 1
    python -m repro serve --port 8080 --workers 4
    python -m repro trace 4bf92f3577b34da6a3ce929d0e0e4736 --export t.json

``optimize`` and ``sweep`` take ``--json``: the machine-readable
document goes to stdout and the human-readable text moves to stderr, so
scripts can pipe results while operators still see progress.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional, Sequence

from repro.bench.registry import TABLE1, load, program_names
from repro.cache.config import TABLE2, hierarchy_for
from repro.core.guarantees import verify_wcet_guarantee
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import hierarchy_model
from repro.energy.technology import TECHNOLOGIES, technology
from repro.experiments.figures import figure3, figure4, figure5, figure7, figure8
from repro.experiments.report import (
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure7,
    render_figure8,
)
from repro.experiments.metrics import SweepMetrics
from repro.experiments.sweep import (
    SweepSpec,
    average,
    default_grid,
    full_grid,
    run_sweep,
)
from repro.experiments.tables import table1, table2
from repro.experiments.usecase import UseCase, run_usecase


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WCET-safe unlocked-cache prefetching (DAC 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-programs", help="the 37 Mälardalen clones (Table 1)")
    sub.add_parser("list-configs", help="the 36 cache configurations (Table 2)")

    opt = sub.add_parser("optimize", help="optimize one program and verify")
    opt.add_argument("program", help="program name or Table 1 id")
    opt.add_argument("config", help="Table 2 id, e.g. k1")
    opt.add_argument("tech", choices=sorted(TECHNOLOGIES), nargs="?", default="45nm")
    opt.add_argument(
        "--baseline",
        choices=("classic", "persistence"),
        default="persistence",
        help="analysis fidelity (see EXPERIMENTS.md)",
    )
    opt.add_argument("--budget", type=int, default=None, metavar="N",
                     help="optimization budget (candidate evaluations)")
    opt.add_argument(
        "--kernel",
        choices=("python", "vectorized"),
        default=None,
        help="abstract-domain kernel: the pure-python oracle or the "
             "dense numpy kernel (default: $REPRO_CACHE_KERNEL or "
             "vectorized)",
    )
    opt.add_argument(
        "--l2",
        default=None,
        metavar="SPEC",
        help="second-level cache as assoc:block:capacity:latency "
             "(e.g. 4:16:4096:6); default: single-level memory system",
    )
    opt.add_argument(
        "--refine",
        action="store_true",
        help="model-check the NOT_CLASSIFIED references (bounded "
             "concrete-state exploration) and promote the decided ones "
             "to always-hit/always-miss before placement",
    )
    opt.add_argument("--json", action="store_true",
                     help="machine-readable result on stdout "
                          "(human text moves to stderr)")
    opt.add_argument("--profile", action="store_true",
                     help="per-stage wall-clock breakdown of the analysis "
                          "pipeline on stderr (and in the --json document)")

    usecase = sub.add_parser(
        "usecase", help="paired original/optimized measurement of one use case"
    )
    usecase.add_argument("program")
    usecase.add_argument("config")
    usecase.add_argument("tech", choices=sorted(TECHNOLOGIES), nargs="?",
                         default="45nm")
    usecase.add_argument(
        "--l2",
        default=None,
        metavar="SPEC",
        help="second-level cache as assoc:block:capacity:latency "
             "(default: single-level memory system)",
    )
    usecase.add_argument(
        "--refine",
        action="store_true",
        help="model-checking refinement of NOT_CLASSIFIED references "
             "(see `repro optimize --refine`)",
    )

    fig = sub.add_parser("figure", help="regenerate a figure of the paper")
    fig.add_argument("number", type=int, choices=(3, 4, 5, 7, 8))
    fig.add_argument("--programs", nargs="*", default=None,
                     help="subset of programs (default: all 37)")
    fig.add_argument("--configs", nargs="*", default=None,
                     help="subset of Table 2 ids (default: one per capacity)")
    fig.add_argument("--techs", nargs="*", default=("45nm", "32nm"))
    fig.add_argument("--budget", type=int, default=120)
    fig.add_argument("--baseline", choices=("classic", "persistence"),
                     default="classic")
    fig.add_argument("--factor", type=float, default=0.5,
                     help="capacity factor for figure 5")

    tab = sub.add_parser("table", help="print a table of the paper")
    tab.add_argument("number", type=int, choices=(1, 2))

    sweep = sub.add_parser(
        "sweep",
        help="run a use-case grid (parallel workers, persistent disk cache)",
    )
    sweep.add_argument("--programs", nargs="*", default=None,
                       help="subset of programs (default: all 37)")
    sweep.add_argument("--configs", nargs="*", default=None,
                       help="subset of Table 2 ids (default: one per capacity)")
    sweep.add_argument("--techs", nargs="*", default=("45nm", "32nm"))
    sweep.add_argument("--budget", type=int, default=120)
    sweep.add_argument("--baseline", choices=("classic", "persistence"),
                       default="classic")
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--full", action="store_true",
                       help="the paper's complete 2664-case grid")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes (default: REPRO_SWEEP_WORKERS "
                            "or the CPU count; 1 = serial)")
    sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent result cache (default: "
                            "$REPRO_SWEEP_CACHE_DIR; unset = no disk cache)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore both the disk and the in-process cache")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress the per-use-case progress lines")
    sweep.add_argument("--json", action="store_true",
                       help="machine-readable results on stdout "
                            "(progress/summary move to stderr)")
    sweep.add_argument("--max-failures", type=int, default=0, metavar="N",
                       help="tolerate up to N permanently failed use "
                            "cases before exiting nonzero (default: 0; "
                            "partial results are always reported)")
    sweep.add_argument("--kernel", choices=("python", "vectorized"),
                       default=None,
                       help="abstract-domain kernel (default: vectorized, "
                            "locally and on the fabric)")
    sweep.add_argument("--l2", nargs="*", default=None, metavar="SPEC",
                       help="second-level cache axis: one or more "
                            "assoc:block:capacity:latency specs, swept "
                            "like any other grid dimension (default: "
                            "single-level memory system)")
    sweep.add_argument("--refine", action="store_true",
                       help="run every use case with the model-checking "
                            "refinement enabled (ablation axis; see "
                            "`repro optimize --refine`)")
    sweep.add_argument("--coordinator", default=None, metavar="URL",
                       help="run the sweep on a fabric coordinator "
                            "(e.g. http://127.0.0.1:8080) instead of "
                            "locally; results stream back live")
    sweep.add_argument("--tenant", default="default", metavar="NAME",
                       help="fabric tenant for fair scheduling "
                            "(--coordinator only)")
    sweep.add_argument("--trace-sample", type=float, default=1.0,
                       metavar="RATE",
                       help="probability of tracing this fabric sweep "
                            "end to end (--coordinator only; 0 = off, "
                            "default 1.0)")

    serve = sub.add_parser(
        "serve",
        help="run the async analysis service (jobs over HTTP/JSON)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="compute pool size (default: "
                            "REPRO_SWEEP_WORKERS or the CPU count)")
    serve.add_argument("--queue-size", type=int, default=64, metavar="N",
                       help="bounded job queue; beyond it submissions "
                            "get 429 + Retry-After")
    serve.add_argument("--job-timeout", type=float, default=600.0,
                       metavar="SECONDS",
                       help="per-job wall-clock budget (0 = unlimited)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent result cache (default: "
                            "$REPRO_SWEEP_CACHE_DIR; unset = no disk cache)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without the persistent disk cache")
    serve.add_argument("--self-check", action="store_true",
                       help="boot on an ephemeral port, hit /healthz, "
                            "report, and exit")
    serve.add_argument("--coordinator", action="store_true",
                       help="run as a fabric coordinator: accept "
                            "/v1/fabric/ sweeps and shard them across "
                            "registered workers")
    serve.add_argument("--worker-url", action="append", default=[],
                       metavar="URL", dest="worker_urls",
                       help="pre-register a worker node with the "
                            "coordinator (repeatable)")
    serve.add_argument("--coordinator-url", default=None, metavar="URL",
                       help="register this node as a worker with a "
                            "running coordinator once it is listening")
    serve.add_argument("--lease-timeout", type=float, default=120.0,
                       metavar="SECONDS",
                       help="coordinator: shard lease before it is "
                            "requeued elsewhere")
    serve.add_argument("--steal-after", type=float, default=5.0,
                       metavar="SECONDS",
                       help="coordinator: idle workers speculatively "
                            "re-run shards leased longer than this")
    serve.add_argument("--shard-size", type=int, default=None, metavar="N",
                       help="coordinator: cases per shard (default: "
                            "sized from the fleet capacity)")
    serve.add_argument("--trace-sample", type=float, default=1.0,
                       metavar="RATE",
                       help="head-sampling rate for new traces rooted "
                            "at this node (0 disables tracing; sampled "
                            "incoming traceparents are always honored)")

    trace = sub.add_parser(
        "trace",
        help="render one distributed trace as a span tree",
    )
    trace.add_argument("trace_id", help="32-hex trace id (printed by a "
                                        "traced sweep, or echoed in the "
                                        "traceparent response header)")
    trace.add_argument("--service", default="http://127.0.0.1:8080",
                       metavar="URL",
                       help="node to fetch the trace from (a "
                            "coordinator merges its workers' spans)")
    trace.add_argument("--export", default=None, metavar="FILE",
                       help="also write Chrome-trace JSON (load in "
                            "chrome://tracing or ui.perfetto.dev)")
    trace.add_argument("--json", action="store_true",
                       help="raw span documents on stdout instead of "
                            "the rendered tree")
    return parser


def _cmd_list_programs() -> int:
    for pid, name in TABLE1.items():
        cfg = load(name)
        print(f"{pid:<5} {name:<15} {cfg.instruction_count:>6} instrs "
              f"{cfg.instruction_count * 4:>7} B  {len(cfg.loops)} loops")
    return 0


def _cmd_list_configs() -> int:
    for kid, config in TABLE2.items():
        print(f"{kid:<4} a={config.associativity} b={config.block_size:>2} "
              f"c={config.capacity:>5}  ({config.num_sets} sets)")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.experiments.report import optimize_to_json

    config = TABLE2[args.config]
    tech = technology(args.tech)
    hierarchy = hierarchy_for(config, args.l2)
    timing = hierarchy_model(hierarchy, tech).timing
    cfg = load(args.program)
    options = OptimizerOptions(
        with_persistence=args.baseline == "persistence",
        max_evaluations=args.budget,
        kernel=args.kernel,
        l2=args.l2,
        refine=args.refine,
    )
    optimized, report = optimize(cfg, config, timing, options=options)
    check = verify_wcet_guarantee(
        cfg, optimized, config, timing,
        with_persistence=args.baseline == "persistence",
        hierarchy=hierarchy if hierarchy.multi_level else None,
        refine=args.refine,
    )
    # In --json mode the human rendering moves to stderr so stdout stays
    # a clean machine-readable document.
    out = sys.stderr if args.json else sys.stdout
    print(f"{cfg.name} on {args.config}={hierarchy.label()} @ {tech.name} "
          f"[{args.baseline} baseline]", file=out)
    print(f"prefetches : {report.prefetch_count} "
          f"({report.candidates_evaluated} evaluated, "
          f"{report.candidates_rejected} rejected, {report.passes} passes)",
          file=out)
    print(f"τ_w        : {report.tau_original:.0f} -> {report.tau_final:.0f} "
          f"({100 * report.wcet_reduction:+.1f}%)", file=out)
    print(f"worst miss : {report.misses_original} -> {report.misses_final}",
          file=out)
    print(f"Theorem 1  : {check.theorem1_holds}   Condition 2: "
          f"{check.condition2_holds}   latency-sound: {check.all_effective}",
          file=out)
    profile = report.profile if getattr(args, "profile", False) else None
    if profile is not None:
        # Always on stderr: diagnostics, not part of the result proper.
        total = sum(profile.values())
        print("pipeline stage breakdown:", file=sys.stderr)
        for stage in ("acfg", "fixpoint", "classify", "guard", "ipet"):
            seconds = profile.get(stage, 0.0)
            share = (100.0 * seconds / total) if total else 0.0
            print(f"  {stage:<9}: {seconds:8.3f}s ({share:4.1f}%)",
                  file=sys.stderr)
        for stage in sorted(set(profile) - {"acfg", "fixpoint", "classify",
                                            "guard", "ipet"}):
            print(f"  {stage:<9}: {profile[stage]:8.3f}s", file=sys.stderr)
        counters = report.pipeline
        print(f"  analyses : {counters.get('delta_runs', 0)} delta, "
              f"{counters.get('cold_runs', 0)} cold, "
              f"{counters.get('delta_fallbacks', 0)} fallbacks",
              file=sys.stderr)
    if args.json:
        document = optimize_to_json(report, check, profile=profile)
        document["config_id"] = args.config
        document["tech"] = tech.name
        document["baseline"] = args.baseline
        print(json.dumps(document, sort_keys=True))
    return 0 if check.theorem1_holds else 1


def _cmd_usecase(args: argparse.Namespace) -> int:
    result = run_usecase(
        UseCase(args.program, args.config, args.tech, args.l2),
        options=OptimizerOptions(refine=True) if args.refine else None,
    )
    where = args.config if args.l2 is None else f"{args.config}+L2 {args.l2}"
    print(f"{args.program} on {where} @ {args.tech}")
    print(f"  WCET ratio   : {result.wcet_ratio:.3f}")
    print(f"  ACET ratio   : {result.acet_ratio:.3f}")
    print(f"  energy ratio : {result.energy_ratio:.3f} "
          f"(paper-mode {result.energy_ratio_paper_mode:.3f})")
    print(f"  instr ratio  : {result.instruction_ratio:.4f}")
    print(f"  miss rate    : {100 * result.original.miss_rate_acet:.2f}% -> "
          f"{100 * result.optimized.miss_rate_acet:.2f}%")
    if args.l2 is not None:
        def l2_rate(m):
            return 100.0 * m.l2_hits / m.l2_accesses if m.l2_accesses else 0.0

        print(f"  L2 hit rate  : {l2_rate(result.original):.2f}% -> "
              f"{l2_rate(result.optimized):.2f}%")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    base = default_grid(
        programs=args.programs,
        techs=tuple(args.techs),
        max_evaluations=args.budget,
    )
    spec = SweepSpec(
        programs=base.programs,
        config_ids=tuple(args.configs) if args.configs else base.config_ids,
        techs=base.techs,
        seed=base.seed,
        max_evaluations=args.budget,
        baseline=args.baseline,
    )
    if args.number == 3:
        print(render_figure3(figure3(spec)))
    elif args.number == 4:
        print(render_figure4(figure4(spec)))
    elif args.number == 5:
        print(render_figure5(figure5(args.factor, spec)))
    elif args.number == 7:
        print(render_figure7(figure7(spec)))
    elif args.number == 8:
        print(render_figure8(figure8(spec)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    l2_specs = tuple(args.l2) if args.l2 else (None,)
    if args.full:
        spec = full_grid(seed=args.seed, max_evaluations=args.budget)
        if args.kernel or args.l2 or args.refine:
            import dataclasses

            spec = dataclasses.replace(
                spec,
                kernel=args.kernel or spec.kernel,
                l2_specs=l2_specs if args.l2 else spec.l2_specs,
                refine=args.refine or spec.refine,
            )
        if args.programs or args.configs:
            print("note: --full overrides --programs/--configs", file=sys.stderr)
    else:
        base = default_grid(
            programs=args.programs,
            techs=tuple(args.techs),
            seed=args.seed,
            max_evaluations=args.budget,
        )
        spec = SweepSpec(
            programs=base.programs,
            config_ids=tuple(args.configs) if args.configs else base.config_ids,
            techs=base.techs,
            seed=args.seed,
            max_evaluations=args.budget,
            baseline=args.baseline,
            kernel=args.kernel,
            l2_specs=l2_specs,
            refine=args.refine,
        )
    if args.coordinator:
        return _cmd_sweep_fabric(args, spec)
    metrics = SweepMetrics()
    # In --json mode every human-readable line (progress + summary)
    # moves to stderr; stdout carries only the JSON document.
    out = sys.stderr if args.json else sys.stdout
    progress = None
    if not args.quiet:
        width = len(str(spec.size))

        def progress(usecase, result):
            done = metrics.cases
            print(f"[{done:>{width}}/{spec.size}] "
                  f"{usecase.program:<14s} {usecase.config_id:<4s} "
                  f"{usecase.tech:<5s} wcet {result.wcet_ratio:.3f} "
                  f"acet {result.acet_ratio:.3f} "
                  f"energy {result.energy_ratio:.3f}", file=out)

    cache_dir = "off" if args.no_cache else args.cache_dir
    # The CLI reports partial results itself, so the sweep never raises
    # on failures (max_failures=None); the exit code carries the policy.
    results = run_sweep(
        spec,
        progress=progress,
        use_cache=not args.no_cache,
        workers=args.workers,
        cache_dir=cache_dir,
        metrics=metrics,
        max_failures=None,
    )
    failures = list(metrics.failures)
    print(file=out)
    print(metrics.summary(), file=out)
    print(f"average improvement: "
          f"wcet {100 * (1 - average([r.wcet_ratio for r in results])):.1f}%, "
          f"acet {100 * (1 - average([r.acet_ratio for r in results])):.1f}%, "
          f"energy {100 * (1 - average([r.energy_ratio for r in results])):.1f}%",
          file=out)
    if args.json:
        from repro.experiments.report import sweep_to_json

        print(json.dumps(
            sweep_to_json(results, metrics=metrics, failures=failures),
            sort_keys=True,
        ))
    if len(failures) > max(args.max_failures, 0):
        print(f"error: {len(failures)} use case(s) failed permanently "
              f"(--max-failures {args.max_failures})", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep_fabric(args: argparse.Namespace, spec: SweepSpec) -> int:
    """Run ``repro sweep`` on a fabric coordinator, streaming results.

    Submits the resolved grid to ``--coordinator``, renders each
    streamed ``case``/``failure`` event as the usual progress line, and
    prints the final merged document (which is byte-compatible with the
    local ``--json`` output, plus a ``fabric`` section).
    """
    from repro.errors import ServiceError
    from repro.fabric.transport import split_base_url
    from repro.service.client import ServiceClient

    host, port = split_base_url(args.coordinator)
    client = ServiceClient(host, port)
    out = sys.stderr if args.json else sys.stdout

    # Head-based sampling at the client: a sampled traceparent on the
    # submit makes the coordinator join our trace id, so the whole
    # distributed sweep is retrievable under one id we know up front.
    traceparent = None
    trace_id = None
    if random.random() < max(0.0, min(1.0, args.trace_sample)):
        from repro.obs.trace import (
            SpanContext,
            format_traceparent,
            new_span_id,
            new_trace_id,
        )

        trace_id = new_trace_id()
        traceparent = format_traceparent(
            SpanContext(trace_id, new_span_id(), True)
        )

    record = client.submit_fabric_sweep(
        tenant=args.tenant,
        traceparent=traceparent,
        programs=list(spec.programs),
        configs=list(spec.config_ids),
        techs=list(spec.techs),
        budget=spec.max_evaluations,
        baseline=spec.baseline,
        seed=spec.seed,
        **({"kernel": spec.kernel} if spec.kernel else {}),
        **({"l2": list(spec.l2_specs)} if spec.l2_specs != (None,) else {}),
        **({"refine": True} if spec.refine else {}),
    )
    sweep_id = record["id"]
    total = record["cases"]
    width = len(str(total))
    print(f"fabric sweep {sweep_id} on {args.coordinator} "
          f"({total} cases, tenant {args.tenant})", file=out)
    if trace_id is not None:
        print(f"trace {trace_id} (repro trace {trace_id} "
              f"--service {args.coordinator})", file=out)
    done = 0
    try:
        for event, data in client.stream_sweep(sweep_id):
            if event == "case":
                done += 1
                if not args.quiet:
                    print(f"[{done:>{width}}/{total}] "
                          f"{data['program']:<14s} {data['config']:<4s} "
                          f"{data['tech']:<5s} "
                          f"wcet {data['wcet_ratio']:.3f} "
                          f"acet {data['acet_ratio']:.3f} "
                          f"energy {data['energy_ratio']:.3f} "
                          f"[{data['worker']}]", file=out)
            elif event == "failure" and not args.quiet:
                print(f"FAILED {data['program']} {data['config']} "
                      f"{data['tech']}: {data['error_type']}: "
                      f"{data['message']}", file=out)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    document = client.fabric_result(sweep_id)
    summary = document["summary"]
    fabric = document["fabric"]
    print(file=out)
    print(f"{summary['cases']} cases, {summary['failed']} failed | "
          f"{fabric['shards']} shards "
          f"({fabric['shards_requeued']} requeued, "
          f"{fabric['steals']} stolen)", file=out)
    improvement = summary["average_improvement"]
    print(f"average improvement: "
          f"wcet {100 * improvement['wcet']:.1f}%, "
          f"acet {100 * improvement['acet']:.1f}%, "
          f"energy {100 * improvement['energy']:.1f}%", file=out)
    if args.json:
        print(json.dumps(document, sort_keys=True))
    failed = summary["failed"]
    if failed > max(args.max_failures, 0):
        print(f"error: {failed} use case(s) failed permanently "
              f"(--max-failures {args.max_failures})", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.app import BackgroundServer, build_service, run_server

    cache_dir = "off" if args.no_cache else args.cache_dir
    build_kwargs = dict(
        workers=args.workers,
        cache_dir=cache_dir,
        max_queue=args.queue_size,
        job_timeout_s=args.job_timeout,
        coordinator=args.coordinator,
        worker_urls=tuple(args.worker_urls),
        lease_timeout_s=args.lease_timeout,
        steal_after_s=args.steal_after,
        shard_size=args.shard_size,
        trace_sample=args.trace_sample,
        service_name=(
            "coordinator" if args.coordinator
            else "worker" if args.coordinator_url
            else None
        ),
    )

    if args.self_check:
        # Boot on an ephemeral port, prove /healthz answers, tear down.
        from repro.service.client import ServiceClient

        with BackgroundServer(host=args.host, port=0,
                              **build_kwargs) as server:
            client = ServiceClient(server.host, server.port)
            health = client.health()
            print(f"self-check: {server.url}/healthz -> "
                  f"{health.get('status')} "
                  f"(version {health.get('version')}, "
                  f"workers {health['executor']['workers']})")
            ok = health.get("status") == "ok"
        return 0 if ok else 1

    async def _serve() -> None:
        app = build_service(**build_kwargs)

        def ready(port: int) -> None:
            role = "coordinator" if args.coordinator else "service"
            print(f"repro {role} listening on http://{args.host}:{port} "
                  f"(workers {app.executor.workers}, "
                  f"queue {args.queue_size})", flush=True)
            if args.coordinator_url:
                # Self-registration happens off the event loop: the
                # coordinator may not be up yet, and the retry loop
                # must not block this node from serving shards.
                import threading

                from repro.fabric.worker import register_with_coordinator

                worker_url = f"http://{args.host}:{port}"
                threading.Thread(
                    target=register_with_coordinator,
                    args=(args.coordinator_url, worker_url),
                    kwargs={"capacity": app.executor.workers},
                    name="repro-fabric-register",
                    daemon=True,
                ).start()

        await run_server(app, host=args.host, port=args.port, ready=ready)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Fetch one trace and render it as a span tree (or export it)."""
    from repro.errors import ServiceError
    from repro.fabric.transport import split_base_url
    from repro.obs.export import render_span_tree, to_chrome_trace
    from repro.service.client import ServiceClient

    host, port = split_base_url(args.service)
    client = ServiceClient(host, port)
    try:
        document = client.trace(args.trace_id)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    spans = document.get("spans", [])
    if args.json:
        print(json.dumps(document, sort_keys=True))
    else:
        print(f"trace {args.trace_id} ({len(spans)} spans)")
        print(render_span_tree(spans))
    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            json.dump(to_chrome_trace(spans), handle)
        print(f"exported Chrome-trace JSON to {args.export}",
              file=sys.stderr)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        for row in table1():
            print(f"{row.program_id:<5} {row.name}")
    else:
        for row in table2():
            print(f"{row.config_id:<4} ({row.associativity}, "
                  f"{row.block_size}, {row.capacity})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    dispatch = {
        "list-programs": lambda: _cmd_list_programs(),
        "list-configs": lambda: _cmd_list_configs(),
        "optimize": lambda: _cmd_optimize(args),
        "usecase": lambda: _cmd_usecase(args),
        "figure": lambda: _cmd_figure(args),
        "sweep": lambda: _cmd_sweep(args),
        "serve": lambda: _cmd_serve(args),
        "table": lambda: _cmd_table(args),
        "trace": lambda: _cmd_trace(args),
    }
    try:
        return dispatch[args.command]()
    except BrokenPipeError:  # output piped into head & friends
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
