"""Microbenchmark of the vectorized abstract-domain kernel.

Runs the full multi-pass ``optimize`` loop — the workload the kernel
exists to accelerate — under both ``kernel="python"`` (the oracle) and
``kernel="vectorized"`` (the dense numpy kernel), on the same programs
and configuration.  For each run the pipeline's per-stage wall-clock
profile is captured, and the headline figure is the speedup on the
**fixpoint + classify** stages: the abstract-interpretation work the
kernel replaces.  Structural stages (ACFG construction, schedule
compilation) and the ILP are shared between kernels and excluded from
the headline, but reported for context.

Outcome bit-identity (τ_final, misses, passes, prefetches) between the
two kernels is always verified — a benchmark that got faster by
computing something else is a bug, not a result.

Usage::

    python benchmarks/bench_kernels.py [--output BENCH_kernels.json]
        [--repeats 2] [--check]

``--check`` exits non-zero unless the primary program's best-of-repeats
fixpoint+classify speedup is >= 3x and all outcomes match.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Dict

from repro.analysis.pipeline import AnalysisPipeline, PipelineStats
from repro.bench.registry import load
from repro.cache.config import TABLE2
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import cacti_model
from repro.energy.technology import technology

CONFIG_ID = "k1"
TECH = "45nm"
KERNELS = ("python", "vectorized")
#: The stages the vectorized kernel replaces; everything else
#: (acfg/schedule compilation, guard, ipet) is common infrastructure.
KERNEL_STAGES = ("fixpoint", "classify")
#: First program is the primary (largest hot loop: 42 accepted
#: prefetches, ~840 candidate evaluations); ``--check`` gates on it.
PROGRAMS = ("fdct", "ndes")
MIN_SPEEDUP = 3.0


def run_once(program: str, kernel: str) -> Dict[str, Any]:
    """One full optimize run; returns stage profile + outcome."""
    config = TABLE2[CONFIG_ID]
    timing = cacti_model(config, technology(TECH)).timing_model()
    options = OptimizerOptions(kernel=kernel)
    stats = PipelineStats()
    pipeline = AnalysisPipeline.for_options(
        config, timing, options, stats=stats
    )
    start = time.perf_counter()
    _, report = optimize(
        load(program), config, timing, options, pipeline=pipeline
    )
    total_s = time.perf_counter() - start
    profile = stats.profile()
    return {
        "kernel": kernel,
        "total_s": round(total_s, 3),
        "kernel_stages_s": round(
            sum(profile.get(stage, 0.0) for stage in KERNEL_STAGES), 3
        ),
        "profile": {k: round(v, 3) for k, v in sorted(profile.items())},
        "counters": stats.counters(),
        "outcome": {
            "tau_final": report.tau_final,
            "misses_final": report.misses_final,
            "passes": report.passes,
            "prefetches": report.prefetch_count,
            "candidates_evaluated": report.candidates_evaluated,
        },
    }


def bench_program(program: str, repeats: int) -> Dict[str, Any]:
    """Best-of-``repeats`` for both kernels on one program."""
    runs: Dict[str, list] = {kernel: [] for kernel in KERNELS}
    for attempt in range(repeats):
        for kernel in KERNELS:
            print(
                f"  {program}/{kernel} run {attempt + 1}/{repeats}...",
                file=sys.stderr,
            )
            runs[kernel].append(run_once(program, kernel))

    best = {
        kernel: min(rows, key=lambda r: r["kernel_stages_s"])
        for kernel, rows in runs.items()
    }
    outcomes = [r["outcome"] for rows in runs.values() for r in rows]
    outcomes_match = all(o == outcomes[0] for o in outcomes)
    speedup = (
        best["python"]["kernel_stages_s"]
        / best["vectorized"]["kernel_stages_s"]
    )
    return {
        "program": program,
        "repeats": repeats,
        "python": best["python"],
        "vectorized": best["vectorized"],
        "speedup_kernel_stages": round(speedup, 2),
        "speedup_total": round(
            best["python"]["total_s"] / best["vectorized"]["total_s"], 2
        ),
        "outcomes_match": outcomes_match,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_kernels.json")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"require >= {MIN_SPEEDUP}x fixpoint+classify speedup on "
        f"{PROGRAMS[0]} and bit-identical outcomes",
    )
    args = parser.parse_args(argv)

    rows = []
    for program in PROGRAMS:
        print(
            f"benchmarking kernels on {program} ({CONFIG_ID}/{TECH})...",
            file=sys.stderr,
        )
        row = bench_program(program, args.repeats)
        print(
            f"  {row['speedup_kernel_stages']:.2f}x fixpoint+classify "
            f"({row['python']['kernel_stages_s']:.2f}s -> "
            f"{row['vectorized']['kernel_stages_s']:.2f}s), "
            f"{row['speedup_total']:.2f}x total, "
            f"outcomes match: {row['outcomes_match']}",
            file=sys.stderr,
        )
        rows.append(row)

    document = {
        "bench": "kernels",
        "config": CONFIG_ID,
        "tech": TECH,
        "kernel_stages": list(KERNEL_STAGES),
        "primary_program": PROGRAMS[0],
        "python": platform.python_version(),
        "machine": platform.machine(),
        "programs": rows,
        "primary_speedup_kernel_stages": rows[0]["speedup_kernel_stages"],
        "all_outcomes_match": all(r["outcomes_match"] for r in rows),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)

    failures = []
    if not document["all_outcomes_match"]:
        failures.append("kernel outcomes differ between python/vectorized")
    if args.check and document["primary_speedup_kernel_stages"] < MIN_SPEEDUP:
        failures.append(
            f"{PROGRAMS[0]} fixpoint+classify speedup "
            f"{document['primary_speedup_kernel_stages']}x < {MIN_SPEEDUP}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
