"""Figure 8 — executed-instruction overhead.

Paper: the optimized programs execute at most 1.32 % more instructions
than the originals — the prefetches are few and cheap.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.figures import figure8
from repro.experiments.report import render_figure8


def test_fig8_instruction_overhead(benchmark, sweep_spec, results_dir):
    data = benchmark.pedantic(figure8, args=(sweep_spec,), rounds=1, iterations=1)
    text = render_figure8(data)
    emit(results_dir, "fig8", text)
    assert data.max_increase >= 0.0
    # same order of magnitude as the paper's 1.32 % ceiling
    assert data.max_increase < 0.10, "prefetch overhead must stay marginal"
    for ratio in data.per_capacity.points.values():
        assert 1.0 <= ratio < 1.05
