"""Table 1 — program identification.

Regenerates the paper's benchmark inventory (37 Mälardalen programs,
ids p1..p37) and reports per-program model statistics.
"""

from __future__ import annotations

from conftest import emit

from repro.bench.registry import load
from repro.experiments.tables import evaluation_matrix, table1


def _render() -> str:
    lines = [
        "Table 1 — program identification (37 Malardalen structural clones)",
        f"{'id':<5} {'program':<15} {'instrs':>7} {'code B':>7} {'loops':>6}",
    ]
    for row in table1():
        cfg = load(row.name)
        lines.append(
            f"{row.program_id:<5} {row.name:<15} {cfg.instruction_count:>7d} "
            f"{cfg.instruction_count * 4:>7d} {len(cfg.loops):>6d}"
        )
    programs, configs, techs, cases = evaluation_matrix()
    lines.append(
        f"evaluation matrix: {programs} programs x {configs} configs x "
        f"{techs} technologies = {cases} use cases (paper: 2664)"
    )
    return "\n".join(lines)


def test_table1_programs(benchmark, results_dir):
    text = benchmark.pedantic(_render, rounds=1, iterations=1)
    emit(results_dir, "table1", text)
    assert text.count("\n") >= 38
    assert "2664" in text
