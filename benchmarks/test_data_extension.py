"""Extension bench — unlocked data-cache prefetching (paper §6).

Not a figure of the paper (it is the announced future work); this bench
records what the generalization achieves on representative data-heavy
kernels: combined instruction+data WCET before/after, data-miss bounds,
and the simulated average case.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.timing import TimingModel
from repro.cache.config import CacheConfig
from repro.data.analysis import combined_wcet
from repro.data.machine import simulate_split
from repro.data.prefetch import optimize_data
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder

ICACHE = CacheConfig(2, 16, 512)
DCACHE = CacheConfig(2, 16, 256)
TIMING = TimingModel(1, 30, 1)


def _fir():
    b = ProgramBuilder("fir")
    b.data_region("coef", 64)
    b.data_region("x", 8192)
    b.code(4)
    with b.loop(bound=48, sim_iterations=40):
        b.load("x", stride=4)
        b.code(2)
        b.load("coef", offset=0)
        b.code(2)
        b.load("coef", offset=32)
        b.code(3)
        b.store("x", offset=4096, stride=4)
    b.code(2)
    return b.build()


def _table_lookup():
    b = ProgramBuilder("lut")
    b.data_region("lut", 128)
    b.data_region("input", 4096)
    b.code(4)
    with b.loop(bound=40, sim_iterations=32):
        b.load("input", stride=4)
        b.code(2)
        b.load("lut", offset=0)
        b.load("lut", offset=64)
        b.code(4)
    b.code(2)
    return b.build()


def _matrix_row():
    b = ProgramBuilder("matrow")
    b.data_region("row", 256)
    b.data_region("vec", 256)
    b.code(4)
    with b.loop(bound=16, sim_iterations=16):
        b.load("row", stride=16)
        b.load("vec", stride=16)
        b.code(5)
    b.code(2)
    return b.build()


def test_data_extension(benchmark, results_dir):
    def run():
        rows = []
        for factory in (_fir, _table_lookup, _matrix_row):
            cfg = factory()
            acfg = build_acfg(cfg, ICACHE.block_size)
            before = combined_wcet(acfg, ICACHE, DCACHE, TIMING)
            optimized, report = optimize_data(cfg, ICACHE, DCACHE, TIMING)
            base_sim = simulate_split(cfg, ICACHE, DCACHE, TIMING, seed=1)
            opt_sim = simulate_split(optimized, ICACHE, DCACHE, TIMING, seed=1)
            rows.append(
                (
                    cfg.name,
                    before.tau_w,
                    report.tau_final,
                    before.data_misses,
                    report.data_misses_final,
                    len(report.inserted),
                    base_sim.memory_cycles,
                    opt_sim.memory_cycles,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Extension — data-cache prefetching (paper §6 future work)",
        f"{'kernel':<9} {'τ_w before':>11} {'τ_w after':>10} "
        f"{'dmiss':>6} {'after':>6} {'dpf':>4} {'sim cyc':>9} {'after':>8}",
    ]
    for name, tb, ta, mb, ma, pf, sb, sa in rows:
        lines.append(
            f"{name:<9} {tb:>11.0f} {ta:>10.0f} {mb:>6d} {ma:>6d} "
            f"{pf:>4d} {sb:>9.0f} {sa:>8.0f}"
        )
    emit(results_dir, "data_extension", "\n".join(lines))
    for name, tb, ta, mb, ma, pf, sb, sa in rows:
        assert ta <= tb + 1e-6, f"{name}: combined WCET must not grow"
        assert ma <= mb, f"{name}: data-miss bound must not grow"
