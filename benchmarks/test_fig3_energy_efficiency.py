"""Figure 3 — impact on energy efficiency.

Paper: average improvement of 11.2 % (energy), 10.2 % (ACET), 17.4 %
(WCET) across the sweep; energy savings for all use cases without
increasing the memory's ACET contribution.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.figures import figure3
from repro.experiments.report import render_figure3


def test_fig3_energy_efficiency(benchmark, sweep_spec, results_dir):
    data = benchmark.pedantic(figure3, args=(sweep_spec,), rounds=1, iterations=1)
    text = render_figure3(data)
    emit(results_dir, "fig3", text)
    # Shape checks (who wins, direction), not absolute numbers:
    assert data.overall_wcet >= 0.0, "Theorem 1 must hold on average too"
    assert data.overall_energy > 0.0, "optimization must save energy overall"
    assert data.overall_acet >= 0.0, "Condition 3: ACET must not degrade"
    # the 6-point (3 at smoke scale) capacity axis is present
    assert len(data.energy.points) >= 3
