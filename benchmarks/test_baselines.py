"""Baselines: hardware prefetchers and cache locking vs the paper's
software prefetching (Sections 2 and 6).

The paper motivates WCET-driven software prefetching against (a) the
classical hardware prefetchers, which spend energy guessing, and (b)
cache locking, which buys predictability with performance.  This bench
runs all of them on the same workloads and prints the comparison the
paper's related-work section argues qualitatively.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.wcet import analyze_wcet
from repro.cache.config import CacheConfig
from repro.bench.registry import load
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import cacti_model
from repro.energy.dram import DRAMModel
from repro.energy.metrics import account_energy
from repro.energy.technology import TECH_45NM
from repro.program.acfg import build_acfg
from repro.sim.locking import (
    locked_wcet,
    optimize_with_locking,
    select_locked_blocks,
    simulate_locked,
)
from repro.sim.machine import simulate
from repro.sim.prefetchers import (
    NextLinePrefetcher,
    TargetPrefetcher,
    WrongPathPrefetcher,
)

CONFIG = CacheConfig(2, 16, 512)
MODEL = cacti_model(CONFIG, TECH_45NM)
TIMING = MODEL.timing_model()
DRAM = DRAMModel(TECH_45NM)
PROGRAMS = ("fdct", "compress", "ndes", "statemate")


def _energy(sim_result):
    return account_energy(sim_result.event_counts(), MODEL, DRAM).total_j


def _one_program(name):
    cfg = load(name)
    rows = []

    base = simulate(cfg, CONFIG, TIMING, seed=1)
    acfg = build_acfg(cfg, CONFIG.block_size)
    base_wcet = analyze_wcet(acfg, CONFIG, TIMING).tau_w
    rows.append(("on-demand", base.memory_cycles, base_wcet, _energy(base)))

    for label, prefetcher in (
        ("hw next-line", NextLinePrefetcher("miss", degree=1)),
        ("hw next-2-line", NextLinePrefetcher("always", degree=2)),
        ("hw target (RPT)", TargetPrefetcher()),
        ("hw wrong-path", WrongPathPrefetcher()),
    ):
        sim = simulate(cfg, CONFIG, TIMING, seed=1, prefetcher=prefetcher)
        # hardware prefetching is invisible to (and unsupported by) the
        # WCET analysis: the guaranteed bound stays the on-demand one
        rows.append((label, sim.memory_cycles, base_wcet, _energy(sim)))

    locked = select_locked_blocks(acfg, CONFIG)
    lock_sim = simulate_locked(cfg, CONFIG, TIMING, locked, seed=1)
    lock_wcet = locked_wcet(acfg, TIMING, locked).objective
    rows.append(("cache locking", lock_sim.memory_cycles, lock_wcet, _energy(lock_sim)))

    optimized, report = optimize(
        cfg, CONFIG, TIMING, options=OptimizerOptions(max_evaluations=80)
    )
    sw_sim = simulate(optimized, CONFIG, TIMING, seed=1)
    rows.append(
        ("sw prefetch (paper)", sw_sim.memory_cycles, report.tau_final, _energy(sw_sim))
    )

    # Hybrid lock+prefetch ([16]/[2], the paper's planned comparison).
    locked, hybrid_cfg, hybrid_report, residual = optimize_with_locking(
        cfg, CONFIG, TIMING, locked_ways=1,
        options=OptimizerOptions(max_evaluations=80),
    )
    hybrid_sim = simulate(
        hybrid_cfg, residual, TIMING, seed=1, locked_blocks=locked
    )
    rows.append(
        (
            "lock+prefetch hybrid",
            hybrid_sim.memory_cycles,
            hybrid_report.tau_final,
            _energy(hybrid_sim),
        )
    )
    return rows


def test_baseline_shootout(benchmark, results_dir):
    all_rows = benchmark.pedantic(
        lambda: {name: _one_program(name) for name in PROGRAMS},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"Baselines — ACET / guaranteed WCET / energy on {CONFIG.label()} @45nm"
    ]
    for name, rows in all_rows.items():
        lines.append(f"\n{name}:")
        lines.append(
            f"  {'scheme':<20} {'ACET cyc':>10} {'WCET cyc':>10} {'energy nJ':>10}"
        )
        for label, acet, wcet, energy in rows:
            lines.append(
                f"  {label:<20} {acet:>10.0f} {wcet:>10.0f} {energy * 1e9:>10.1f}"
            )
    emit(results_dir, "baselines", "\n".join(lines))

    for name, rows in all_rows.items():
        schemes = {label: (acet, wcet, energy) for label, acet, wcet, energy in rows}
        base_acet, base_wcet, base_energy = schemes["on-demand"]
        sw_acet, sw_wcet, sw_energy = schemes["sw prefetch (paper)"]
        # software prefetching never worsens the guaranteed bound...
        assert sw_wcet <= base_wcet + 1e-6
        # ...nor the simulated ACET; energy may tie within the physical
        # prefetch-transfer charge (see EXPERIMENTS.md on paper-mode)
        assert sw_acet <= base_acet + 1e-6
        assert sw_energy <= base_energy * 1.02
