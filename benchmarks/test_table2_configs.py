"""Table 2 — cache configurations.

Regenerates the 36 configurations k1..k36 together with their derived
CACTI-model figures per technology.
"""

from __future__ import annotations

from conftest import emit

from repro.cache.config import TABLE2
from repro.energy.cacti import cacti_model
from repro.energy.technology import TECH_32NM, TECH_45NM
from repro.experiments.tables import table2


def _render() -> str:
    lines = [
        "Table 2 — cache configurations k = (a, b, c)",
        f"{'id':<5} {'a':>2} {'b':>3} {'c':>5}  "
        f"{'rd pJ@45':>9} {'leak uW@45':>11} {'miss cyc@45':>12} {'miss cyc@32':>12}",
    ]
    for row in table2():
        config = TABLE2[row.config_id]
        m45 = cacti_model(config, TECH_45NM)
        m32 = cacti_model(config, TECH_32NM)
        lines.append(
            f"{row.config_id:<5} {row.associativity:>2d} {row.block_size:>3d} "
            f"{row.capacity:>5d}  {m45.read_energy_j * 1e12:>9.2f} "
            f"{m45.leakage_w * 1e6:>11.1f} {m45.miss_penalty_cycles:>12d} "
            f"{m32.miss_penalty_cycles:>12d}"
        )
    return "\n".join(lines)


def test_table2_configs(benchmark, results_dir):
    text = benchmark.pedantic(_render, rounds=1, iterations=1)
    emit(results_dir, "table2", text)
    assert text.count("k") >= 36
