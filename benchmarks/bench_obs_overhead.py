"""Microbenchmark of tracing overhead on the analysis pipeline.

Times the same multi-pass ``optimize`` loop twice — once with the
module-default tracer disabled (the production default: every span call
returns the no-op singleton) and once fully sampled into an in-memory
collector under an active root span — and reports the relative cost.

Two figures gate the observability layer's "near zero when off" claim:

* ``noop_ns`` — nanoseconds per ``start_span`` call on the disabled
  path, measured over a tight loop.  This is the only cost untraced
  runs pay at each instrumentation point.
* ``overhead_pct`` — wall-clock penalty of fully-sampled tracing on
  ``optimize``.  ``--check`` gates on it (default limit 25%); the
  tracing-disabled regression is guarded separately by
  ``bench_pipeline.py --check`` against its recorded baseline.

Usage::

    python benchmarks/bench_obs_overhead.py
        [--output BENCH_obs_overhead.json] [--budget 60] [--repeats 3]
        [--limit-pct 25] [--check]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Dict

from repro.bench.registry import load
from repro.cache.config import TABLE2
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import cacti_model
from repro.energy.technology import technology
from repro.obs.trace import SpanCollector, Tracer, configure, use_span

PROGRAM = "ndes"
CONFIG_ID = "k1"
TECH = "45nm"
BUDGET = 60
NOOP_CALLS = 200_000


def _run_optimize(budget: int) -> float:
    config = TABLE2[CONFIG_ID]
    timing = cacti_model(config, technology(TECH)).timing_model()
    options = OptimizerOptions(max_evaluations=budget)
    start = time.perf_counter()
    optimize(load(PROGRAM), config, timing, options=options)
    return time.perf_counter() - start


def bench_noop_dispatch() -> float:
    """ns per ``start_span`` when tracing is disabled (the default)."""
    tracer = Tracer(service="bench")  # sample=0.0, no sink: always no-op
    start = time.perf_counter()
    for _ in range(NOOP_CALLS):
        tracer.start_span("pipeline.fixpoint", aggregate=True)
    elapsed = time.perf_counter() - start
    return elapsed / NOOP_CALLS * 1e9


def bench_modes(budget: int, repeats: int) -> Dict[str, Any]:
    """Best-of-N optimize wall time, tracing off vs fully sampled."""
    off_s = []
    on_s = []
    spans_recorded = 0
    # Interleave the modes so drift (thermal, other tenants) hits both.
    for _ in range(repeats):
        off_s.append(_run_optimize(budget))

        collector = SpanCollector(limit=100_000)
        tracer = configure(service="bench", sample=1.0, sink=collector.add)
        try:
            root = tracer.start_span("bench.optimize", root=True)
            with use_span(root):
                on_s.append(_run_optimize(budget))
            root.end()
            spans_recorded = max(spans_recorded, len(collector.drain()))
        finally:
            configure(sample=0.0, sink=None)  # restore the disabled default

    best_off = min(off_s)
    best_on = min(on_s)
    return {
        "off_s": round(best_off, 4),
        "on_s": round(best_on, 4),
        "overhead_pct": round((best_on - best_off) / best_off * 100.0, 2),
        "spans_recorded": spans_recorded,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_obs_overhead.json")
    parser.add_argument("--budget", type=int, default=BUDGET)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--limit-pct", type=float, default=25.0,
        help="--check fails if fully-sampled overhead exceeds this",
    )
    parser.add_argument("--check", action="store_true")
    args = parser.parse_args(argv)

    print(f"timing no-op span dispatch ({NOOP_CALLS} calls)...",
          file=sys.stderr)
    noop_ns = bench_noop_dispatch()
    print(f"  {noop_ns:.0f} ns/call", file=sys.stderr)

    print(f"benchmarking optimize on {PROGRAM} ({CONFIG_ID}/{TECH}, "
          f"budget {args.budget}, {args.repeats} repeats)...",
          file=sys.stderr)
    modes = bench_modes(args.budget, args.repeats)
    print(
        f"  tracing off {modes['off_s']:.3f}s, "
        f"on {modes['on_s']:.3f}s "
        f"({modes['overhead_pct']:+.1f}%, "
        f"{modes['spans_recorded']} spans)",
        file=sys.stderr,
    )

    document = {
        "bench": "obs_overhead",
        "program": PROGRAM,
        "config": CONFIG_ID,
        "tech": TECH,
        "budget": args.budget,
        "repeats": args.repeats,
        "noop_ns_per_call": round(noop_ns, 1),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **modes,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)

    failures = []
    if args.check and modes["overhead_pct"] > args.limit_pct:
        failures.append(
            f"sampled tracing overhead {modes['overhead_pct']}% "
            f"> {args.limit_pct}% limit"
        )
    if args.check and modes["spans_recorded"] == 0:
        failures.append("sampled run recorded no spans")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
