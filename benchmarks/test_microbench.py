"""Micro-benchmarks of the analysis substrate.

Unlike the figure/table benches (one-shot regenerations), these measure
the throughput of the hot analysis kernels with pytest-benchmark's
normal multi-round timing — the numbers that govern how large a sweep
is affordable.
"""

from __future__ import annotations

import pytest

from repro.analysis.structural import solve_wcet_path
from repro.analysis.timing import TimingModel
from repro.analysis.wcet import analyze_wcet
from repro.bench.registry import load
from repro.cache.classify import analyze_cache
from repro.cache.config import CacheConfig
from repro.core.update import collect_reverse_events
from repro.program.acfg import build_acfg
from repro.sim.machine import simulate

CONFIG = CacheConfig(1, 16, 256)
TIMING = TimingModel(1, 30, 1)


@pytest.fixture(scope="module")
def adpcm_acfg():
    return build_acfg(load("adpcm"), CONFIG.block_size)


def test_perf_acfg_construction(benchmark):
    cfg = load("adpcm")
    acfg = benchmark(build_acfg, cfg, CONFIG.block_size)
    assert acfg.ref_count > 500


def test_perf_must_may_persistence_classification(benchmark, adpcm_acfg):
    analysis = benchmark(analyze_cache, adpcm_acfg, CONFIG)
    assert analysis.count is not None


def test_perf_wcet_analysis_must_only(benchmark, adpcm_acfg):
    result = benchmark(
        analyze_wcet, adpcm_acfg, CONFIG, TIMING, with_may=False
    )
    assert result.tau_w > 0


def test_perf_path_solver(benchmark, adpcm_acfg):
    times = [2.0 if v.is_ref else 0.0 for v in adpcm_acfg.iter_topological()]
    solution = benchmark(solve_wcet_path, adpcm_acfg, times)
    assert solution.objective > 0


def test_perf_reverse_analysis(benchmark, adpcm_acfg):
    wcet = analyze_wcet(adpcm_acfg, CONFIG, TIMING, with_may=False)
    events = benchmark(
        collect_reverse_events, adpcm_acfg, CONFIG, wcet.solution
    )
    assert isinstance(events, list)


def test_perf_trace_simulation(benchmark):
    cfg = load("adpcm")
    result = benchmark(simulate, cfg, CONFIG, TIMING, 1)
    assert result.fetches > 1000
