"""Shared configuration of the benchmark harness.

Every figure/table of the paper has one module here; each prints its
rows (paper reference value alongside the measured one) and stores the
rendered text under ``results/``.

Scale selection
---------------
The sweep grid is controlled by the ``REPRO_BENCH_SCALE`` environment
variable:

* ``smoke``   — 10 representative programs × 3 capacities × both
  technologies, optimization budget 60 (minutes).
* ``default`` — all 37 programs × 6 capacities (one (a=1, b=16)
  configuration per capacity) × both technologies, budget 120 — the
  documented representative subset of the paper's 2664-case grid.
* ``full``    — the paper's complete 36-configuration grid (offline;
  hours).

Within one pytest session all figure benches share the sweep through
the process-wide cache in :mod:`repro.experiments.sweep`; *across*
sessions they share the persistent per-use-case disk cache
(:mod:`repro.experiments.cache`), which this conftest points at
``results/sweep-cache`` unless ``REPRO_SWEEP_CACHE_DIR`` is already set
(export ``REPRO_SWEEP_CACHE_DIR=off`` to force recomputation, e.g.
after changing result-affecting code without bumping
``repro.experiments.cache.CODE_VERSION``).  ``REPRO_SWEEP_WORKERS``
selects the process fan-out of the underlying sweeps.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.sweep import SweepSpec, default_grid, full_grid

#: Fast, structurally diverse subset used at smoke scale.
SMOKE_PROGRAMS = (
    "bs",
    "bsort100",
    "crc",
    "compress",
    "fdct",
    "fir",
    "matmult",
    "ndes",
    "statemate",
    "whet",
)

#: Figure 5 re-optimizes every program for two extra (scaled) cache
#: configurations; at default scale it runs this documented
#: representative subset (sizes from 29 to ~1000 instructions).
FIG5_PROGRAMS = (
    "bs",
    "cnt",
    "compress",
    "crc",
    "fdct",
    "fir",
    "lms",
    "matmult",
    "ndes",
    "qurt",
    "statemate",
    "whet",
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Share one persistent sweep cache across every benchmark process so a
# re-run (or a crashed full-grid session) only pays for new use cases.
os.environ.setdefault(
    "REPRO_SWEEP_CACHE_DIR", str(RESULTS_DIR / "sweep-cache")
)


def bench_scale() -> str:
    """The selected scale (``smoke``/``default``/``full``)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke").lower()
    if scale not in ("smoke", "default", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke/default/full, got {scale}")
    return scale


def make_spec() -> SweepSpec:
    """The sweep grid for the selected scale."""
    scale = bench_scale()
    if scale == "smoke":
        base = default_grid(programs=SMOKE_PROGRAMS, max_evaluations=60)
        return SweepSpec(
            programs=base.programs,
            config_ids=(base.config_ids[0], base.config_ids[2], base.config_ids[5]),
            techs=base.techs,
            seed=base.seed,
            max_evaluations=base.max_evaluations,
        )
    if scale == "default":
        return default_grid(max_evaluations=120)
    return full_grid(max_evaluations=120)


@pytest.fixture(scope="session")
def sweep_spec() -> SweepSpec:
    """Session-wide sweep grid."""
    return make_spec()


@pytest.fixture(scope="session")
def fig5_spec(sweep_spec) -> SweepSpec:
    """Figure 5's grid: the session grid at smoke scale, the FIG5
    subset at default/full scale."""
    if bench_scale() == "smoke":
        return sweep_spec
    return default_grid(programs=FIG5_PROGRAMS, max_evaluations=120)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the rendered figure/table text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered figure and persist it under ``results/``."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
