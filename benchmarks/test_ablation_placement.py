"""Ablation — prefetch placement strategy (Section 2.2 of the paper).

The paper criticises the earlier WCET-prefetching work [5] for
inserting the prefetch "at the beginning of the basic block where the
prefetched instruction belongs", where "the distance between them might
be insufficient to hide the latency".  Both strategies are implemented;
this bench quantifies the criticism on cache-pressured programs.
"""

from __future__ import annotations

from conftest import emit

from repro.bench.registry import load
from repro.cache.config import CacheConfig
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import cacti_model
from repro.energy.technology import TECH_45NM

CONFIG = CacheConfig(1, 16, 256)
TIMING = cacti_model(CONFIG, TECH_45NM).timing_model()
PROGRAMS = ("fdct", "jfdctint", "statemate", "ndes")


def _run(strategy: str):
    rows = []
    for name in PROGRAMS:
        cfg = load(name)
        _, report = optimize(
            cfg,
            CONFIG,
            TIMING,
            options=OptimizerOptions(
                placement=strategy, max_evaluations=120
            ),
        )
        rows.append((name, report.prefetch_count, report.wcet_reduction))
    return rows


def test_ablation_placement(benchmark, results_dir):
    data = benchmark.pedantic(
        lambda: {
            "earliest-survivable": _run("earliest-survivable"),
            "block-begin": _run("block-begin"),
        },
        rounds=1,
        iterations=1,
    )
    lines = [
        "Ablation — placement strategy (paper vs ref. [5])",
        f"{'program':<12} {'paper pf':>9} {'paper ΔWCET':>12} "
        f"{'[5] pf':>7} {'[5] ΔWCET':>10}",
    ]
    paper_rows = {r[0]: r for r in data["earliest-survivable"]}
    ref5_rows = {r[0]: r for r in data["block-begin"]}
    total_paper = total_ref5 = 0.0
    for name in PROGRAMS:
        _, p_pf, p_dw = paper_rows[name]
        _, b_pf, b_dw = ref5_rows[name]
        total_paper += p_dw
        total_ref5 += b_dw
        lines.append(
            f"{name:<12} {p_pf:>9d} {100 * p_dw:>11.1f}% "
            f"{b_pf:>7d} {100 * b_dw:>9.1f}%"
        )
    lines.append(
        "(the paper's placement wins because the replacement point "
        "maximises the slack\n available to hide Λ; block-begin often "
        "leaves too little distance)"
    )
    emit(results_dir, "ablation_placement", "\n".join(lines))
    # The paper's criticism must be measurable: its placement strictly
    # dominates on aggregate.
    assert total_paper >= total_ref5