"""Benchmark of the distributed sweep fabric's scheduling overlap.

Runs the same cold-cache grid twice — serially with ``run_sweep`` and
distributed across a coordinator + two local workers — and reports the
wall-clock speedup.  Case results are verified bit-identical between
the two runs (same ``kernel="vectorized"`` both sides); a fabric that
got faster by computing something else is a bug, not a result.

**Methodology — the latency pad.**  This benchmark is honest on a
single-CPU machine, where two worker processes cannot overlap *CPU*
work.  What the fabric actually buys is overlapping each case's
*latency* — in production the per-case analysis runs on another
machine; here the same effect is injected deterministically: the
``REPRO_FAULT_PLAN`` ``hang`` fault sleeps ``PAD_S`` at the start of
every attempt of every case, in both runs identically.  The serial run
pays every pad back-to-back; the fabric overlaps pads across its two
workers, exactly as it would overlap remote compute.  The pad changes
no result (it only sleeps), and the compute portion is identical and
serialized either way, so the measured ratio isolates what the
coordinator's scheduling actually contributes.

Usage::

    python benchmarks/bench_fabric.py [--output BENCH_fabric.json]
        [--pad 2.5] [--check]

``--check`` exits non-zero unless the fabric run is >= 1.6x faster at
2 workers and all case documents match.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

from repro.experiments.report import sweep_to_json
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.service.app import BackgroundServer
from repro.service.client import ServiceClient

GRID = dict(programs=["bs", "prime", "fibcall"], configs=["k1", "k2"],
            techs=["45nm"], budget=10)
SPEC = SweepSpec(
    programs=("bs", "prime", "fibcall"),
    config_ids=("k1", "k2"),
    techs=("45nm",),
    max_evaluations=10,
    kernel="vectorized",
)
WORKERS = 2
PAD_S = 2.5
MIN_SPEEDUP = 1.6


def _pad_plan(pad_s: float) -> str:
    """Hang every attempt of every case for ``pad_s`` seconds."""
    return json.dumps(
        {"*": {"kind": "hang", "attempts": [1, 2, 3], "seconds": pad_s}}
    )


def run_serial() -> Dict[str, Any]:
    start = time.perf_counter()
    results = run_sweep(SPEC, use_cache=False, workers=1)
    elapsed = time.perf_counter() - start
    return {"wall_s": round(elapsed, 3),
            "cases": sweep_to_json(results)["cases"]}


def run_fabric(cache_root: Path) -> Dict[str, Any]:
    workers = [
        BackgroundServer(cache_dir=cache_root / f"worker-{i}",
                         workers=1).start()
        for i in range(WORKERS)
    ]
    coord = BackgroundServer(
        coordinator=True,
        worker_urls=[w.url for w in workers],
        shard_size=1,
        cache_dir="off",
    ).start()
    try:
        client = ServiceClient(coord.host, coord.port)
        start = time.perf_counter()
        record = client.submit_fabric_sweep(**GRID)
        document = client.fabric_result(record["id"], timeout=600.0)
        elapsed = time.perf_counter() - start
    finally:
        coord.stop()
        for worker in workers:
            worker.stop()
    return {"wall_s": round(elapsed, 3),
            "cases": document["cases"],
            "fabric": document["fabric"]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="result JSON path (default: "
                             "benchmarks/results/BENCH_fabric.json)")
    parser.add_argument("--pad", type=float, default=PAD_S,
                        help="per-case latency pad in seconds")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero below the speedup floor")
    args = parser.parse_args(argv)

    os.environ["REPRO_FAULT_PLAN"] = _pad_plan(args.pad)
    os.environ.pop("REPRO_SWEEP_CACHE_DIR", None)
    size = SPEC.size

    print(f"grid: {size} cases, budget {SPEC.max_evaluations}, "
          f"kernel {SPEC.kernel}, pad {args.pad:g}s/case")
    print(f"serial: run_sweep, 1 worker, cold cache ...")
    serial = run_serial()
    print(f"  wall {serial['wall_s']:.2f}s")

    print(f"fabric: coordinator + {WORKERS} workers, cold caches ...")
    with tempfile.TemporaryDirectory() as tmp:
        fabric = run_fabric(Path(tmp))
    print(f"  wall {fabric['wall_s']:.2f}s  "
          f"({fabric['fabric']['shards']} shards, "
          f"{fabric['fabric']['steals']} steals)")

    speedup = serial["wall_s"] / fabric["wall_s"]
    match = fabric["cases"] == serial["cases"]
    print(f"speedup: {speedup:.2f}x at {WORKERS} workers "
          f"(floor {MIN_SPEEDUP}x)  cases match: {match}")

    document = {
        "bench": "fabric",
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "methodology": (
            "Identical REPRO_FAULT_PLAN hang pad per case in both runs "
            "models remote per-case latency on a single-CPU host; the "
            "serial run pays pads back-to-back, the fabric overlaps "
            "them across workers. Compute is identical and serialized "
            "either way; results are verified bit-identical."
        ),
        "grid_cases": size,
        "budget": SPEC.max_evaluations,
        "kernel": SPEC.kernel,
        "pad_s": args.pad,
        "workers": WORKERS,
        "serial_s": serial["wall_s"],
        "fabric_s": fabric["wall_s"],
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "cases_match": match,
        "fabric": fabric["fabric"],
    }
    output = Path(
        args.output
        if args.output is not None
        else Path(__file__).parent / "results" / "BENCH_fabric.json"
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    if args.check and (speedup < MIN_SPEEDUP or not match):
        print(f"FAIL: speedup {speedup:.2f}x < {MIN_SPEEDUP}x "
              f"or mismatched cases", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
