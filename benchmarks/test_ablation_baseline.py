"""Ablation — analysis baseline: classic must/may vs + persistence.

A reproduction finding worth a bench of its own: the magnitude of the
paper's improvements depends heavily on how tight the *baseline* WCET
analysis is.  With the classic must/may analysis of the paper's era, a
block first touched under a conditional inside a loop is charged a full
miss on every iteration — and a single prefetch repairs all of them at
once (large improvements, matching the paper's 17.4 % average).  With
the persistence ("first miss") domain added, the baseline already
charges such blocks only once, so there is much less left for
prefetching to win.

Same optimizer, same programs, same caches — only the baseline changes.
"""

from __future__ import annotations

from conftest import emit

from repro.bench.registry import load
from repro.cache.config import CacheConfig
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import cacti_model
from repro.energy.technology import TECH_45NM

CONFIG = CacheConfig(1, 16, 256)
TIMING = cacti_model(CONFIG, TECH_45NM).timing_model()
PROGRAMS = ("bsort100", "compress", "janne_complex", "insertsort", "statemate")


def _run(with_persistence: bool):
    rows = []
    for name in PROGRAMS:
        cfg = load(name)
        _, report = optimize(
            cfg,
            CONFIG,
            TIMING,
            options=OptimizerOptions(
                with_persistence=with_persistence, max_evaluations=120
            ),
        )
        rows.append(
            (name, report.tau_original, report.prefetch_count, report.wcet_reduction)
        )
    return rows


def test_ablation_baseline(benchmark, results_dir):
    data = benchmark.pedantic(
        lambda: {"classic": _run(False), "persistence": _run(True)},
        rounds=1,
        iterations=1,
    )
    lines = [
        "Ablation — analysis baseline (classic must/may vs +persistence)",
        f"{'program':<14} {'τ_w classic':>12} {'ΔWCET':>7}   "
        f"{'τ_w persist':>12} {'ΔWCET':>7}",
    ]
    classic = {r[0]: r for r in data["classic"]}
    persist = {r[0]: r for r in data["persistence"]}
    for name in PROGRAMS:
        _, c_tau, c_pf, c_dw = classic[name]
        _, p_tau, p_pf, p_dw = persist[name]
        lines.append(
            f"{name:<14} {c_tau:>12.0f} {100 * c_dw:>6.1f}%   "
            f"{p_tau:>12.0f} {100 * p_dw:>6.1f}%"
        )
    lines.append(
        "(classic baselines are looser — τ_w classic >= τ_w persistence — and\n"
        " leave more for prefetching to repair, which is where the paper's\n"
        " large average improvements come from; see EXPERIMENTS.md)"
    )
    emit(results_dir, "ablation_baseline", "\n".join(lines))
    for name in PROGRAMS:
        # the persistence baseline is never looser than the classic one
        assert persist[name][1] <= classic[name][1] + 1e-6
    # and the classic baseline leaves at least as much total improvement
    total_classic = sum(r[3] for r in data["classic"])
    total_persist = sum(r[3] for r in data["persistence"])
    assert total_classic >= total_persist - 1e-9
