"""Microbenchmark of the incremental analysis pipeline.

Times the full multi-pass ``optimize`` loop — the workload the pipeline
exists to accelerate — on three Mälardalen programs, verifies that the
results are bit-identical to the recorded pre-refactor outcomes, and
writes ``BENCH_pipeline.json``.

Two speedup figures are reported:

* ``speedup_recorded`` — measured time against the pre-refactor wall
  time recorded below.  Those baselines were taken on the development
  machine (commit ddb8059, the last revision where ``optimize`` re-ran
  the whole analysis from scratch per candidate), so this figure is
  only meaningful on comparable hardware.  ``--check`` gates on it.
* ``speedup_estimated`` — measured time against ``cold_analyze_s ×
  (candidates + 1)``: one full (post-refactor) analysis per candidate
  plus the initial one.  Informational only — the cold analysis itself
  got ~2x faster in the same refactor (ACFG construction and transfer
  memoisation), so this understates the win over the true pre-refactor
  loop.

Usage::

    python benchmarks/bench_pipeline.py [--output BENCH_pipeline.json]
        [--budget 120] [--check]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Dict

from repro.analysis.wcet import analyze_wcet
from repro.bench.registry import load
from repro.cache.config import TABLE2
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import cacti_model
from repro.energy.technology import technology
from repro.program.acfg import build_acfg

CONFIG_ID = "k1"
TECH = "45nm"
BUDGET = 120

#: Pre-refactor wall time (s) of ``optimize`` with the parameters above,
#: measured at commit ddb8059 on the development machine, and the final
#: outcomes — which the refactor must reproduce bit-identically.
RECORDED = {
    "fdct": {
        "prerefactor_s": 4.561,
        "tau_final": 21537.0,
        "misses_final": 555,
        "passes": 34,
        "prefetches": 33,
    },
    "ndes": {
        "prerefactor_s": 2.384,
        "tau_final": 51123.0,
        "misses_final": 1164,
        "passes": 7,
        "prefetches": 6,
    },
    "adpcm": {
        "prerefactor_s": 10.112,
        "tau_final": 67730.0,
        "misses_final": 1649,
    },
}


def bench_program(name: str, budget: int) -> Dict[str, Any]:
    """Time one multi-pass optimize run and its cold-analysis yardstick."""
    config = TABLE2[CONFIG_ID]
    timing = cacti_model(config, technology(TECH)).timing_model()
    cfg = load(name)

    start = time.perf_counter()
    acfg = build_acfg(cfg, config.block_size)
    analyze_wcet(acfg, config, timing, with_may=False)
    cold_analyze_s = time.perf_counter() - start

    options = OptimizerOptions(max_evaluations=budget)
    start = time.perf_counter()
    _, report = optimize(load(name), config, timing, options=options)
    optimize_s = time.perf_counter() - start

    estimated_prerefactor_s = cold_analyze_s * (report.candidates_evaluated + 1)
    row: Dict[str, Any] = {
        "program": name,
        "optimize_s": round(optimize_s, 3),
        "cold_analyze_s": round(cold_analyze_s, 4),
        "candidates_evaluated": report.candidates_evaluated,
        "passes": report.passes,
        "prefetches": report.prefetch_count,
        "tau_final": report.tau_final,
        "misses_final": report.misses_final,
        "pipeline": dict(report.pipeline),
        "prerefactor_recorded_s": RECORDED[name]["prerefactor_s"],
        "prerefactor_estimated_s": round(estimated_prerefactor_s, 3),
        "speedup_recorded": round(
            RECORDED[name]["prerefactor_s"] / optimize_s, 2
        ),
        "speedup_estimated": round(estimated_prerefactor_s / optimize_s, 2),
    }

    mismatches = []
    for key in ("tau_final", "misses_final", "passes", "prefetches"):
        expected = RECORDED[name].get(key)
        if expected is not None and row[key] != expected:
            mismatches.append(f"{key}: expected {expected}, got {row[key]}")
    row["matches_recorded_outcome"] = not mismatches
    row["mismatches"] = mismatches
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pipeline.json")
    parser.add_argument("--budget", type=int, default=BUDGET)
    parser.add_argument(
        "--check",
        action="store_true",
        help="also require >= 2x speedup against the *recorded* baseline "
        "(only meaningful on hardware comparable to the dev machine)",
    )
    args = parser.parse_args(argv)

    rows = []
    for name in RECORDED:
        print(f"benchmarking optimize on {name} "
              f"({CONFIG_ID}/{TECH}, budget {args.budget})...",
              file=sys.stderr)
        row = bench_program(name, args.budget)
        print(
            f"  {row['optimize_s']:.2f}s "
            f"({row['speedup_recorded']:.2f}x recorded, "
            f"{row['speedup_estimated']:.2f}x estimated), "
            f"outcome match: {row['matches_recorded_outcome']}",
            file=sys.stderr,
        )
        rows.append(row)

    document = {
        "bench": "pipeline",
        "config": CONFIG_ID,
        "tech": TECH,
        "budget": args.budget,
        "baseline_commit": "ddb8059",
        "baseline_machine_note": (
            "prerefactor_recorded_s measured on the dev machine; "
            "speedup_estimated is the machine-local comparison"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "programs": rows,
        "min_speedup_recorded": min(r["speedup_recorded"] for r in rows),
        "min_speedup_estimated": min(r["speedup_estimated"] for r in rows),
        "all_outcomes_match": all(r["matches_recorded_outcome"] for r in rows),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)

    failures = []
    if not document["all_outcomes_match"]:
        for row in rows:
            for mismatch in row["mismatches"]:
                failures.append(f"{row['program']}: {mismatch}")
    if args.check and document["min_speedup_recorded"] < 2.0:
        failures.append(
            f"recorded speedup {document['min_speedup_recorded']}x < 2x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
