"""Figure 7 — WCET ratio per use case at 32 nm.

Paper: Inequation 12 holds for every use case — the optimized program's
memory contribution to the WCET never exceeds the original's.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.figures import figure7
from repro.experiments.report import render_figure7


def test_fig7_wcet_per_usecase(benchmark, sweep_spec, results_dir):
    data = benchmark.pedantic(
        figure7, args=(sweep_spec, "32nm"), rounds=1, iterations=1
    )
    text = render_figure7(data, limit=None)
    emit(results_dir, "fig7", text)
    # Theorem 1, use case by use case — the paper's hard guarantee.
    assert data.all_below_one
    assert data.best < 1.0, "at least one use case must actually improve"
