"""Ablations of the optimizer's design choices (DESIGN.md §5).

Each gate of the joint improvement criterion exists for a reason; these
benches *demonstrate* the reason by switching gates off on a
conflict-heavy workload and measuring what breaks:

* no WCET gate (Condition 1 off) — Theorem 1 can be violated;
* no effectiveness gate (Definition 10 off) — prefetches too close to
  their use get inserted; the final program carries latency the
  analysis cannot hide;
* no miss gate (Condition 2 off) — insertions stop paying for
  themselves;
* no prefilter — more re-analysis work AND a worse greedy order: the
  profit estimate steers the search towards high-value candidates, so
  removing it can land in a worse local optimum;
* single pass vs iterative improvement — the iteration is where most
  of the gain comes from (later passes see the relocated program).
"""

from __future__ import annotations

from conftest import emit

from repro.cache.config import CacheConfig
from repro.core.guarantees import verify_effectiveness, verify_wcet_guarantee
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import cacti_model
from repro.energy.technology import TECH_45NM
from repro.program.builder import ProgramBuilder

CONFIG = CacheConfig(1, 16, 256)
MODEL = cacti_model(CONFIG, TECH_45NM)
TIMING = MODEL.timing_model()


def _workload():
    b = ProgramBuilder("ablation-target")
    b.code(6)
    with b.loop(bound=16, sim_iterations=12):
        b.code(70)
        with b.if_else(taken_prob=0.4) as arms:
            with arms.then_():
                b.code(24)
            with arms.else_():
                b.code(12)
    b.code(4)
    return b.build()


def _run(options: OptimizerOptions):
    cfg = _workload()
    optimized, report = optimize(cfg, CONFIG, TIMING, options=options)
    check = verify_wcet_guarantee(
        cfg, optimized, CONFIG, TIMING, strict=False
    )
    return cfg, optimized, report, check


def test_ablation_gates(benchmark, results_dir):
    def run_all():
        rows = []
        variants = [
            ("paper (all gates)", OptimizerOptions()),
            (
                "no effectiveness gate",
                OptimizerOptions(require_effectiveness=False),
            ),
            (
                "no miss gate",
                OptimizerOptions(require_miss_decrease=False),
            ),
            (
                "no WCET gate",
                OptimizerOptions(
                    require_wcet_nonincrease=False, verify_guarantee=False
                ),
            ),
            ("no prefilter", OptimizerOptions(use_prefilter=False)),
            (
                "single insertion",
                OptimizerOptions(max_insertions=1),
            ),
        ]
        for label, options in variants:
            cfg, optimized, report, check = _run(options)
            ineffective = verify_effectiveness(optimized, CONFIG, TIMING)
            rows.append(
                (
                    label,
                    report.prefetch_count,
                    report.candidates_evaluated,
                    1.0 - check.tau_optimized / check.tau_original,
                    check.theorem1_holds,
                    len(ineffective),
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "Ablation — gate contributions on a conflict-heavy loop",
        f"{'variant':<24} {'pf':>4} {'evals':>6} {'ΔWCET':>8} "
        f"{'Thm1':>6} {'ineffective':>12}",
    ]
    for label, pf, evals, dw, thm1, ineff in rows:
        lines.append(
            f"{label:<24} {pf:>4d} {evals:>6d} {100 * dw:>7.1f}% "
            f"{str(thm1):>6} {ineff:>12d}"
        )
    emit(results_dir, "ablations", "\n".join(lines))

    by_label = {row[0]: row for row in rows}
    # The full criterion must hold Theorem 1 and stay effective.
    assert by_label["paper (all gates)"][4] is True
    assert by_label["paper (all gates)"][5] == 0
    assert by_label["paper (all gates)"][1] > 0
    # Whatever the gate setting, re-analysis keeps every variant's
    # output from regressing the WCET on this workload.
    for row in rows:
        assert row[3] >= -1e-9, f"{row[0]} regressed the WCET"
    # The prefilter is not just a cost saver: it orders the greedy
    # search towards high-value candidates (observed: disabling it finds
    # a worse local optimum while evaluating more candidates).
    assert by_label["no prefilter"][2] >= by_label["paper (all gates)"][2]
    # Iterative improvement beats a single insertion.
    assert by_label["paper (all gates)"][3] >= by_label["single insertion"][3]


def test_ablation_join_policy(benchmark, results_dir):
    """J_SE (WCET-path propagation) vs the conservative must-join.

    Replaces the optimizer's join selection with a pessimistic variant
    (always intersect, i.e. drop state at joins) by routing candidates
    only from intersection-surviving states; measured as the candidate
    count the reverse analysis produces.
    """
    from repro.analysis.wcet import analyze_wcet
    from repro.core.update import collect_reverse_events
    from repro.program.acfg import build_acfg

    def run():
        cfg = _workload()
        acfg = build_acfg(cfg, CONFIG.block_size)
        wcet = analyze_wcet(acfg, CONFIG, TIMING, with_may=False)
        events = collect_reverse_events(acfg, CONFIG, wcet.solution)
        return len(events), acfg.ref_count

    events, refs = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Ablation — reverse analysis candidate yield\n"
        f"references: {refs}, candidate events: {events}\n"
        "(J_SE keeps the WCET-path state alive across joins; a\n"
        "conservative intersection join would discard most of it and\n"
        "find no replacement points at conditional convergences)"
    )
    emit(results_dir, "ablation_join", text)
    assert events > 0
