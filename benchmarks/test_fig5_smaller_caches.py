"""Figure 5 — optimized programs on 1/2 and 1/4 capacity caches.

Paper: within the feasible region the optimized programs sustained
ACETs less than or equal to the unoptimized ones on 2-4x smaller
caches, energy savings reached 21 %, and the WCET did not grow for any
use case.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments.figures import figure5
from repro.experiments.report import render_figure5


@pytest.mark.parametrize("factor", [0.5, 0.25])
def test_fig5_smaller_caches(benchmark, fig5_spec, results_dir, factor):
    data = benchmark.pedantic(
        figure5, args=(factor, fig5_spec), rounds=1, iterations=1
    )
    text = render_figure5(data)
    emit(results_dir, f"fig5_x{factor:g}", text)
    assert data.energy.points, "at least one capacity must be feasible"
    # the paper's safety observation: shrinking never blew up the WCET
    # beyond the original program's bound on the big cache
    best = data.best_energy_saving
    assert best > 0.0, "some use case must save energy on a smaller cache"
