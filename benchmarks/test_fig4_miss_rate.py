"""Figure 4 — impact on miss rate.

Paper: the optimization lowers the average miss rate at every cache
capacity (the pre-optimization rates were chosen to span ~1-10 %).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.figures import figure4
from repro.experiments.report import render_figure4


def test_fig4_miss_rate(benchmark, sweep_spec, results_dir):
    data = benchmark.pedantic(figure4, args=(sweep_spec,), rounds=1, iterations=1)
    text = render_figure4(data)
    emit(results_dir, "fig4", text)
    capacities = sorted(data.before.points)
    # miss rate decreases (or stays) at every capacity
    for capacity in capacities:
        assert data.after.points[capacity] <= data.before.points[capacity] + 1e-9
    # miss rate shrinks with growing capacity (cache behaviour sanity)
    assert data.before.points[capacities[0]] >= data.before.points[capacities[-1]]
