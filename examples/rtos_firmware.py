#!/usr/bin/env python3
"""Domain scenario: an RTOS baseband task set (the paper's motivation).

The paper's introduction describes mobile devices as a "PC" plus a
"radio" — the radio running baseband/protocol/security tasks on an
RTOS, where every task needs a WCET bound for schedulability *and* the
battery wants energy efficiency.

This example builds a three-task radio firmware model:

* ``channel_decoder`` — a DSP-style loop nest (tight deadline),
* ``protocol_fsm``   — a branchy protocol state machine,
* ``crypto_core``    — rounds of a block cipher with helper calls.

Each task owns an effective slice of the instruction cache (the paper's
reading of Table 2 capacities).  The script optimizes every task for
its slice, verifies Theorem 1 per task, and reports the schedulability
margin: the sum of memory WCETs against a frame budget, before and
after optimization — all with exactly the guarantees an RTOS engineer
needs (no bound ever grows).

Run:  python examples/rtos_firmware.py
"""

from __future__ import annotations

from repro.cache import CacheConfig
from repro.core import optimize, verify_wcet_guarantee
from repro.energy import DRAMModel, account_energy, cacti_model, technology
from repro.program import ProgramBuilder
from repro.sim import simulate

TECH = technology("32nm")
#: Frame budget for the radio frame handler (memory cycles).
FRAME_BUDGET = 60_000


def channel_decoder():
    """FIR/derotation loop nest over one slot of samples."""
    b = ProgramBuilder("channel_decoder")
    b.code(12)
    with b.loop(bound=14, sim_iterations=14, name="symbols"):
        b.code(30)
        with b.loop(bound=8, sim_iterations=8, name="taps"):
            b.code(16)
        with b.if_else(taken_prob=0.2) as arms:
            with arms.then_():
                b.code(24)  # re-synchronisation path
            with arms.else_():
                b.code(6)
    b.code(8)
    return b.build()


def protocol_fsm():
    """L2 protocol handler: dispatch loop over message types."""
    b = ProgramBuilder("protocol_fsm")
    b.code(10)
    with b.loop(bound=10, sim_iterations=8, name="messages"):
        b.code(6)
        with b.switch(weights=[6, 3, 2, 1]) as sw:
            with sw.case():
                b.code(18)  # data PDU
            with sw.case():
                b.code(26)  # control PDU
            with sw.case():
                b.code(34)  # handover
            with sw.case():
                b.code(12)  # padding
        b.code(4)
    b.code(6)
    return b.build()


def crypto_core():
    """Block cipher: key schedule + rounds with S-box helper."""
    b = ProgramBuilder("crypto_core")
    with b.function("sbox"):
        b.code(14)
    b.code(16)
    with b.loop(bound=12, sim_iterations=12, name="rounds"):
        b.code(20)
        b.call("sbox")
        b.code(12)
        b.call("sbox")
        b.code(8)
    b.code(8)
    return b.build()


#: (task, effective cache slice) — slices are per-task shares of the
#: shared I-cache, the paper's interpretation of Table 2 capacities.
TASKS = (
    (channel_decoder, CacheConfig(2, 16, 512)),
    (protocol_fsm, CacheConfig(1, 16, 256)),
    (crypto_core, CacheConfig(2, 16, 256)),
)


def main() -> None:
    print(f"radio firmware task set @ {TECH.name}, frame budget "
          f"{FRAME_BUDGET} memory cycles\n")
    total_before = total_after = 0.0
    energy_before = energy_after = 0.0
    print(f"{'task':<18} {'cache':<14} {'pf':>3} {'τ_w before':>11} "
          f"{'τ_w after':>11} {'Thm1':>5} {'e_a Δ':>8}")
    for factory, slice_config in TASKS:
        cfg = factory()
        model = cacti_model(slice_config, TECH)
        timing = model.timing_model()
        dram = DRAMModel(TECH)
        optimized, report = optimize(cfg, slice_config, timing)
        check = verify_wcet_guarantee(cfg, optimized, slice_config, timing)
        base_sim = simulate(cfg, slice_config, timing, seed=3)
        opt_sim = simulate(optimized, slice_config, timing, seed=3)
        e_base = account_energy(base_sim.event_counts(), model, dram).total_j
        e_opt = account_energy(opt_sim.event_counts(), model, dram).total_j
        total_before += check.tau_original
        total_after += check.tau_optimized
        energy_before += e_base
        energy_after += e_opt
        print(f"{cfg.name:<18} {slice_config.label():<14} "
              f"{report.prefetch_count:>3d} {check.tau_original:>11.0f} "
              f"{check.tau_optimized:>11.0f} {str(check.theorem1_holds):>5} "
              f"{100 * (e_opt / e_base - 1):>7.1f}%")

    print(f"\nframe schedulability (memory contribution):")
    print(f"  before: {total_before:8.0f} / {FRAME_BUDGET} cycles "
          f"({100 * total_before / FRAME_BUDGET:.1f}% of budget)")
    print(f"  after : {total_after:8.0f} / {FRAME_BUDGET} cycles "
          f"({100 * total_after / FRAME_BUDGET:.1f}% of budget)")
    print(f"  reclaimed margin: {total_before - total_after:.0f} cycles "
          f"({100 * (1 - total_after / total_before):.1f}% of the memory WCET)")
    print(f"\nframe energy (memory system): "
          f"{energy_before * 1e9:.1f} nJ -> {energy_after * 1e9:.1f} nJ "
          f"({100 * (1 - energy_after / energy_before):+.1f}%)")
    assert total_after <= total_before, "Theorem 1 must hold task-wise"


if __name__ == "__main__":
    main()
