#!/usr/bin/env python3
"""The Section-6 extension in action: unlocked *data* cache prefetching.

A DSP filter kernel streams samples through a coefficient table.  The
WCET data-cache analysis cannot know the stream's addresses statically,
so it must conservatively assume every streamed access may alias the
coefficient table's sets — wrecking the table's hit guarantees.  The
data prefetcher re-pins the table blocks each iteration with WCET-safe
data prefetches, repairing the combined (instruction + data) bound.

Run:  python examples/dsp_data_cache.py
"""

from __future__ import annotations

from repro.analysis import TimingModel
from repro.cache import CacheConfig
from repro.data import combined_wcet, optimize_data, simulate_split
from repro.program import ProgramBuilder, build_acfg

ICACHE = CacheConfig(2, 16, 512)
DCACHE = CacheConfig(2, 16, 256)
TIMING = TimingModel(hit_cycles=1, miss_penalty_cycles=30, prefetch_issue_cycles=1)


def fir_kernel():
    """FIR filter: coefficient table + streaming sample buffer."""
    b = ProgramBuilder("fir-data")
    b.data_region("coef", 64)        # 4 blocks of filter taps
    b.data_region("samples", 8192)   # streaming input
    b.code(6)
    with b.loop(bound=48, sim_iterations=40, name="samples_loop"):
        b.load("samples", stride=4)          # x[n]   (streaming)
        b.code(2)
        b.load("coef", offset=0)             # taps 0..3
        b.code(2)
        b.load("coef", offset=16)            # taps 4..7
        b.code(2)
        b.load("coef", offset=32)            # taps 8..11
        b.code(3)
        b.store("samples", offset=4096, stride=4)  # y[n]  (streaming)
        b.code(2)
    b.code(4)
    return b.build()


def main() -> None:
    cfg = fir_kernel()
    acfg = build_acfg(cfg, ICACHE.block_size)
    before = combined_wcet(acfg, ICACHE, DCACHE, TIMING)
    print("FIR kernel on split caches "
          f"I{ICACHE.label()} / D{DCACHE.label()}")
    print(f"  instruction-only τ_w : {before.instruction.tau_w:8.0f} cycles")
    print(f"  combined τ_w         : {before.tau_w:8.0f} cycles")
    print(f"  worst-case data misses: {before.data_misses}")

    optimized, report = optimize_data(cfg, ICACHE, DCACHE, TIMING)
    print(f"\ndata prefetches inserted: {len(report.inserted)}")
    for block, index, region, offset in report.inserted:
        print(f"  dpf {region}+{offset} at {block}[{index}]")
    print(f"combined τ_w : {report.tau_original:8.0f} -> {report.tau_final:8.0f} "
          f"({100 * report.wcet_reduction:+.1f}%)")
    print(f"data misses  : {report.data_misses_original:8d} -> "
          f"{report.data_misses_final:8d}  (worst case)")

    base_sim = simulate_split(cfg, ICACHE, DCACHE, TIMING, seed=3)
    opt_sim = simulate_split(optimized, ICACHE, DCACHE, TIMING, seed=3)
    print(f"\nsimulated (average case):")
    print(f"  memory cycles: {base_sim.memory_cycles:8.0f} -> "
          f"{opt_sim.memory_cycles:8.0f}")
    print(f"  data misses  : {base_sim.data.demand_misses:8d} -> "
          f"{opt_sim.data.demand_misses:8d}")
    print("\n(the bound improves far more than the average: the prefetches "
          "mostly repair\n analysis conservatism about unknown stream "
          "addresses — guarantees, not speed)")


if __name__ == "__main__":
    main()
