#!/usr/bin/env python3
"""Shootout: the paper's technique vs hardware prefetchers vs locking.

Section 2 of the paper reviews the alternatives; this script runs them
all on one program and one cache and prints the three-way trade-off
each scheme makes:

* hardware prefetchers (next-line, next-2-line, target/RPT, wrong-path)
  can improve the *average* case but spend energy on guesses and leave
  the *guaranteed* WCET untouched (no analysis covers them);
* static cache locking makes the WCET trivially analysable but gives up
  most of the cache's performance;
* WCET-driven software prefetching (the paper) improves the guaranteed
  bound, the average case, and energy at once.

Run:  python examples/prefetcher_shootout.py [program] [config-id]
e.g.  python examples/prefetcher_shootout.py ndes k7
"""

from __future__ import annotations

import sys

from repro.analysis import analyze_wcet
from repro.bench import load
from repro.cache import TABLE2
from repro.core import optimize
from repro.energy import DRAMModel, account_energy, cacti_model, technology
from repro.program import build_acfg
from repro.sim import (
    NextLinePrefetcher,
    TargetPrefetcher,
    WrongPathPrefetcher,
    locked_wcet,
    select_locked_blocks,
    simulate,
    simulate_locked,
)


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "ndes"
    config_id = sys.argv[2] if len(sys.argv) > 2 else "k7"
    config = TABLE2[config_id]
    tech = technology("45nm")
    model = cacti_model(config, tech)
    timing = model.timing_model()
    dram = DRAMModel(tech)

    cfg = load(program)
    acfg = build_acfg(cfg, config.block_size)
    base_wcet = analyze_wcet(acfg, config, timing).tau_w

    def energy(sim):
        return account_energy(sim.event_counts(), model, dram).total_j

    rows = []
    base = simulate(cfg, config, timing, seed=1)
    rows.append(("on-demand fetching", base, base_wcet, 0))

    for label, prefetcher in (
        ("hw next-line (miss)", NextLinePrefetcher("miss")),
        ("hw next-2-line", NextLinePrefetcher("always", degree=2)),
        ("hw target (RPT)", TargetPrefetcher()),
        ("hw wrong-path", WrongPathPrefetcher()),
    ):
        sim = simulate(cfg, config, timing, seed=1, prefetcher=prefetcher)
        rows.append((label, sim, base_wcet, sim.hw_table_probes))

    locked_blocks = select_locked_blocks(acfg, config)
    locked_sim = simulate_locked(cfg, config, timing, locked_blocks, seed=1)
    locked_bound = locked_wcet(acfg, timing, locked_blocks).objective
    rows.append(("static cache locking", locked_sim, locked_bound, 0))

    optimized, report = optimize(cfg, config, timing)
    sw_sim = simulate(optimized, config, timing, seed=1)
    rows.append(
        (f"sw prefetch (paper, {report.prefetch_count} π)", sw_sim,
         report.tau_final, 0)
    )

    print(f"{program} on {config_id} = {config.label()} @ {tech.name}\n")
    print(f"{'scheme':<28} {'ACET':>8} {'WCET*':>8} {'miss%':>6} "
          f"{'xfers':>6} {'probes':>7} {'energy nJ':>10}")
    for label, sim, wcet, probes in rows:
        transfers = sim.demand_misses + sim.prefetch_transfers
        print(f"{label:<28} {sim.memory_cycles:>8.0f} {wcet:>8.0f} "
              f"{100 * sim.miss_rate:>5.1f}% {transfers:>6d} {probes:>7d} "
              f"{energy(sim) * 1e9:>10.1f}")
    print("\n*WCET = guaranteed memory contribution; hardware prefetching "
          "is invisible to\n the analysis, so its guaranteed bound is the "
          "on-demand one (Section 2.2).")


if __name__ == "__main__":
    main()
