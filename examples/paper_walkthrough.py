#!/usr/bin/env python3
"""Walkthrough of the paper's illustrative examples (Figures 1, 2, 6).

Reconstructs, on a cache small enough to print, what the paper shows in
its worked examples:

1. **Figure 1** — straight-line program on a 2-way set: the forward
   cache states at every program point, the reverse analysis detecting
   a replacement, and the resulting prefetch insertion.
2. **Figure 2** — a conditional: the conventional intersection join
   versus the prefetching join ``J_SE`` that propagates the WCET-path
   state.
3. **Figure 6** — a loop: the VIVU transformation instantiating the
   body in FIRST/REST contexts with the back edge broken.

Run:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro.analysis import TimingModel, analyze_wcet
from repro.cache import CacheConfig, MustState
from repro.core import (
    collect_optimization_states,
    collect_reverse_events,
    optimize,
    select_join_predecessor,
)
from repro.program import ProgramBuilder, VertexKind, build_acfg, context_label

# Toy latency: in a tiny 2-set cache most intervening blocks compete
# for the same sets, so the survivable prefetch window is only a couple
# of blocks ≈ a few hit-cycles; Λ = 3 keeps the example in the regime
# where insertion is possible (real configurations have 8-256 sets and
# correspondingly wide windows).
TIMING = TimingModel(hit_cycles=1, miss_penalty_cycles=3, prefetch_issue_cycles=1)


def show_state(state) -> str:
    parts = []
    for index in state.touched_sets():
        ages = [
            "{" + ",".join(f"s{b}" for b in sorted(entry)) + "}"
            for entry in state.lines(index)
        ]
        parts.append("[" + " ".join(ages) + "]")  # [MRU .. LRU]
    return " ".join(parts) or "[{} {}]  (all invalid)"


def figure1() -> None:
    print("=" * 72)
    print("Figure 1 — 2-way 64 B cache (2 sets), 8-block loop body")
    print("=" * 72)
    # The paper's Fig. 1 shows a short reference sequence revisiting
    # blocks; in a real address space revisits come from loops, so the
    # walkthrough uses a loop whose 8-block body cycles through a
    # 4-block cache — each iteration replaces blocks the next iteration
    # needs, which is exactly Property 3's trigger.
    config = CacheConfig(associativity=2, block_size=16, capacity=64)
    b = ProgramBuilder("fig1")
    with b.loop(bound=6):
        b.code(30)
    cfg = b.build()
    acfg = build_acfg(cfg, block_size=config.block_size)
    wcet = analyze_wcet(acfg, config, TIMING)

    print("\nforward states (first iteration; the right-hand side of Fig. 1a):")
    states, _ = collect_optimization_states(acfg, config, wcet.solution)
    shown = 0
    for vertex in acfg.ref_vertices():
        classification = wcet.cache.classification(vertex.rid)
        print(
            f"  r{vertex.rid:<3} block s{acfg.block_of(vertex.rid)}  "
            f"{classification.value:<3} state before: "
            f"{show_state(states[vertex.rid])}"
        )
        shown += 1
        if shown >= 14:
            print(f"  ... ({acfg.ref_count - shown} more references)")
            break

    print("\nreverse analysis (Fig. 1b): replacement points, sink -> source:")
    events = collect_reverse_events(acfg, config, wcet.solution)
    for event in events:
        where = (
            "program start"
            if event.insert_after_rid == acfg.source
            else f"after r{event.insert_after_rid}"
        )
        print(f"  prefetch candidate for s{event.dropped_block:<3} at {where}")

    optimized, report = optimize(cfg, config, TIMING)
    print(f"\noptimized program (Fig. 1c): {report.prefetch_count} prefetches, "
          f"τ_w {report.tau_original:.0f} -> {report.tau_final:.0f}, "
          f"worst-case misses {report.misses_original} -> {report.misses_final}")
    for record in report.inserted:
        print(f"  π for uid {record.target_uid} inserted at "
              f"{record.block_name}[{record.index}] "
              f"(slack {record.terms.slack:.0f} ≥ Λ={record.terms.latency:.0f})")


def figure2() -> None:
    print()
    print("=" * 72)
    print("Figure 2 — joins: conventional intersection vs J_SE")
    print("=" * 72)
    config = CacheConfig(associativity=2, block_size=16, capacity=32)
    b = ProgramBuilder("fig2")
    b.code(1)
    with b.if_else(taken_prob=0.5) as arms:
        with arms.then_():
            b.code(4)  # heavy arm: the WCET path
        with arms.else_():
            b.code(1)
    b.code(2)
    cfg = b.build()
    acfg = build_acfg(cfg, block_size=config.block_size)
    wcet = analyze_wcet(acfg, config, TIMING)

    join = next(v for v in acfg.vertices if v.kind is VertexKind.JOIN)
    preds = acfg.predecessors(join.rid)
    states, _ = collect_optimization_states(acfg, config, wcet.solution)

    must_states = {}
    for pred in preds:
        replay = MustState(config)
        # replay up to each predecessor along its own arm
        chain = []
        cursor = pred
        while cursor != acfg.source:
            chain.append(cursor)
            cursor = acfg.predecessors(cursor)[0]
        for rid in reversed(chain):
            if acfg.vertex(rid).is_ref:
                replay = replay.update(acfg.block_of(rid))
        must_states[pred] = replay
        flag = "on WCET path" if wcet.solution.on_path[pred] else "off path"
        print(f"  entering edge from r{pred} ({flag}): {show_state(replay)}")

    conventional = must_states[preds[0]].join(must_states[preds[1]])
    chosen = select_join_predecessor(acfg, wcet.solution, join.rid)
    print(f"\n  conventional join (intersection): {show_state(conventional)}")
    print(f"  J_SE propagates the edge from r{chosen}: "
          f"{show_state(must_states[chosen])}")
    print("  -> J_SE keeps the WCET-path contents that the intersection "
          "discards,\n     which is what lets the optimizer see "
          "replacements behind joins.")


def figure6() -> None:
    print()
    print("=" * 72)
    print("Figure 6 — VIVU: loop body instantiated as FIRST and REST")
    print("=" * 72)
    b = ProgramBuilder("fig6")
    b.code(1)
    with b.loop(bound=5):
        b.code(2)
    b.code(1)
    cfg = b.build()
    acfg = build_acfg(cfg, block_size=16)
    for vertex in acfg.ref_vertices():
        print(f"  r{vertex.rid:<3} {vertex.block_name:<10} "
              f"context {context_label(vertex.context):<10} "
              f"worst-case executions x{acfg.multiplier[vertex.rid]}")
    print(f"  broken back edges (REST exit -> REST entry join): "
          f"{acfg.back_edges}")


def main() -> None:
    figure1()
    figure2()
    figure6()


if __name__ == "__main__":
    main()
