#!/usr/bin/env python3
"""Quickstart: optimize one program and verify the paper's guarantees.

Loads a Mälardalen clone, runs the WCET-safe prefetch optimization for
one cache configuration/technology, then independently re-derives
Theorem 1 (WCET non-increase), Condition 2 (fewer worst-case misses)
and Condition 3 (no ACET regression) and prints the before/after
numbers.

Run:  python examples/quickstart.py [program] [config-id] [tech]
e.g.  python examples/quickstart.py fdct k1 45nm
"""

from __future__ import annotations

import sys

from repro.bench import load
from repro.cache import TABLE2
from repro.core import optimize, verify_prefetch_equivalence, verify_wcet_guarantee
from repro.energy import DRAMModel, account_energy, cacti_model, technology
from repro.sim import simulate


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "fdct"
    config_id = sys.argv[2] if len(sys.argv) > 2 else "k1"
    tech_name = sys.argv[3] if len(sys.argv) > 3 else "45nm"

    config = TABLE2[config_id]
    tech = technology(tech_name)
    model = cacti_model(config, tech)
    timing = model.timing_model()
    dram = DRAMModel(tech)

    cfg = load(program)
    print(f"program     : {program} ({cfg.instruction_count} instructions, "
          f"{cfg.instruction_count * 4} B)")
    print(f"cache       : {config_id} = {config.label()} @ {tech.name}")
    print(f"timing      : hit {timing.hit_cycles} cyc, miss {timing.miss_cycles} cyc, "
          f"Λ = {timing.prefetch_latency} cyc")

    optimized, report = optimize(cfg, config, timing)
    print(f"\noptimizer   : {report.prefetch_count} prefetches inserted in "
          f"{report.passes} passes "
          f"({report.candidates_evaluated} candidates evaluated, "
          f"{report.candidates_rejected} rejected)")

    # --- the paper's three conditions, re-derived independently -------
    check = verify_wcet_guarantee(cfg, optimized, config, timing)
    print(f"\nWCET (τ_w)  : {check.tau_original:10.0f} -> {check.tau_optimized:10.0f} cycles "
          f"({100 * (1 - check.tau_optimized / check.tau_original):+.1f}%)"
          f"   Theorem 1 holds: {check.theorem1_holds}")
    print(f"worst misses: {check.misses_original:10d} -> {check.misses_optimized:10d}"
          f"              Condition 2 holds: {check.condition2_holds}")
    print(f"effectiveness (Def. 10) holds for all prefetches: {check.all_effective}")
    print(f"prefetch-equivalent (Def. 5): "
          f"{verify_prefetch_equivalence(cfg, optimized)}")

    # --- average case: trace simulation + energy accounting ----------
    base = simulate(cfg, config, timing, seed=1)
    opt = simulate(optimized, config, timing, seed=1)
    e_base = account_energy(base.event_counts(), model, dram)
    e_opt = account_energy(opt.event_counts(), model, dram)
    print(f"\nACET (τ_a)  : {base.memory_cycles:10.0f} -> {opt.memory_cycles:10.0f} cycles "
          f"({100 * (1 - opt.memory_cycles / base.memory_cycles):+.1f}%)")
    print(f"miss rate   : {100 * base.miss_rate:9.2f}% -> {100 * opt.miss_rate:9.2f}%")
    print(f"energy (e_a): {e_base.total_j * 1e9:9.1f}nJ -> {e_opt.total_j * 1e9:9.1f}nJ "
          f"({100 * (1 - e_opt.total_j / e_base.total_j):+.1f}%)")
    print(f"instructions: {base.fetches:10d} -> {opt.fetches:10d} "
          f"({100 * (opt.fetches / base.fetches - 1):+.2f}%)")


if __name__ == "__main__":
    main()
