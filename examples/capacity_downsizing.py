#!/usr/bin/env python3
"""Cache downsizing with prefetching (the paper's Figure 5 scenario).

The headline of the paper: by precluding misses in software, a program
optimized for a *smaller* cache can match or beat the original program
on a larger cache — reclaiming the smaller cache's lower leakage and
per-access energy, up to 21 % total savings.

This script takes one program, runs the original on its full-size
cache, then optimizes it for 1/2 and 1/4 of that capacity and compares
ACET, guaranteed WCET, and energy across the three deployments.

Run:  python examples/capacity_downsizing.py [program] [config-id] [tech]
e.g.  python examples/capacity_downsizing.py compress k13 32nm
"""

from __future__ import annotations

import sys

from repro.bench import load
from repro.cache import TABLE2
from repro.core import optimize
from repro.energy import DRAMModel, account_energy, cacti_model, technology
from repro.program import build_acfg
from repro.analysis import analyze_wcet
from repro.sim import simulate


def deployment(cfg, config, tech, optimize_first):
    """Measure one (program, cache) deployment; returns a result dict."""
    model = cacti_model(config, tech)
    timing = model.timing_model()
    program = cfg
    prefetches = 0
    if optimize_first:
        program, report = optimize(cfg, config, timing)
        prefetches = report.prefetch_count
    acfg = build_acfg(program, config.block_size)
    wcet = analyze_wcet(acfg, config, timing)
    sim = simulate(program, config, timing, seed=2)
    energy = account_energy(sim.event_counts(), model, DRAMModel(tech))
    return {
        "config": config,
        "prefetches": prefetches,
        "tau_w": wcet.tau_w,
        "acet": sim.memory_cycles,
        "miss_rate": sim.miss_rate,
        "energy": energy.total_j,
        "leakage": model.leakage_w,
    }


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "compress"
    config_id = sys.argv[2] if len(sys.argv) > 2 else "k13"
    tech = technology(sys.argv[3] if len(sys.argv) > 3 else "32nm")

    full = TABLE2[config_id]
    cfg = load(program)
    print(f"{program} on {config_id} = {full.label()} @ {tech.name} "
          f"(code {cfg.instruction_count * 4} B)\n")

    rows = [("original, full cache", deployment(cfg, full, tech, False))]
    for factor, label in ((0.5, "optimized, 1/2 cache"), (0.25, "optimized, 1/4 cache")):
        small = full.scaled_capacity(factor)
        if small.capacity < small.associativity * small.block_size:
            print(f"({label}: infeasible, skipping)")
            continue
        rows.append((label, deployment(cfg, small, tech, True)))

    base = rows[0][1]
    print(f"{'deployment':<24} {'capacity':>8} {'pf':>3} {'ACET':>9} "
          f"{'WCET':>9} {'miss%':>6} {'leak uW':>8} {'energy nJ':>10} {'vs base':>8}")
    for label, row in rows:
        print(f"{label:<24} {row['config'].capacity:>8d} {row['prefetches']:>3d} "
              f"{row['acet']:>9.0f} {row['tau_w']:>9.0f} "
              f"{100 * row['miss_rate']:>5.1f}% {row['leakage'] * 1e6:>8.1f} "
              f"{row['energy'] * 1e9:>10.1f} "
              f"{100 * (row['energy'] / base['energy'] - 1):>+7.1f}%")

    print("\n(the paper's Fig. 5: within the feasible region the optimized "
          "program on a\n 2-4x smaller cache sustains the original's "
          "performance at lower energy)")


if __name__ == "__main__":
    main()
