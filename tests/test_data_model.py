"""Tests for the data-access model and builder integration."""

from __future__ import annotations

import pytest

from repro.data.model import (
    DATA_SEGMENT_BASE,
    DataAccess,
    DataKind,
    DataLayout,
    DataRegion,
)
from repro.errors import ProgramModelError
from repro.program.builder import ProgramBuilder


class TestDataRegion:
    def test_address_bounds_checked(self):
        region = DataRegion("a", 64, base=1000)
        assert region.address(0) == 1000
        assert region.address(63) == 1063
        with pytest.raises(ProgramModelError):
            region.address(64)
        with pytest.raises(ProgramModelError):
            region.address(-1)

    def test_size_positive(self):
        with pytest.raises(ProgramModelError):
            DataRegion("a", 0, base=0)


class TestDataAccess:
    def test_stride_requires_loop(self):
        with pytest.raises(ProgramModelError):
            DataAccess(DataKind.LOAD, "a", stride=4)
        with pytest.raises(ProgramModelError):
            DataAccess(DataKind.LOAD, "a", stride_loop="L")

    def test_negative_offset_rejected(self):
        with pytest.raises(ProgramModelError):
            DataAccess(DataKind.LOAD, "a", offset=-4)


class TestDataLayout:
    def test_regions_are_disjoint_and_aligned(self):
        layout = DataLayout()
        a = layout.add_region("a", 100)
        b = layout.add_region("b", 40)
        assert a.base % 16 == 0 and b.base % 16 == 0
        assert b.base >= a.base + a.size
        assert layout.segment_size >= 140

    def test_duplicate_region_rejected(self):
        layout = DataLayout()
        layout.add_region("a", 16)
        with pytest.raises(ProgramModelError):
            layout.add_region("a", 16)

    def test_segment_far_from_code(self):
        layout = DataLayout()
        region = layout.add_region("a", 16)
        assert region.base >= DATA_SEGMENT_BASE

    def test_address_of_strided_access(self):
        layout = DataLayout()
        layout.add_region("arr", 256)
        access = DataAccess(DataKind.LOAD, "arr", offset=0, stride=4, stride_loop="L")
        assert layout.address_of(access, 0) == layout.region("arr").base
        assert layout.address_of(access, 3) == layout.region("arr").base + 12

    def test_streaming_wraps_within_region(self):
        layout = DataLayout()
        layout.add_region("arr", 64)
        access = DataAccess(DataKind.LOAD, "arr", offset=0, stride=16, stride_loop="L")
        assert layout.address_of(access, 4) == layout.region("arr").base


class TestBuilderIntegration:
    def test_load_attaches_access(self):
        b = ProgramBuilder("p")
        b.data_region("arr", 128)
        b.load("arr", offset=8)
        cfg = b.build()
        accesses = [i.data_access for i in cfg.instructions() if i.data_access]
        assert len(accesses) == 1
        assert accesses[0].kind is DataKind.LOAD
        assert accesses[0].offset == 8
        assert cfg.data_layout is not None

    def test_store_and_stride_record_loop(self):
        b = ProgramBuilder("p")
        b.data_region("arr", 128)
        with b.loop(bound=4, name="walk"):
            b.store("arr", stride=4)
        cfg = b.build()
        access = next(i.data_access for i in cfg.instructions() if i.data_access)
        assert access.kind is DataKind.STORE
        assert access.stride_loop == "walk"

    def test_strided_access_outside_loop_rejected(self):
        b = ProgramBuilder("p")
        b.data_region("arr", 128)
        with pytest.raises(ProgramModelError):
            b.load("arr", stride=4)

    def test_access_before_declaration_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            b.load("ghost")

    def test_pure_code_program_has_no_layout(self, straight_program):
        assert straight_program.data_layout is None
