"""Tests for the joint improvement criterion (Eqs. 4-9)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.wcet import analyze_wcet
from repro.core.profit import (
    ProfitTerms,
    estimate_profit,
    min_path_slack,
    wraparound_slack,
)
from repro.errors import OptimizationError
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder


def _uniform(acfg, value=2.0):
    return [value if v.is_ref else 0.0 for v in acfg.iter_topological()]


class TestMinPathSlack:
    def test_straight_line_sums_between(self, straight_program):
        acfg = build_acfg(straight_program, block_size=16)
        t_w = _uniform(acfg, 3.0)
        refs = [v.rid for v in acfg.ref_vertices()]
        # between refs[2] and refs[7] lie 4 references
        assert min_path_slack(acfg, t_w, refs[2], refs[7]) == pytest.approx(12.0)

    def test_adjacent_references_have_zero_slack(self, straight_program):
        acfg = build_acfg(straight_program, block_size=16)
        t_w = _uniform(acfg)
        refs = [v.rid for v in acfg.ref_vertices()]
        assert min_path_slack(acfg, t_w, refs[0], refs[1]) == 0.0

    def test_branch_takes_cheapest_path(self):
        b = ProgramBuilder("p")
        b.code(1)
        with b.if_else() as arms:
            with arms.then_():
                b.code(2)
            with arms.else_():
                b.code(10)
        b.code(1)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=16)
        t_w = _uniform(acfg, 1.0)
        refs = [v.rid for v in acfg.ref_vertices()]
        first, last = refs[0], refs[-1]
        slack = min_path_slack(acfg, t_w, first, last)
        # cheapest route goes through the 2-instruction arm (+ cond chain)
        full = min_path_slack(acfg, t_w, first, refs[-2])
        assert slack <= full + 1.0
        assert slack < 14  # the 10-instruction arm is avoided

    def test_unreachable_returns_infinity(self):
        b = ProgramBuilder("p")
        with b.switch() as sw:
            with sw.case():
                b.code(3)
            with sw.case():
                b.code(3)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=16)
        t_w = _uniform(acfg, 1.0)
        # a vertex in case 0 cannot reach a vertex in case 1
        case0 = [v.rid for v in acfg.ref_vertices() if v.block_name == "bb1"]
        case1 = [v.rid for v in acfg.ref_vertices() if v.block_name == "bb2"]
        assert case0 and case1
        assert math.isinf(min_path_slack(acfg, t_w, case0[-1], case1[-1]))

    def test_order_validation(self, straight_program):
        acfg = build_acfg(straight_program, block_size=16)
        t_w = _uniform(acfg)
        with pytest.raises(OptimizationError):
            min_path_slack(acfg, t_w, 5, 5)
        with pytest.raises(OptimizationError):
            min_path_slack(acfg, t_w, 9, 3)


class TestWraparoundSlack:
    def test_covers_tail_plus_head(self, timing):
        b = ProgramBuilder("p")
        with b.loop(bound=8):
            b.code(10)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=16)
        t_w = _uniform(acfg, 2.0)
        join_rid, exits = None, []
        for src, dst in acfg.back_edges:
            join_rid = dst
            exits.append(src)
        body_refs = [
            v.rid
            for v in acfg.ref_vertices()
            if join_rid < v.rid <= max(exits)
        ]
        evictor = body_refs[len(body_refs) // 2]
        use = body_refs[1]
        slack = wraparound_slack(acfg, t_w, evictor, use, join_rid, exits)
        # tail (to latch) + head (from join to use) references, 2.0 each
        direct = min_path_slack(acfg, t_w, join_rid, use)
        assert slack > direct
        assert slack < 2.0 * len(body_refs) + 4

    def test_use_must_follow_join(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        t_w = _uniform(acfg)
        (src, dst) = acfg.back_edges[0]
        with pytest.raises(OptimizationError):
            wraparound_slack(acfg, t_w, src, dst - 1, dst, [src])


class TestProfitTerms:
    def make(self, slack=100.0, latency=30.0, n_miss=5, n_insert=5):
        return ProfitTerms(
            mcost=30.0,
            pcost=2.0,
            slack=slack,
            latency=latency,
            n_miss=n_miss,
            n_insert=n_insert,
        )

    def test_effective_iff_latency_fits(self):
        assert self.make(slack=30.0).effective
        assert not self.make(slack=29.0).effective

    def test_value_zero_when_ineffective(self):
        assert self.make(slack=1.0).value == 0.0
        assert not self.make(slack=1.0).profitable

    def test_value_weights_counts(self):
        terms = self.make(n_miss=10, n_insert=1)
        assert terms.value == pytest.approx(30.0 * 10 - 2.0)

    def test_unprofitable_when_insertion_runs_hot(self):
        # miss saved once, prefetch executes 100x
        terms = self.make(n_miss=1, n_insert=100)
        assert terms.value < 0
        assert not terms.profitable

    def test_estimate_profit_end_to_end(self, thrash_program, tiny_cache, timing):
        acfg = build_acfg(thrash_program, block_size=tiny_cache.block_size)
        wcet = analyze_wcet(acfg, tiny_cache, timing)
        refs = [v.rid for v in acfg.ref_vertices()]
        terms = estimate_profit(
            acfg,
            wcet.t_w,
            timing,
            insert_after_rid=refs[0],
            miss_rid=refs[40],
            n_miss=wcet.n_w(refs[40]) or 1,
            n_insert=1,
        )
        assert terms.latency == timing.prefetch_latency
        assert terms.slack > 0
